"""Command-line interface to the QPIAD reproduction.

Installed as ``qpiad``.  Subcommands mirror the mediator's life cycle:

* ``qpiad generate cars --size 5000 --out cars.csv [--incomplete 0.1]``
* ``qpiad stats cars.csv`` — Table-1 style incompleteness report
* ``qpiad mine cars.csv --db-size 50000 --out cars.kb.json``
* ``qpiad query cars.csv --kb cars.kb.json --where body_style=Convt``
* ``qpiad plan cars.csv --kb cars.kb.json --where body_style=Convt`` — print
  the ranked rewriting plan (P/R estimates, F-measure, justifying AFDs)
  without issuing a single source call (see ``docs/planner.md``)
* ``qpiad relax cars.csv --where make=Porsche --where price=6000..9000``
* ``qpiad impute cars.csv --out clean.csv [--min-confidence 0.8]``
* ``qpiad shell cars.csv`` — interactive session with explanations (§6.1)
* ``qpiad report`` — compact reproduction of the headline results
* ``qpiad demo`` — a self-contained end-to-end run
* ``qpiad chaos --seed 7`` — seeded fault-injection smoke run: mediates
  under transient failures and verifies no certain answer is lost
  (see ``docs/robustness.md``)
* ``qpiad trace cars.csv --where body_style=Convt [--json]`` — mediate one
  query with telemetry attached and print the span tree and counters
  (see ``docs/observability.md``)
* ``qpiad drift cars.csv --kb cars.kb.json --fresh probe.csv [--json]`` —
  compare mined statistics against a freshly probed sample; exit 1 when
  the knowledge base has gone stale (see ``docs/knowledge-refresh.md``)
* ``qpiad refresh cars.csv --kb cars.kb.json --batch new.csv --out cars.kb.json``
  — fold a fresh sample batch into the knowledge base without a full
  re-mine (``--if-stale`` gates on drift, ``--watch`` keeps polling)
* ``qpiad lint [paths]`` — static domain-invariant checks (NULL semantics,
  mediator discipline, seeded RNGs; see ``docs/linting.md``)

``--where`` accepts ``attr=value`` (equality) and ``attr=low..high``
(inclusive range); repeat it for conjunctions.  Values are parsed as numbers
when the attribute is numeric.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.qpiad import QpiadConfig, QpiadMediator
from repro.datasets.cars import generate_cars
from repro.datasets.census import generate_census
from repro.datasets.complaints import generate_complaints
from repro.datasets.googlebase import generate_googlebase_listings
from repro.datasets.incompleteness import make_incomplete
from repro.errors import QpiadError
from repro.evaluation.reporting import render_table
from repro.evaluation.stats import incompleteness_report
from repro.mining.knowledge import KnowledgeBase, MiningConfig
from repro.mining.persistence import load_knowledge, save_knowledge
from repro.mining.tane import TaneConfig
from repro.query.predicates import Between, Equals, Predicate
from repro.query.query import SelectionQuery
from repro.relational.csvio import read_csv, write_csv
from repro.relational.relation import Relation
from repro.sources.autonomous import AutonomousSource
from repro.sources.capabilities import SourceCapabilities

__all__ = ["main", "build_parser"]

_GENERATORS = {
    "cars": generate_cars,
    "census": generate_census,
    "complaints": generate_complaints,
    "googlebase": generate_googlebase_listings,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qpiad",
        description="Query processing over incomplete autonomous databases",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic dataset CSV")
    generate.add_argument("dataset", choices=sorted(_GENERATORS))
    generate.add_argument("--size", type=int, default=5000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, type=Path)
    generate.add_argument(
        "--incomplete",
        type=float,
        default=0.0,
        help="fraction of tuples to mask (GD -> ED protocol); 0 keeps all values",
    )

    stats = sub.add_parser("stats", help="Table-1 style incompleteness report")
    stats.add_argument("data", type=Path)

    mine = sub.add_parser("mine", help="mine AFDs/classifiers/selectivity from a CSV sample")
    mine.add_argument("data", type=Path, help="sample CSV (probed from the source)")
    mine.add_argument("--db-size", type=int, required=True, help="full database cardinality")
    mine.add_argument("--out", required=True, type=Path, help="knowledge-base JSON path")
    mine.add_argument("--beta", type=float, default=0.6, help="AFD confidence threshold")
    mine.add_argument("--depth", type=int, default=3, help="max determining-set size")
    mine.add_argument("--bins", type=int, default=8, help="numeric discretization buckets")

    query = sub.add_parser("query", help="mediate a selection query over a CSV database")
    query.add_argument("data", type=Path, help="the (incomplete) database CSV")
    query.add_argument("--kb", type=Path, help="knowledge-base JSON (default: mine on the fly)")
    query.add_argument(
        "--where",
        action="append",
        required=True,
        metavar="ATTR=VALUE|ATTR=LOW..HIGH",
        help="conjunct; repeatable",
    )
    query.add_argument("--alpha", type=float, default=0.0)
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--top", type=int, default=10, help="possible answers to print")
    query.add_argument(
        "--trace",
        action="store_true",
        help="attach telemetry and print the span tree and counters after the answers",
    )
    query.add_argument(
        "--concurrency",
        type=int,
        default=1,
        help="rewritten queries in flight at once (1 = serial; answers are "
        "identical either way)",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the ranked rewriting plan (P/R estimates, F-measure, "
        "justifying AFDs, cache status) after the answers",
    )
    query.add_argument(
        "--admission",
        action="append",
        metavar="KEY=VALUE",
        help="route source calls through a SourceScheduler; repeatable. "
        "Keys: rate (calls/s), burst, concurrent, queue, dedup (on/off), "
        "hedge (on/off), hedge-quantile, hedge-min-samples, hedge-min-delay",
    )
    query.add_argument(
        "--stream",
        action="store_true",
        help="print ranked possible answers incrementally as each source "
        "call completes (with elapsed time), stopping after --top — the "
        "streaming interface spends no budget on answers never read",
    )

    plan_cmd = sub.add_parser(
        "plan",
        help="print the ranked rewriting plan without issuing any source call",
    )
    plan_cmd.add_argument("data", type=Path, help="the (incomplete) database CSV")
    plan_cmd.add_argument(
        "--kb", type=Path, help="knowledge-base JSON (default: mine on the fly)"
    )
    plan_cmd.add_argument(
        "--where",
        action="append",
        required=True,
        metavar="ATTR=VALUE|ATTR=LOW..HIGH",
        help="conjunct; repeatable",
    )
    plan_cmd.add_argument("--alpha", type=float, default=0.0)
    plan_cmd.add_argument("--k", type=int, default=10)
    plan_cmd.add_argument(
        "--min-confidence",
        type=float,
        default=0.0,
        help="drop rewritten queries whose estimated precision is below this",
    )

    trace = sub.add_parser(
        "trace",
        help="mediate one query with telemetry attached; print spans and metrics",
    )
    trace.add_argument("data", type=Path, help="the (incomplete) database CSV")
    trace.add_argument("--kb", type=Path, help="knowledge-base JSON (default: mine on the fly)")
    trace.add_argument(
        "--where",
        action="append",
        required=True,
        metavar="ATTR=VALUE|ATTR=LOW..HIGH",
        help="conjunct; repeatable",
    )
    trace.add_argument("--alpha", type=float, default=0.0)
    trace.add_argument("--k", type=int, default=10)
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable snapshot instead of the text rendering",
    )

    relax = sub.add_parser(
        "relax", help="relax an over-constrained query until it has answers"
    )
    relax.add_argument("data", type=Path)
    relax.add_argument("--kb", type=Path, help="knowledge-base JSON (default: mine)")
    relax.add_argument("--where", action="append", required=True)
    relax.add_argument("--target", type=int, default=10, help="answers wanted")

    impute_cmd = sub.add_parser(
        "impute", help="fill NULLs of a CSV using mined classifiers"
    )
    impute_cmd.add_argument("data", type=Path)
    impute_cmd.add_argument("--kb", type=Path, help="knowledge-base JSON (default: mine)")
    impute_cmd.add_argument("--out", required=True, type=Path)
    impute_cmd.add_argument(
        "--min-confidence",
        type=float,
        default=0.0,
        help="leave cells NULL below this posterior probability",
    )

    shell = sub.add_parser("shell", help="interactive session against a CSV database")
    shell.add_argument("data", type=Path)
    shell.add_argument("--kb", type=Path, help="knowledge-base JSON (default: mine)")

    report_cmd = sub.add_parser(
        "report", help="compact reproduction of the paper's headline results"
    )
    report_cmd.add_argument("--size", type=int, default=5000)
    report_cmd.add_argument("--queries", type=int, default=5)

    demo = sub.add_parser("demo", help="self-contained end-to-end demonstration")
    demo.add_argument("--size", type=int, default=4000)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection smoke run: verify graceful degradation "
        "never loses certain answers",
    )
    chaos.add_argument("--seed", type=int, default=7, help="fault-schedule seed")
    chaos.add_argument("--size", type=int, default=2000)
    chaos.add_argument(
        "--failure-rate",
        type=float,
        default=0.2,
        help="probability a source call fails fast (SourceUnavailableError)",
    )
    chaos.add_argument(
        "--churn-rate",
        type=float,
        default=0.05,
        help="probability a call charges the budget and then fails anyway",
    )
    chaos.add_argument(
        "--truncate-rate",
        type=float,
        default=0.1,
        help="probability a result is cut off mid-transfer",
    )
    chaos.add_argument("--k", type=int, default=10, help="rewritten queries per user query")
    chaos.add_argument(
        "--concurrency",
        type=int,
        default=1,
        help="rewritten queries in flight at once; above 1 the replay-identical "
        "check is skipped (fault schedules are call-order dependent)",
    )
    chaos.add_argument(
        "--admission",
        action="append",
        metavar="KEY=VALUE",
        help="route the faulty mediator's calls through a SourceScheduler "
        "(same keys as `qpiad query --admission`); the degradation "
        "invariants must hold under admission control too",
    )

    drift = sub.add_parser(
        "drift",
        help="compare a knowledge base against a freshly probed sample; "
        "exit 1 when the mined statistics have gone stale",
    )
    drift.add_argument("data", type=Path, help="the (incomplete) database CSV")
    drift.add_argument(
        "--kb", type=Path, help="knowledge-base JSON (default: mine on the fly)"
    )
    drift.add_argument(
        "--fresh", required=True, type=Path, help="freshly probed sample CSV"
    )
    drift.add_argument(
        "--confidence-tolerance",
        type=float,
        default=0.15,
        help="flag an AFD when its g3 confidence moved by more than this",
    )
    drift.add_argument(
        "--distribution-tolerance",
        type=float,
        default=0.25,
        help="flag an attribute when its total variation distance exceeds this",
    )
    drift.add_argument(
        "--min-support",
        type=int,
        default=20,
        help="AFDs covering fewer fresh rows than this are unmeasurable",
    )
    drift.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of the text rendering",
    )

    refresh = sub.add_parser(
        "refresh",
        help="fold a fresh sample batch into a knowledge base "
        "(incremental when possible, full re-mine otherwise)",
    )
    refresh.add_argument("data", type=Path, help="the (incomplete) database CSV")
    refresh.add_argument(
        "--kb", type=Path, help="knowledge-base JSON to refresh (default: mine on the fly)"
    )
    refresh.add_argument(
        "--batch", required=True, type=Path, help="fresh sample batch CSV to fold in"
    )
    refresh.add_argument(
        "--out", type=Path, help="write the refreshed knowledge base here"
    )
    refresh.add_argument(
        "--db-size",
        type=int,
        help="updated database cardinality (default: keep the mined one)",
    )
    refresh.add_argument(
        "--if-stale",
        action="store_true",
        help="run the drift check first and fold only when it flags staleness",
    )
    refresh.add_argument(
        "--confidence-tolerance",
        type=float,
        default=0.15,
        help="drift gate: AFD confidence tolerance (with --if-stale)",
    )
    refresh.add_argument(
        "--distribution-tolerance",
        type=float,
        default=0.25,
        help="drift gate: total variation tolerance (with --if-stale)",
    )
    refresh.add_argument(
        "--min-support",
        type=int,
        default=20,
        help="drift gate: minimum fresh-row support (with --if-stale)",
    )
    refresh.add_argument(
        "--watch",
        action="store_true",
        help="keep polling --batch and fold whenever the file changes",
    )
    refresh.add_argument(
        "--interval",
        type=float,
        default=5.0,
        help="poll interval in seconds (with --watch)",
    )
    refresh.add_argument(
        "--iterations",
        type=int,
        help="stop watching after this many polls (default: forever)",
    )
    refresh.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable result per fold",
    )

    lint = sub.add_parser(
        "lint",
        help="run qpiadlint: AST checks of the repo's domain invariants "
        "(NULL semantics, AutonomousSource discipline, seeded RNGs)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _parse_where(spec: str, relation: Relation) -> Predicate:
    if "=" not in spec:
        raise QpiadError(f"malformed --where {spec!r}; expected ATTR=VALUE")
    attribute, __, raw = spec.partition("=")
    attribute = attribute.strip()
    raw = raw.strip()
    relation.schema.index_of(attribute)  # validate
    numeric = relation.schema.is_numeric(attribute)

    def parse(text: str):
        if not numeric:
            return text
        try:
            value = float(text)
        except ValueError as exc:
            raise QpiadError(f"{attribute!r} is numeric; cannot parse {text!r}") from exc
        return int(value) if value.is_integer() else value

    if ".." in raw:
        low_text, __, high_text = raw.partition("..")
        return Between(attribute, parse(low_text), parse(high_text))
    return Equals(attribute, parse(raw))


_ADMISSION_KEYS = {
    "rate": ("rate_per_second", float),
    "burst": ("burst", int),
    "concurrent": ("max_concurrent", int),
    "queue": ("max_queue", int),
    "dedup": ("dedup", None),  # None marks an on/off flag
    "hedge": ("hedge", None),
    "hedge-quantile": ("hedge_quantile", float),
    "hedge-min-samples": ("hedge_min_samples", int),
    "hedge-min-delay": ("hedge_min_delay_seconds", float),
}


def _parse_admission(specs):
    """``--admission KEY=VALUE`` pairs → a ``SchedulerConfig`` (or ``None``).

    The parsed policy becomes the scheduler-wide default; per-source
    overrides stay a library-level feature (``SchedulerConfig.per_source``).
    """
    if not specs:
        return None
    from repro.resilience import SchedulerConfig, SourcePolicy

    kwargs = {}
    for spec in specs:
        key, sep, raw = spec.partition("=")
        key, raw = key.strip(), raw.strip()
        if not sep or not raw:
            raise QpiadError(f"malformed --admission {spec!r}; expected KEY=VALUE")
        if key not in _ADMISSION_KEYS:
            known = ", ".join(sorted(_ADMISSION_KEYS))
            raise QpiadError(f"unknown --admission key {key!r}; known keys: {known}")
        field, cast = _ADMISSION_KEYS[key]
        if cast is None:
            lowered = raw.lower()
            if lowered in ("on", "true", "yes", "1"):
                kwargs[field] = True
            elif lowered in ("off", "false", "no", "0"):
                kwargs[field] = False
            else:
                raise QpiadError(f"--admission {key} expects on/off, got {raw!r}")
            continue
        try:
            kwargs[field] = cast(raw)
        except ValueError as exc:
            raise QpiadError(
                f"--admission {key} expects a {cast.__name__}, got {raw!r}"
            ) from exc
    return SchedulerConfig(default=SourcePolicy(**kwargs))


def _cmd_generate(args) -> int:
    generator = _GENERATORS[args.dataset]
    relation = generator(args.size, seed=args.seed)
    if args.incomplete:
        relation = make_incomplete(
            relation, incomplete_fraction=args.incomplete, seed=args.seed + 1
        ).incomplete
    write_csv(relation, args.out)
    print(f"wrote {len(relation)} {args.dataset} tuples to {args.out}")
    return 0


def _cmd_stats(args) -> int:
    relation = read_csv(args.data)
    report = incompleteness_report(args.data.name, relation)
    rows = [
        ["tuples", report.total_tuples],
        ["attributes", report.attribute_count],
        ["incomplete tuples", f"{report.incomplete_tuples_pct:.2f}%"],
    ]
    rows.extend(
        [f"NULL {name}", f"{pct:.2f}%"]
        for name, pct in sorted(report.attribute_null_pct.items(), key=lambda kv: -kv[1])
        if pct > 0
    )
    print(render_table(["statistic", "value"], rows, title=f"Incompleteness of {args.data}"))
    return 0


def _cmd_mine(args) -> int:
    sample = read_csv(args.data)
    config = MiningConfig(
        tane=TaneConfig(min_confidence=args.beta, max_determining_size=args.depth),
        discretize_bins=args.bins,
    )
    knowledge = KnowledgeBase(sample, database_size=args.db_size, config=config)
    save_knowledge(knowledge, args.out)
    print(f"mined {len(knowledge.afds)} AFDs ({len(knowledge.all_afds)} pre-pruning), "
          f"{len(knowledge.akeys)} AKeys from {len(sample)} sample tuples")
    for afd in list(knowledge.afds)[:10]:
        print(f"  {afd}")
    print(f"knowledge base written to {args.out}")
    return 0


def _build_mediation(args, telemetry=None):
    """Shared query/trace plumbing: load data, build mediator and query."""
    from repro.planner import PlanCache

    relation = read_csv(args.data)
    knowledge = _load_or_mine(args.data, args.kb, relation)
    predicates = [_parse_where(spec, relation) for spec in args.where]
    query = SelectionQuery.conjunction(predicates)
    source = AutonomousSource(args.data.name, relation, SourceCapabilities.web_form())
    config = QpiadConfig(
        alpha=args.alpha,
        k=args.k,
        max_concurrency=getattr(args, "concurrency", 1),
    )
    plan_cache = PlanCache() if getattr(args, "explain", False) else None
    scheduler = None
    scheduler_config = _parse_admission(getattr(args, "admission", None))
    if scheduler_config is not None:
        from repro.resilience import SourceScheduler

        # Mirror scheduler.* counters into the trace telemetry when one
        # is attached, so `--trace --admission ...` shows admission work.
        scheduler = SourceScheduler(scheduler_config, telemetry=telemetry)
    mediator = QpiadMediator(
        source,
        knowledge,
        config,
        telemetry=telemetry,
        plan_cache=plan_cache,
        scheduler=scheduler,
    )
    return query, mediator, scheduler


def _mediate_csv(args, telemetry=None):
    """Shared query/trace core: load data, build the mediator, run the query."""
    query, mediator, scheduler = _build_mediation(args, telemetry)
    return query, mediator, mediator.query(query), scheduler


def _render_plan(plan, alpha: float) -> str:
    """Text rendering of a :class:`~repro.planner.SelectionPlan`."""
    from repro.planner import Ranker

    ranker = Ranker(alpha)
    lines = [
        f"plan: {len(plan.steps)} rewritten queries to issue "
        f"({plan.generated} generated, {plan.skipped_unanswerable} inexpressible, "
        f"{plan.skipped_below_confidence} below confidence); "
        f"plan cache: {'hit' if plan.cached else 'miss'}"
    ]
    for step in plan.steps:
        f = ranker.f_measure(step.estimated_precision, step.estimated_recall)
        lines.append(f"  [{step.rank}] {step.query}")
        lines.append(
            f"      P={step.estimated_precision:.3f}  "
            f"R={step.estimated_recall:.4f}  F(alpha={alpha:g})={f:.4f}  "
            f"via {step.explanation}"
        )
    return "\n".join(lines)


def _stream_query(args, query, mediator) -> None:
    """Incremental `qpiad query --stream` output: answers as calls complete.

    Drives the mediator's lazy streaming interface and stamps each answer
    with its elapsed arrival time, so slow sources are visibly not
    blocking the fast ones; stops pulling after ``--top`` answers, which
    (serially) also stops spending the source's query budget.
    """
    import time

    from repro.core.results import RetrievalStats

    stats = RetrievalStats()
    print(f"query: {query}")
    print(f"streaming ranked possible answers as they arrive (top {args.top}):")
    started = time.monotonic()
    shown = 0
    for answer in mediator.iter_possible(query, stats):
        shown += 1
        print(
            f"  [+{time.monotonic() - started:.3f}s] "
            f"conf={answer.confidence:.3f}  {answer.row}"
        )
        if shown >= args.top:
            break
    elapsed = time.monotonic() - started
    print(
        f"\n{shown} answers in {elapsed:.3f}s; cost so far: "
        f"{stats.queries_issued} queries, "
        f"{stats.tuples_retrieved} tuples transferred"
    )


def _cmd_query(args) -> int:
    from repro.telemetry import Telemetry, render_telemetry_text

    telemetry = Telemetry() if args.trace else None
    if args.stream:
        query, mediator, scheduler = _build_mediation(args, telemetry)
        _stream_query(args, query, mediator)
    else:
        query, mediator, result, scheduler = _mediate_csv(args, telemetry)

        print(f"query: {query}")
        print(f"{len(result.certain)} certain answers; first 5:")
        print(result.certain.take(5).head())
        print(f"\n{len(result.ranked)} ranked relevant possible answers; top {args.top}:")
        for answer in result.top(args.top):
            print(f"  conf={answer.confidence:.3f}  {answer.row}")
        print(
            f"\ncost: {result.stats.queries_issued} queries, "
            f"{result.stats.tuples_retrieved} tuples transferred"
        )
    if scheduler is not None:
        admitted = scheduler.metrics.value("scheduler.admitted")
        shed = scheduler.metrics.value("scheduler.rejected_queue_full")
        dedup = scheduler.metrics.value("scheduler.dedup_hits")
        hedged = scheduler.metrics.value("scheduler.hedges_launched")
        print(
            f"admission: {admitted:.0f} admitted, {shed:.0f} shed, "
            f"{dedup:.0f} deduplicated, {hedged:.0f} hedged"
        )
    if args.explain and mediator.last_plan is not None:
        print()
        print(_render_plan(mediator.last_plan, args.alpha))
    if telemetry is not None:
        print()
        print(render_telemetry_text(telemetry))
    return 0


def _cmd_plan(args) -> int:
    from repro.planner import PlanCache, PlannerConfig, QueryPlanner

    relation = read_csv(args.data)
    knowledge = _load_or_mine(args.data, args.kb, relation)
    predicates = [_parse_where(spec, relation) for spec in args.where]
    query = SelectionQuery.conjunction(predicates)
    source = AutonomousSource(args.data.name, relation, SourceCapabilities.web_form())
    # Plan-only mode: the base set is computed mediator-side from the CSV
    # the source wraps, so nothing is ever put on the wire — the source's
    # access statistics stay at zero.
    base_set = relation.select(
        lambda row: query.predicate.matches(row, relation.schema)
    )
    planner = QueryPlanner(
        knowledge,
        PlannerConfig(alpha=args.alpha, k=args.k, min_confidence=args.min_confidence),
        cache=PlanCache(),
    )
    plan = planner.plan_selection(query, base_set, source=source)
    print(f"query: {query}")
    print(
        f"base set: {len(base_set)} certain answers "
        f"(computed locally; {source.statistics.queries_answered} source calls)"
    )
    print(_render_plan(plan, args.alpha))
    return 0


def _cmd_trace(args) -> int:
    from repro.telemetry import Telemetry, render_telemetry_json, render_telemetry_text

    telemetry = Telemetry()
    query, __, result, __ = _mediate_csv(args, telemetry)
    if args.json:
        print(render_telemetry_json(telemetry))
        return 0
    print(f"query: {query}")
    print(
        f"{len(result.certain)} certain, {len(result.ranked)} ranked possible, "
        f"{len(result.unranked)} unranked answers"
        f"{' (degraded)' if result.degraded else ''}"
    )
    print()
    print(render_telemetry_text(telemetry))
    return 0


def _load_or_mine(data_path: Path, kb_path: "Path | None", relation: Relation) -> KnowledgeBase:
    if kb_path:
        return load_knowledge(kb_path)
    # stderr keeps machine-readable stdout (``trace --json``) clean.
    print(
        "no --kb given; mining a knowledge base from the database itself ...",
        file=sys.stderr,
    )
    return KnowledgeBase(
        relation.take(max(200, len(relation) // 10)), database_size=len(relation)
    )


def _cmd_relax(args) -> int:
    from repro.core.relaxation import QueryRelaxer

    relation = read_csv(args.data)
    knowledge = _load_or_mine(args.data, args.kb, relation)
    predicates = [_parse_where(spec, relation) for spec in args.where]
    query = SelectionQuery.conjunction(predicates)
    source = AutonomousSource(args.data.name, relation, SourceCapabilities.web_form())
    relaxer = QueryRelaxer(source, knowledge)
    answers = relaxer.query(query, target_count=args.target)
    print(f"query: {query}")
    exact = sum(1 for answer in answers if answer.similarity == 1.0)
    print(f"{exact} exact answers, {len(answers) - exact} relaxed; top {args.target}:")
    for answer in answers[: args.target]:
        violated = ", ".join(answer.violated) or "-"
        print(f"  sim={answer.similarity:.2f}  violates: {violated}")
        print(f"    {answer.row}")
    return 0


def _cmd_impute(args) -> int:
    from repro.mining.imputation import impute

    relation = read_csv(args.data)
    knowledge = _load_or_mine(args.data, args.kb, relation)
    report = impute(relation, knowledge, min_confidence=args.min_confidence)
    write_csv(report.relation, args.out)
    print(
        f"filled {report.filled_count} cells "
        f"({report.skipped_low_confidence} left NULL below confidence "
        f"{args.min_confidence}); wrote {args.out}"
    )
    return 0


def _cmd_demo(args) -> int:
    from repro.evaluation.harness import build_environment

    print(f"generating {args.size} car listings, masking 10%, mining ...")
    env = build_environment(generate_cars(args.size), name="demo")
    mediator = QpiadMediator(env.web_source(), env.knowledge, QpiadConfig(k=10))
    query = SelectionQuery.equals("body_style", "Convt")
    result = mediator.query(query)
    print(f"{len(result.certain)} certain answers for {query}")
    print(f"{len(result.ranked)} ranked possible answers; top 5 with ground truth:")
    for answer in result.top(5):
        relevant = env.oracle.is_relevant(answer.row, query)
        mark = "✓" if relevant else "✗"
        print(f"  conf={answer.confidence:.3f}  truth={mark}  {answer.row}")
    return 0


def _cmd_chaos(args) -> int:
    from repro.evaluation.harness import build_environment
    from repro.faults import FaultInjectingSource, FaultPlan

    print(
        f"chaos: {args.size} car listings, seed {args.seed}, "
        f"{args.failure_rate:.0%} unavailable / {args.churn_rate:.0%} churned / "
        f"{args.truncate_rate:.0%} truncated ..."
    )
    env = build_environment(
        generate_cars(args.size, seed=args.seed), seed=args.seed, name="chaos"
    )
    queries = [
        SelectionQuery.equals("body_style", "Convt"),
        SelectionQuery.equals("body_style", "Sedan"),
        SelectionQuery.equals("make", "BMW"),
    ]
    config = QpiadConfig(k=args.k, max_concurrency=args.concurrency)
    admission = _parse_admission(args.admission)
    # With concurrent execution the fault schedule maps onto calls in
    # completion-dependent order, so two runs need not inject the same
    # faults at the same calls; the replay-identical check only holds
    # serially.  Hedged requests likewise add latency-dependent extra
    # calls.  The invariants that matter — certain answers survive,
    # ranking stays a subsequence — are checked at any width.
    check_replay = args.concurrency == 1 and not (
        admission is not None and admission.default.hedge
    )
    shed_total = 0
    verdict = 0
    for index, query in enumerate(queries):
        clean = QpiadMediator(env.web_source(), env.knowledge, config).query(query)

        def run_faulty():
            plan = FaultPlan(
                seed=args.seed + index,
                unavailable_rate=args.failure_rate,
                churn_rate=args.churn_rate,
                truncate_rate=args.truncate_rate,
                spare_first=1,  # the base query must land: QPIAD needs certain answers
            )
            source = FaultInjectingSource(env.web_source(), plan)
            scheduler = None
            if admission is not None:
                from repro.resilience import SourceScheduler

                # One scheduler per run: replay determinism needs fresh
                # admission state, not a warm latency history.
                scheduler = SourceScheduler(admission)
            mediator = QpiadMediator(
                source, env.knowledge, config, scheduler=scheduler
            )
            return mediator.query(query), source, scheduler

        faulty, source, scheduler = run_faulty()
        if scheduler is not None:
            shed_total += int(scheduler.metrics.value("scheduler.rejected_queue_full"))

        certain_kept = set(faulty.certain) == set(clean.certain)
        clean_rows = [answer.row for answer in clean.ranked]
        order_kept = _is_subsequence(
            [answer.row for answer in faulty.ranked], clean_rows
        )
        if check_replay:
            replay, replay_source, __ = run_faulty()
            reproducible = (
                replay_source.statistics.events == source.statistics.events
                and [a.row for a in replay.ranked] == [a.row for a in faulty.ranked]
            )
            replay_note = f"replay {'identical' if reproducible else 'DIVERGED'}"
        else:
            reproducible = True
            replay_note = "replay skipped (concurrent)"
        stats = source.statistics
        print(
            f"  {query}: {len(faulty.certain)} certain "
            f"({'all kept' if certain_kept else 'LOST ANSWERS'}), "
            f"{len(faulty.ranked)}/{len(clean.ranked)} possible, "
            f"{stats.faults_injected}/{stats.calls} calls faulted, "
            f"{len(faulty.stats.failures)} failures absorbed, "
            f"degraded={faulty.degraded}, "
            f"ranking {'consistent' if order_kept else 'REORDERED'}, "
            f"{replay_note}"
        )
        if not (certain_kept and order_kept and reproducible):
            verdict = 1
    if admission is not None:
        print(f"admission: {shed_total} call(s) load-shed across faulty runs")
    if verdict:
        print("chaos: FAILED — degradation lost or reordered answers", file=sys.stderr)
    else:
        print("chaos: ok — certain answers survived every injected fault")
    return verdict


def _is_subsequence(rows, reference) -> bool:
    """Whether *rows* appear in *reference* in the same relative order."""
    iterator = iter(reference)
    return all(row in iterator for row in rows)


def _cmd_report(args) -> int:
    from repro.evaluation.summary import experiment_summary, render_summary

    print(f"running the compact experiment battery on {args.size} tuples ...")
    result, __ = experiment_summary(size=args.size, queries=args.queries)
    print(render_summary(result))
    return 0


def _cmd_shell(args) -> int:
    from repro.shell import run_shell

    return run_shell(args.data, args.kb)


def _cmd_drift(args) -> int:
    import json

    from repro.mining.drift import detect_drift, drift_payload, render_drift_text

    relation = read_csv(args.data)
    knowledge = _load_or_mine(args.data, args.kb, relation)
    fresh = read_csv(args.fresh)
    report = detect_drift(
        knowledge,
        fresh,
        confidence_tolerance=args.confidence_tolerance,
        distribution_tolerance=args.distribution_tolerance,
        min_support=args.min_support,
    )
    if args.json:
        print(json.dumps(drift_payload(report), indent=2))
    else:
        print(render_drift_text(report))
    return 1 if report.is_stale else 0


def _refresh_payload(result) -> dict:
    from repro.mining.drift import drift_payload

    payload = {
        "mode": result.mode,
        "refreshed": result.refreshed,
        "epoch": result.epoch,
        "fingerprint": result.fingerprint,
        "previous_fingerprint": result.previous_fingerprint,
        "rows_folded": result.rows_folded,
        "seconds": result.seconds,
    }
    if result.drift is not None:
        payload["drift"] = drift_payload(result.drift)
    return payload


def _print_refresh(result, as_json: bool) -> None:
    if as_json:
        import json

        print(json.dumps(_refresh_payload(result)))
        return
    if not result.refreshed:
        print(f"refresh: skipped — statistics still fresh (epoch {result.epoch})")
        return
    print(
        f"refresh: {result.mode} fold of {result.rows_folded} row(s) -> "
        f"epoch {result.epoch} in {result.seconds:.3f}s"
    )
    print(f"  fingerprint {result.previous_fingerprint} -> {result.fingerprint}")


def _cmd_refresh(args) -> int:
    import time

    from repro.mining.refresh import KnowledgeRefresher

    relation = read_csv(args.data)
    knowledge = _load_or_mine(args.data, args.kb, relation)
    refresher = KnowledgeRefresher(knowledge)
    refresher.prime()  # seed incremental state; full re-mine when unavailable

    def fold_once() -> int:
        batch = read_csv(args.batch)
        if args.if_stale:
            result = refresher.refresh_if_stale(
                batch,
                confidence_tolerance=args.confidence_tolerance,
                distribution_tolerance=args.distribution_tolerance,
                min_support=args.min_support,
                database_size=args.db_size,
            )
        else:
            result = refresher.refresh(batch, database_size=args.db_size)
        _print_refresh(result, args.json)
        if result.refreshed and args.out:
            save_knowledge(refresher.knowledge, args.out)
            if not args.json:
                print(f"  wrote {args.out}")
        return 0 if result.refreshed or args.if_stale else 1

    if not args.watch:
        return fold_once()

    # Watch mode: the batch CSV is a drop-box the probing job overwrites;
    # each new version is folded exactly once (mtime-change detection).
    last_seen: "int | None" = None
    polls = 0
    while args.iterations is None or polls < args.iterations:
        if polls:
            time.sleep(args.interval)
        polls += 1
        try:
            stamp = args.batch.stat().st_mtime_ns
        except OSError:
            continue  # not dropped yet (or mid-replace); retry next poll
        if stamp == last_seen:
            continue
        last_seen = stamp
        fold_once()
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "mine": _cmd_mine,
    "query": _cmd_query,
    "plan": _cmd_plan,
    "trace": _cmd_trace,
    "relax": _cmd_relax,
    "impute": _cmd_impute,
    "shell": _cmd_shell,
    "report": _cmd_report,
    "demo": _cmd_demo,
    "chaos": _cmd_chaos,
    "drift": _cmd_drift,
    "refresh": _cmd_refresh,
    "lint": _cmd_lint,
}


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except QpiadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
