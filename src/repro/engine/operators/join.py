"""Symmetric hash join: the non-blocking heart of the streaming path.

Classic hash join builds the whole hash table from one side before
probing with the other — first output gated on the *build* side
finishing.  The symmetric variant keeps a hash table per side and, for
every arriving item, inserts it into its own table and probes the
other's: a joined tuple is emitted the instant both halves exist,
whichever side delivered second.  Over autonomous sources with wildly
different latencies this is the difference between "first answer when
the slowest source replies" and "first answer when the first match
lands".

Every (left, right) combination with equal keys is emitted exactly once
— by whichever item arrived later — regardless of arrival interleaving;
only emission *order* is schedule-dependent.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.engine.operators.base import Operator

__all__ = ["SymmetricHashJoin"]

LEFT = 0
RIGHT = 1


class SymmetricHashJoin(Operator):
    """Join two input streams on equal keys, emitting as matches arrive.

    Parameters
    ----------
    left_key / right_key:
        Extract the join key from an item of the respective port.  A key
        of ``None`` marks the item unjoinable; it is dropped (QPIAD's
        "NULL join value with no confident prediction" case — the caller
        predicts-and-substitutes *before* the tree, so by the time an
        item reaches the join its key is final).
    combine:
        Build the output item from a matched ``(left, right)``.
    match:
        Optional extra predicate over ``(left, right)``; pairs it
        rejects are not emitted.  The join processors use this to
        restrict the cross product to the top-K *selected* query pairs
        while still issuing each component query only once.
    """

    arity = 2

    def __init__(
        self,
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        combine: Callable[[Any, Any], Any],
        match: Callable[[Any, Any], bool] | None = None,
    ):
        self._keys = (left_key, right_key)
        self._tables: tuple[dict[Any, list[Any]], dict[Any, list[Any]]] = ({}, {})
        self._combine = combine
        self._match = match

    def push(self, port: int, item: Any) -> Iterator[Any]:
        key = self._keys[port](item)
        if key is None:
            return
        self._tables[port].setdefault(key, []).append(item)
        mates = self._tables[1 - port].get(key)
        if not mates:
            return
        for mate in mates:
            left, right = (item, mate) if port == LEFT else (mate, item)
            if self._match is None or self._match(left, right):
                yield self._combine(left, right)

    def inserted(self, port: int) -> int:
        """How many joinable items this port has absorbed (diagnostics)."""
        return sum(len(bucket) for bucket in self._tables[port].values())
