"""Streaming project: per-item transform (and filter) with no buffering."""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.engine.operators.base import Operator

__all__ = ["StreamingProject"]


class StreamingProject(Operator):
    """Apply *transform* to each item as it arrives.

    A transform returning ``None`` drops the item, so one operator
    covers both the projection and the post-filter role (QPIAD's
    "discard rows already certain / already in the base set" step) —
    fused, because a streaming pipeline has no place to park a second
    pass.
    """

    arity = 1

    def __init__(self, transform: Callable[[Any], Any]):
        self._transform = transform

    def push(self, port: int, item: Any) -> Iterator[Any]:
        out = self._transform(item)
        if out is not None:
            yield out
