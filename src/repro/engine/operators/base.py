"""The physical-operator contract and the tree that wires operators up.

Operators here are *push-based automata*: the plan driver feeds items in
through named inlets as source calls complete (see
:meth:`~repro.engine.engine.RetrievalEngine.stream_tuples`), each
operator reacts synchronously — holding state, emitting zero or more
output items — and emissions propagate up the tree to the root, where
the driver collects them.  All the asynchrony lives *below* the tree, in
the executor that overlaps source I/O; the tree itself is driven from
exactly one thread and therefore needs no locks.

This is the mediator-style non-blocking design (Xgjoin / Xunion /
Xproject): a join emits a joined tuple the moment a match arrives from
*either* side, so first-answer latency is bounded by the fastest useful
input, not by the slowest source.  The price is ordering — outputs
surface in data-arrival order, which is schedule-dependent — so every
consumer ranks at the end: stream in the middle, sort at the edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.errors import QpiadError

__all__ = ["Inlet", "Operator", "OperatorNode", "OperatorTree"]


class Operator:
    """One physical operator: a synchronous, stateful push automaton.

    Subclasses declare ``arity`` (how many input ports they consume) and
    implement :meth:`push`; operators that buffer state they can only
    resolve at end-of-stream also override :meth:`close`.
    """

    arity: int = 1

    def push(self, port: int, item: Any) -> Iterator[Any]:
        """React to *item* arriving on *port*; yield any output items."""
        raise NotImplementedError

    def close(self) -> Iterator[Any]:
        """Flush state held back until end-of-stream (default: nothing)."""
        return iter(())


@dataclass(frozen=True)
class Inlet:
    """A named entry point of an operator tree.

    The driver pushes items by inlet name; the tree routes each to the
    operator port the inlet was wired into.
    """

    name: str


class OperatorNode:
    """One operator plus the wiring of its input ports.

    ``inputs[i]`` feeds the operator's port ``i`` and is either an
    :class:`Inlet` (driver-pushed) or another node (whose emissions
    cascade in).  *label* names the node in diagnostics.
    """

    def __init__(
        self,
        operator: Operator,
        inputs: Sequence["Inlet | OperatorNode"],
        label: str | None = None,
    ):
        if len(inputs) != operator.arity:
            raise QpiadError(
                f"operator {label or type(operator).__name__} has arity "
                f"{operator.arity} but {len(inputs)} inputs were wired"
            )
        self.operator = operator
        self.inputs = tuple(inputs)
        self.label = label or type(operator).__name__

    def __repr__(self) -> str:
        return f"OperatorNode({self.label})"


class OperatorTree:
    """A rooted tree of operators, driven by pushes into named inlets.

    The tree validates its shape once at construction — unique inlet
    names, every node used at most once (a tree, not a DAG) — then
    routes: ``push(name, item)`` runs the item through the inlet's
    operator and cascades emissions parent-ward; whatever escapes the
    root is yielded to the driver.  ``close()`` flushes operators
    bottom-up (a child's end-of-stream output still flows through its
    not-yet-closed ancestors) and yields the root's final emissions.

    Both methods return lazy iterators; the driver must drain them
    (``yield from`` / list) for the pushes to actually happen.
    """

    def __init__(self, root: OperatorNode):
        self.root = root
        self._parents: dict[int, tuple[OperatorNode, int]] = {}
        self._inlets: dict[str, tuple[OperatorNode, int]] = {}
        self._postorder: list[OperatorNode] = []
        self._seen: set[int] = set()
        self._wire(root)
        self._closed = False

    def _wire(self, node: OperatorNode) -> None:
        if id(node) in self._seen:
            raise QpiadError(f"node {node.label} wired twice; the plan must be a tree")
        self._seen.add(id(node))
        for port, source in enumerate(node.inputs):
            if isinstance(source, Inlet):
                if source.name in self._inlets:
                    raise QpiadError(f"duplicate inlet name {source.name!r}")
                self._inlets[source.name] = (node, port)
            else:
                self._parents[id(source)] = (node, port)
                self._wire(source)
        self._postorder.append(node)

    @property
    def inlets(self) -> tuple[str, ...]:
        """The tree's entry points, in wiring order."""
        return tuple(self._inlets)

    def push(self, inlet: str, item: Any) -> Iterator[Any]:
        """Push *item* into *inlet*; yield whatever reaches the root."""
        if self._closed:
            raise QpiadError("operator tree already closed")
        try:
            node, port = self._inlets[inlet]
        except KeyError:
            raise QpiadError(
                f"unknown inlet {inlet!r}; tree has {sorted(self._inlets)}"
            ) from None
        return self._cascade(node, port, item)

    def _cascade(self, node: OperatorNode, port: int, item: Any) -> Iterator[Any]:
        for emitted in node.operator.push(port, item):
            yield from self._emit(node, emitted)

    def _emit(self, node: OperatorNode, item: Any) -> Iterator[Any]:
        parent = self._parents.get(id(node))
        if parent is None:
            yield item
            return
        yield from self._cascade(parent[0], parent[1], item)

    def close(self) -> Iterator[Any]:
        """Signal end-of-stream; flush bottom-up and yield final outputs."""
        if self._closed:
            return
        self._closed = True
        for node in self._postorder:
            for emitted in node.operator.close():
                yield from self._emit(node, emitted)
