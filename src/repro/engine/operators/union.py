"""Streaming union: merge N input streams without blocking any of them."""

from __future__ import annotations

from typing import Any, Iterator

from repro.engine.operators.base import Operator
from repro.errors import QpiadError

__all__ = ["StreamingUnion"]


class StreamingUnion(Operator):
    """Pass every input item through the moment it arrives.

    The federation's merge operator: each of N per-source answer streams
    feeds one port, and no source's answers wait on another source.  The
    union is *bag* semantics — it deduplicates nothing and owes no order;
    consumers that need registry-order or confidence-order results sort
    at the edge, as with every streaming operator.
    """

    def __init__(self, arity: int):
        if arity < 1:
            raise QpiadError(f"union arity must be at least 1, got {arity}")
        self.arity = arity

    def push(self, port: int, item: Any) -> Iterator[Any]:
        yield item
