"""Non-blocking physical operators for streaming mediation.

The engine's answer to first-answer latency (ROADMAP item 1): instead of
materializing every component result before joining, mediators compose a
small tree of push-based operators —

* :class:`SymmetricHashJoin` — emits a joined tuple as soon as a match
  arrives from *either* side;
* :class:`StreamingUnion` — merges N answer streams without blocking any;
* :class:`StreamingProject` — per-item transform/filter, fused;

— and drive it with
:meth:`~repro.engine.engine.RetrievalEngine.stream_tuples`, which yields
``(step, row)`` in source-call *completion* order.  The executor overlaps
source I/O against join work; the tree itself runs on the driver's
thread and needs no locks.

Ordering contract: operator output is arrival-ordered and therefore
schedule-dependent; every consumer owes a deterministic final ranking
(dedup + total-order sort) at the edge.  See ``docs/engine.md`` for the
tree diagram and the full guarantees.
"""

from repro.engine.operators.base import Inlet, Operator, OperatorNode, OperatorTree
from repro.engine.operators.join import SymmetricHashJoin
from repro.engine.operators.project import StreamingProject
from repro.engine.operators.union import StreamingUnion

__all__ = [
    "Inlet",
    "Operator",
    "OperatorNode",
    "OperatorTree",
    "StreamingProject",
    "StreamingUnion",
    "SymmetricHashJoin",
]
