"""Execution policies: the *how much to tolerate* of a retrieval.

These knobs used to live (duplicated) on the mediator configs; the
engine reads them from one :class:`ExecutionPolicy` so the semantics —
what counts against the failure budget, when a deadline is checked, what
"tolerate" means — exist in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QpiadError

__all__ = ["ExecutionPolicy"]


@dataclass(frozen=True)
class ExecutionPolicy:
    """Failure, deadline, and concurrency limits for one retrieval.

    Parameters
    ----------
    max_source_failures:
        Failure budget for transient errors on planned (non-base)
        queries: each one is absorbed and the plan continues, until this
        many have been absorbed — the next propagates.  ``None``
        tolerates any number; ``0`` restores strict all-or-nothing
        behaviour.  Base queries are never covered: without certain
        answers there is nothing to degrade *to*.
    deadline_seconds:
        Optional wall-clock budget for the whole retrieval, measured by
        the engine's injectable clock.  Checked between source calls — a
        call in flight is never interrupted; once exceeded, no further
        planned queries are issued.
    tolerate_budget_exhaustion:
        When the *source's* query budget runs out mid-plan, stop issuing
        and keep the answers gathered so far instead of propagating.
    tolerate_deadline_exceeded:
        When the deadline passes mid-plan, keep the answers gathered so
        far (flagged degraded) rather than raising
        :class:`~repro.errors.DeadlineExceededError`.
    max_concurrency:
        How many planned queries may be in flight at once.  ``1`` (the
        default) is the historical serial loop; higher values opt in to
        the thread-pool executor.  Whatever the width, outcomes merge in
        plan order, so answers, order, and confidences are identical on a
        healthy source.
    """

    max_source_failures: int | None = None
    deadline_seconds: float | None = None
    tolerate_budget_exhaustion: bool = True
    tolerate_deadline_exceeded: bool = True
    max_concurrency: int = 1

    def __post_init__(self) -> None:
        if self.max_source_failures is not None and self.max_source_failures < 0:
            raise QpiadError(
                f"max_source_failures must be non-negative, got "
                f"{self.max_source_failures}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise QpiadError(
                f"deadline_seconds must be non-negative, got {self.deadline_seconds}"
            )
        if self.max_concurrency < 1:
            raise QpiadError(
                f"max_concurrency must be at least 1, got {self.max_concurrency}"
            )

    @classmethod
    def strict(cls, max_concurrency: int = 1) -> ExecutionPolicy:
        """Propagate-everything policy: the first failure of any kind raises.

        This is the historical behaviour of the mediators that predate
        graceful degradation (correlated, join, aggregate processing).
        """
        return cls(
            max_source_failures=0,
            tolerate_budget_exhaustion=False,
            tolerate_deadline_exceeded=False,
            max_concurrency=max_concurrency,
        )
