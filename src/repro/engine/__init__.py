"""The unified retrieval engine: explicit plans, pluggable execution.

The paper's Figure 1 loop — issue the base query, generate rewritten
queries, order them, issue the top-K, post-filter, merge — used to be
re-implemented by every mediator, each copy separately threading failure
budgets, deadlines, telemetry, and cost accounting.  This package factors
the loop into three explicit pieces:

* :mod:`repro.engine.plan` — *what* to retrieve: :class:`PlannedQuery`
  steps (base / rewritten / multi-null, with plan rank and estimated
  precision/recall) collected into a :class:`RetrievalPlan`;
* :mod:`repro.engine.policy` — *how much* to tolerate:
  :class:`ExecutionPolicy` (failure budget, deadline, tolerate flags,
  concurrency width);
* :mod:`repro.engine.executor` — *how* to run it: the
  :class:`PlanExecutor` protocol with :class:`SerialExecutor` (default,
  behaviour-identical to the historical loops) and
  :class:`ConcurrentExecutor` (opt-in thread pool that issues queries in
  parallel but merges outcomes deterministically in plan order);
* :mod:`repro.engine.engine` — the :class:`RetrievalEngine` that binds
  them together and owns issuance accounting, telemetry spans, and
  degradation semantics in exactly one place.

Mediators construct plans and post-filter rows; the engine does the
issuing.  See ``docs/engine.md`` for the model and its determinism
guarantees.
"""

from repro.engine.engine import FailureKind, RetrievalEngine
from repro.engine.executor import (
    ConcurrentExecutor,
    ExecutionTask,
    PlanExecutor,
    SerialExecutor,
    TaskOutcome,
    build_executor,
)
from repro.engine.operators import (
    Inlet,
    Operator,
    OperatorNode,
    OperatorTree,
    StreamingProject,
    StreamingUnion,
    SymmetricHashJoin,
)
from repro.engine.plan import PlannedQuery, QueryKind, RetrievalPlan
from repro.engine.policy import ExecutionPolicy

__all__ = [
    "ConcurrentExecutor",
    "ExecutionPolicy",
    "ExecutionTask",
    "FailureKind",
    "Inlet",
    "Operator",
    "OperatorNode",
    "OperatorTree",
    "PlanExecutor",
    "PlannedQuery",
    "QueryKind",
    "RetrievalEngine",
    "RetrievalPlan",
    "SerialExecutor",
    "StreamingProject",
    "StreamingUnion",
    "SymmetricHashJoin",
    "TaskOutcome",
    "build_executor",
]
