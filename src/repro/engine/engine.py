"""The retrieval engine: one place for issuance, budgets, and telemetry.

:class:`RetrievalEngine` is created per retrieval.  Mediators hand it
planned queries; it issues them through the configured
:class:`~repro.engine.executor.PlanExecutor`, billing every call *before*
it runs (the accounting invariant: ``stats.queries_issued`` equals the
source's own call log, whatever the weather), wrapping every call in a
telemetry span when traced, and enforcing the
:class:`~repro.engine.policy.ExecutionPolicy` — failure budget, source
budget exhaustion, wall-clock deadline — identically for every mediator
and every executor.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Callable, Iterable, Iterator, Protocol

from repro.engine.executor import ExecutionTask, PlanExecutor, build_executor
from repro.engine.plan import PlannedQuery, QueryKind
from repro.engine.policy import ExecutionPolicy
from repro.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    NullBindingError,
    QueryBudgetExceededError,
    SourceUnavailableError,
)
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation
from repro.resilience.deadline import Deadline, deadline_scope
from repro.resilience.scheduler import SourceScheduler, current_scheduler
from repro.telemetry import SpanKind, Telemetry, maybe_span

__all__ = ["FailureKind", "RetrievalEngine", "RetrievalStatsLike"]

logger = logging.getLogger(__name__)


class FailureKind:
    """Kinds of absorbed retrieval failures (mirrored by ``QueryFailure``)."""

    SOURCE_UNAVAILABLE = "source-unavailable"
    BUDGET_EXHAUSTED = "budget-exhausted"
    DEADLINE = "deadline"
    ADMISSION_REJECTED = "admission-rejected"


class RetrievalStatsLike(Protocol):
    """What the engine needs from a stats object (structurally matched by
    :class:`~repro.core.results.RetrievalStats` — the engine cannot import
    it without creating a package cycle)."""

    queries_issued: int
    tuples_retrieved: int
    rewritten_issued: int

    def record_failure(
        self, query: SelectionQuery | None, kind: str, message: str
    ) -> Any: ...


class _SourceLike(Protocol):
    def execute(self, query: SelectionQuery) -> Relation: ...

    def execute_null_binding(
        self, query: SelectionQuery, max_nulls: int | None = ...
    ) -> Relation: ...


_SPAN_KINDS = {
    QueryKind.BASE: SpanKind.BASE_QUERY,
    QueryKind.REWRITTEN: SpanKind.REWRITTEN_QUERY,
    QueryKind.RELAXED: SpanKind.RELAXED_QUERY,
    QueryKind.MULTI_NULL: SpanKind.MULTI_NULL,
}

# What the engine does with an absorbed outcome.
_CONTINUE = "continue"
_HALT = "halt"
_RAISE = "raise"


class RetrievalEngine:
    """Executes retrieval plans for one mediated retrieval.

    Parameters
    ----------
    source:
        Default source for planned queries without a per-step override.
    policy:
        Failure/deadline/concurrency limits (see :class:`ExecutionPolicy`).
    stats:
        The retrieval's cost accounting; every issued call is counted
        here *before* it runs.
    executor:
        Execution strategy; defaults to one built from
        ``policy.max_concurrency``.
    telemetry:
        Optional telemetry hook; every source call becomes a span and
        feeds the ``mediator.*`` counters.
    clock:
        Injectable monotonic clock backing ``policy.deadline_seconds``.
        The deadline window opens when the engine is constructed.
    record_failures:
        Whether absorbed failures and blown deadlines are recorded into
        ``stats.failures``.  The streaming interface passes ``False`` —
        a generator has no result object to attach a failure log to —
        while still counting issuance and telemetry identically.
    label:
        Description of the retrieval (normally the user query) used in
        deadline messages.
    """

    def __init__(
        self,
        source: _SourceLike | None,
        policy: ExecutionPolicy,
        stats: RetrievalStatsLike,
        *,
        executor: PlanExecutor | None = None,
        telemetry: Telemetry | None = None,
        clock: Callable[[], float] = time.monotonic,
        record_failures: bool = True,
        label: str | None = None,
        scheduler: SourceScheduler | None = None,
    ):
        self._source = source
        self._policy = policy
        self.stats = stats
        self._scheduler = scheduler if scheduler is not None else current_scheduler()
        self._executor = executor if executor is not None else build_executor(
            policy.max_concurrency, scheduler=self._scheduler
        )
        self._telemetry = telemetry
        self._clock = clock
        self._record_failures = record_failures
        self._label = label
        self._started = clock()
        # The policy deadline as a propagatable value: queued admission
        # waits and retry backoffs below this engine cap against it.
        self._deadline = (
            Deadline(self._started + policy.deadline_seconds, clock)
            if policy.deadline_seconds is not None
            else None
        )
        self._lock = threading.Lock()
        self._source_failures = 0
        self._deadline_noted = False
        self.degraded = False

    # ------------------------------------------------------------------ #
    # Plan execution

    def run_base(self, step: PlannedQuery) -> Relation:
        """Issue a base query inline; its failure always propagates.

        Base queries run serially and outside the failure budget: without
        certain answers there is nothing to degrade *to*.
        """
        return self._issue(step)

    def stream(
        self, plan: Iterable[PlannedQuery]
    ) -> Iterator[tuple[PlannedQuery, Relation]]:
        """Execute planned queries, yielding ``(step, relation)`` in plan order.

        Failed steps are absorbed (recorded, counted, skipped) or
        re-raised according to the policy; a blown deadline stops
        issuance — work in flight completes and merges, nothing new
        starts — and is noted exactly once.
        """
        steps = list(plan)
        if not steps:
            return
        halted = [False]

        def should_stop() -> bool:
            return halted[0] or self.deadline_exceeded()

        tasks = (
            ExecutionTask(step.rank, self._runner(step)) for step in steps
        )
        outcomes = self._executor.map(tasks, should_stop)
        consumed = 0
        try:
            for step, outcome in zip(steps, outcomes):
                consumed += 1
                if outcome.error is None:
                    if step.kind == QueryKind.REWRITTEN:
                        with self._lock:
                            self.stats.rewritten_issued += 1
                    yield step, outcome.value
                    continue
                verdict = self._absorb(step, outcome.error)
                if verdict == _RAISE:
                    raise outcome.error
                if verdict == _HALT:
                    halted[0] = True
                    break
        finally:
            closer = getattr(outcomes, "close", None)
            if closer is not None:
                closer()
        if consumed < len(steps) and not halted[0] and self.deadline_exceeded():
            self._note_deadline()

    def stream_tuples(
        self, plan: Iterable[PlannedQuery]
    ) -> Iterator[tuple[PlannedQuery, Any]]:
        """Execute planned queries, yielding ``(step, row)`` as calls complete.

        The incremental tuple path behind the non-blocking operators
        (:mod:`repro.engine.operators`): instead of merging whole
        relations back in plan order, each source call's rows surface the
        moment that call returns — completion order across steps, source
        row order within a step.  A symmetric-hash join fed by this
        stream emits its first joined tuple as soon as a match exists,
        independent of the slowest source.

        Billing, telemetry, and failure absorption are identical to
        :meth:`stream` — every call is counted before it runs — but
        failures are absorbed in completion order, so under a failure
        *budget* the set of absorbed steps may be schedule-dependent
        (the strict policies the join processors run under are not
        affected: their first failure raises at any width).  Consumers
        must impose their own deterministic final order: rank at the
        end, stream in the middle.
        """
        steps = list(plan)
        if not steps:
            return
        halted = [False]

        def should_stop() -> bool:
            return halted[0] or self.deadline_exceeded()

        tasks = (
            ExecutionTask(step.rank, self._runner(step)) for step in steps
        )
        by_rank = {step.rank: step for step in steps}
        outcomes = self._executor.map_completed(tasks, should_stop)
        consumed = 0
        try:
            for outcome in outcomes:
                consumed += 1
                step = by_rank[outcome.rank]
                if outcome.error is None:
                    if step.kind == QueryKind.REWRITTEN:
                        with self._lock:
                            self.stats.rewritten_issued += 1
                    for row in outcome.value:
                        yield step, row
                    continue
                verdict = self._absorb(step, outcome.error)
                if verdict == _RAISE:
                    raise outcome.error
                if verdict == _HALT:
                    halted[0] = True
                    break
        finally:
            closer = getattr(outcomes, "close", None)
            if closer is not None:
                closer()
        if consumed < len(steps) and not halted[0] and self.deadline_exceeded():
            self._note_deadline()

    def deadline_exceeded(self) -> bool:
        deadline = self._policy.deadline_seconds
        return deadline is not None and self._clock() - self._started > deadline

    # ------------------------------------------------------------------ #
    # One billable source call

    def _runner(self, step: PlannedQuery) -> Callable[[], Relation]:
        return lambda: self._issue(step)

    def _issue(self, step: PlannedQuery) -> Relation:
        """One billable source call: counted *before* it runs, spanned when traced.

        Issuance is recorded up front so calls that fail — transiently, on
        an exhausted budget, or with the response lost after the source
        already charged for the work — still appear in
        ``stats.queries_issued``.  This keeps the mediator's cost
        accounting aligned with the source's own access log instead of
        silently undercounting exactly the calls that hurt most.  Runs on
        the executor's thread, so all shared bookkeeping is locked.
        """
        source = step.source if step.source is not None else self._source
        if source is None:
            raise ValueError(f"planned query {step.query} has no source to run on")
        with self._lock:
            self.stats.queries_issued += 1
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.count("mediator.queries_issued")
        attributes: dict[str, Any] = {"query": str(step.query)}
        if step.kind == QueryKind.REWRITTEN:
            attributes["precision"] = round(step.estimated_precision, 6)
        if step.source is not None:
            attributes["source"] = getattr(source, "name", "?")
        with maybe_span(
            telemetry, step.span_name(), _SPAN_KINDS[step.kind], **attributes
        ) as span:
            retrieved = self._call_source(source, step)
            if span is not None:
                span.set(tuples=len(retrieved))
        with self._lock:
            self.stats.tuples_retrieved += len(retrieved)
        if telemetry is not None:
            telemetry.count("mediator.tuples_retrieved", len(retrieved))
        return retrieved

    def _call_source(self, source: Any, step: PlannedQuery) -> Relation:
        """Put one planned call on the wire, via the scheduler when present.

        The thunk carries the engine's deadline as ambient state so
        layers beneath the call (retry backoff sleeps, hedge copies on
        scheduler threads) see the same budget the engine enforces
        between calls.  Hedge backups launched by the scheduler are
        billed through ``_bill_hedge`` the moment they fire, keeping
        ``stats.queries_issued`` equal to the source's own call log.
        """
        if step.kind == QueryKind.MULTI_NULL:
            operation = f"null-binding:{step.max_nulls}"

            def perform() -> Relation:
                return source.execute_null_binding(step.query, max_nulls=step.max_nulls)
        else:
            operation = "execute"

            def perform() -> Relation:
                return source.execute(step.query)

        def thunk() -> Relation:
            with deadline_scope(self._deadline):
                return perform()

        scheduler = self._scheduler
        if scheduler is None:
            return thunk()
        return scheduler.call(
            source,
            step.query,
            operation,
            thunk,
            deadline=self._deadline,
            on_hedge_launch=self._bill_hedge,
        )

    def _bill_hedge(self) -> None:
        """Count a hedge backup as one more issued query, as it launches."""
        with self._lock:
            self.stats.queries_issued += 1
        if self._telemetry is not None:
            self._telemetry.count("mediator.queries_issued")
            self._telemetry.count("mediator.hedges_issued")

    # ------------------------------------------------------------------ #
    # Policy enforcement (absorbed in plan-merge order, so failure
    # semantics do not depend on the execution strategy)

    def _absorb(self, step: PlannedQuery, error: BaseException) -> str:
        if step.required:
            # Required steps are exempt from every absorption rule: their
            # failure is the retrieval's failure (counterfactual baselines).
            return _RAISE
        if isinstance(error, NullBindingError) and step.kind == QueryKind.MULTI_NULL:
            # A capability gap, not a failure: the attempt was billed (the
            # source's own log records the rejection) but lost no answers.
            return _CONTINUE
        failure_query = None if step.kind == QueryKind.MULTI_NULL else step.query
        if isinstance(error, QueryBudgetExceededError):
            if self._record_failures:
                self.stats.record_failure(
                    failure_query, FailureKind.BUDGET_EXHAUSTED, str(error)
                )
            self.degraded = True
            if self._telemetry is not None:
                self._telemetry.count("mediator.budget_exhausted")
            if self._policy.tolerate_budget_exhaustion:
                return _HALT  # degrade gracefully: ship what we have
            return _RAISE
        if isinstance(error, AdmissionRejectedError):
            # Load shedding: the scheduler refused to queue the call.
            # Absorbed under the same failure budget as transient source
            # errors — the plan degrades instead of failing outright —
            # but counted separately so congestion is visible as such.
            with self._lock:
                self._source_failures += 1
                failures = self._source_failures
            if self._record_failures:
                self.stats.record_failure(
                    failure_query, FailureKind.ADMISSION_REJECTED, str(error)
                )
            self.degraded = True
            if self._telemetry is not None:
                self._telemetry.count("mediator.load_shed")
            budget = self._policy.max_source_failures
            if budget is not None and failures > budget:
                return _RAISE
            logger.info(
                "planned query %r was load-shed by the source scheduler; "
                "continuing with the remaining plan", step.query,
            )
            return _CONTINUE
        if isinstance(error, DeadlineExceededError):
            # A layer below the engine (admission wait, retry backoff,
            # dedup follower timeout) hit the propagated deadline.  Note
            # it once and halt: nothing later in the plan can be
            # admitted either.
            self._note_deadline()
            return _HALT
        if isinstance(error, SourceUnavailableError):
            with self._lock:
                self._source_failures += 1
                failures = self._source_failures
            if self._record_failures:
                self.stats.record_failure(
                    failure_query, FailureKind.SOURCE_UNAVAILABLE, str(error)
                )
            self.degraded = True
            if self._telemetry is not None:
                self._telemetry.count("mediator.source_failures")
            budget = self._policy.max_source_failures
            if budget is not None and failures > budget:
                return _RAISE
            logger.info(
                "planned query %r failed transiently (%s); continuing "
                "with the remaining plan", step.query, error,
            )
            return _CONTINUE  # skip this step, the rest of the plan stands
        return _RAISE

    def _note_deadline(self) -> None:
        """Record the blown deadline; raise when strict mode demands it.

        Noted at most once per retrieval: a deadline error absorbed from
        a plan step and the post-stream deadline check must not produce
        two failure records for the same spent budget.
        """
        with self._lock:
            if self._deadline_noted:
                return
            self._deadline_noted = True
        elapsed = self._clock() - self._started
        message = (
            f"retrieval for {self._label} exceeded its deadline of "
            f"{self._policy.deadline_seconds}s after {elapsed:.3f}s"
        )
        if self._record_failures:
            self.stats.record_failure(None, FailureKind.DEADLINE, message)
        if self._telemetry is not None:
            self._telemetry.count("mediator.deadline_exceeded")
        self.degraded = True
        if not self._policy.tolerate_deadline_exceeded:
            raise DeadlineExceededError(message)
        logger.info("%s; returning a degraded result", message)
