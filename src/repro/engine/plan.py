"""Retrieval plans: the *what* of a mediated retrieval.

A plan is an ordered sequence of :class:`PlannedQuery` steps.  Order is
semantic — it is the precision order of Section 4.1's F-measure ranking,
and every executor merges outcomes back in exactly this order, which is
what makes concurrent execution indistinguishable from serial execution
on a healthy source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.query.query import SelectionQuery

if TYPE_CHECKING:
    from repro.sources.autonomous import AutonomousSource

__all__ = ["PlannedQuery", "QueryKind", "RetrievalPlan"]


class QueryKind:
    """The ways a mediated retrieval touches a source (Figure 1, plus the
    relaxation extension of Section 7)."""

    BASE = "base"
    REWRITTEN = "rewritten"
    RELAXED = "relaxed"
    MULTI_NULL = "multi-null"

    ALL = (BASE, REWRITTEN, RELAXED, MULTI_NULL)


@dataclass(frozen=True)
class PlannedQuery:
    """One step of a retrieval plan.

    Parameters
    ----------
    query:
        The selection query to put on the wire.
    kind:
        One of :class:`QueryKind` — decides how the engine issues it
        (``execute`` vs ``execute_null_binding``) and which span kind and
        failure bookkeeping it gets.
    rank:
        Position in the plan.  Outcomes are always merged in rank order.
    estimated_precision:
        The rewritten query's estimated precision (Section 4.1); doubles
        as the confidence of every answer it retrieves.  1.0 for base
        queries — their answers are certain.
    estimated_recall:
        The rewriting's estimated recall (selectivity-based); carried for
        ranking diagnostics, not used during execution.
    target_attribute:
        For rewritten steps, the attribute whose constraint was replaced —
        the post-filter keeps only rows NULL on it.
    explanation:
        The mined AFD that justified this rewriting (opaque to the
        engine; threaded through to :class:`~repro.core.results.RankedAnswer`).
    source:
        Optional per-step source override for plans spanning several
        sources (joins, correlated mediation).  ``None`` uses the
        engine's default source.
    label:
        Optional span-name prefix override (defaults to *kind*), e.g.
        ``"correlated-base"``.
    max_nulls:
        For :attr:`QueryKind.MULTI_NULL` steps, the NULL budget handed to
        ``execute_null_binding`` (``None`` = unlimited, the mediator's
        historical behaviour; the baselines bind exactly one).
    required:
        A required step's failure always propagates, whatever the policy —
        it is exempt from every absorption rule, including the
        capability-gap pass the multi-NULL fetch normally gets.  The
        counterfactual baselines use this: they exist to quantify what
        NULL binding would buy, so a source that cannot bind NULL must
        fail the retrieval loudly.
    """

    query: SelectionQuery
    kind: str = QueryKind.REWRITTEN
    rank: int = 0
    estimated_precision: float = 1.0
    estimated_recall: float = 0.0
    target_attribute: str | None = None
    explanation: Any = None
    source: AutonomousSource | None = None
    label: str | None = None
    max_nulls: int | None = None
    required: bool = False

    def span_name(self) -> str:
        return f"{self.label or self.kind} {self.query}"


@dataclass(frozen=True)
class RetrievalPlan:
    """An ordered, immutable sequence of planned queries."""

    steps: tuple[PlannedQuery, ...] = field(default_factory=tuple)

    def __iter__(self) -> Iterator[PlannedQuery]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __bool__(self) -> bool:
        return bool(self.steps)
