"""Plan executors: the *how* of a retrieval.

An executor turns a stream of :class:`ExecutionTask` thunks into a
stream of :class:`TaskOutcome` values.  The contract every executor
honours:

* **Plan-order merge.**  Outcomes are yielded strictly in task order,
  whatever order the underlying calls complete in.  Answer order (and
  therefore ranking) never depends on the execution strategy.
* **Prefix semantics.**  When ``should_stop()`` turns true, no further
  tasks are *started*; work already in flight runs to completion (a call
  on the wire is never interrupted) but the outcome stream simply ends.
  The consumed outcomes are always a prefix of the plan.
* **Errors are data.**  A task that raises yields an outcome carrying
  the exception instead of propagating it; the engine decides whether to
  absorb or re-raise, so failure-budget semantics live in one place.

:class:`SerialExecutor` runs tasks inline and lazily — it is the
historical mediator loop, pulling one task per outcome consumed.
:class:`ConcurrentExecutor` keeps up to ``max_workers`` tasks in flight
on a thread pool; it trades the serial executor's strict laziness for
bounded prefetch.

Both additionally offer ``map_completed``, the streaming relaxation of
the plan-order contract: outcomes surface in *completion* order, so a
fast source call is never held behind a slow earlier one.  The
non-blocking operator layer (:mod:`repro.engine.operators`) is built on
it; consumers owe their own deterministic final ordering.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Protocol

from repro.errors import QpiadError

__all__ = [
    "ConcurrentExecutor",
    "ExecutionTask",
    "PlanExecutor",
    "SerialExecutor",
    "TaskOutcome",
    "build_executor",
]


@dataclass(frozen=True)
class ExecutionTask:
    """One unit of plan work: a rank and a thunk that performs the call."""

    rank: int
    run: Callable[[], Any]


@dataclass(frozen=True)
class TaskOutcome:
    """What became of one task: a value, or the exception it raised."""

    rank: int
    value: Any = None
    error: BaseException | None = None


class PlanExecutor(Protocol):
    """The pluggable execution strategy for a retrieval plan."""

    name: str

    def map(
        self,
        tasks: Iterable[ExecutionTask],
        should_stop: Callable[[], bool],
    ) -> Iterator[TaskOutcome]:
        """Yield one outcome per started task, in task order."""
        ...

    def map_completed(
        self,
        tasks: Iterable[ExecutionTask],
        should_stop: Callable[[], bool],
    ) -> Iterator[TaskOutcome]:
        """Yield one outcome per started task, in *completion* order.

        The streaming relaxation of :meth:`map`: outcomes surface the
        moment their task finishes, so a fast task is never held back
        behind a slow earlier one.  Consumers that need determinism must
        impose their own final order (rank at the end, stream in the
        middle); prefix semantics and errors-are-data still hold.
        """
        ...


class SerialExecutor:
    """Run tasks inline, one at a time, pulling lazily.

    This is the default and reproduces the historical mediator loops
    exactly: a task only runs when its outcome is consumed, so a caller
    that stops reading (the streaming interface) never spends budget on
    queries it did not need.

    *scheduler*, when given, is the process's
    :class:`~repro.resilience.SourceScheduler`; the executor notes each
    task start with it so admission telemetry can attribute load to the
    execution strategy that generated it.  (The actual admission /
    dedup / hedging happens inside the engine's per-call routing, not
    here — the executor's job is only *when* tasks run.)
    """

    name = "serial"

    def __init__(self, scheduler: Any = None):
        self.scheduler = scheduler

    def map(
        self,
        tasks: Iterable[ExecutionTask],
        should_stop: Callable[[], bool],
    ) -> Iterator[TaskOutcome]:
        for task in tasks:
            if should_stop():
                return
            if self.scheduler is not None:
                self.scheduler.note_task_start(self.name)
            try:
                value = task.run()
            except Exception as exc:
                yield TaskOutcome(task.rank, error=exc)
            else:
                yield TaskOutcome(task.rank, value=value)

    def map_completed(
        self,
        tasks: Iterable[ExecutionTask],
        should_stop: Callable[[], bool],
    ) -> Iterator[TaskOutcome]:
        """Serially, completion order *is* task order — same lazy loop."""
        return self.map(tasks, should_stop)


class ConcurrentExecutor:
    """Run up to *max_workers* tasks at once; merge outcomes in task order.

    The window is bounded: at most *max_workers* tasks are in flight (or
    prefetched) beyond what the consumer has read, so issuance stays
    roughly demand-driven.  When ``should_stop()`` turns true, submission
    stops; tasks already submitted run to completion (the pool is never
    cancelled) and any unread outcomes are discarded with it — exactly
    the serial executor's "break out of the loop" generalised to a
    window wider than one.
    """

    name = "concurrent"

    def __init__(self, max_workers: int, scheduler: Any = None):
        if max_workers < 1:
            raise QpiadError(f"max_workers must be at least 1, got {max_workers}")
        self.max_workers = max_workers
        self.scheduler = scheduler

    def map(
        self,
        tasks: Iterable[ExecutionTask],
        should_stop: Callable[[], bool],
    ) -> Iterator[TaskOutcome]:
        iterator = iter(tasks)
        with ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="qpiad-engine"
        ) as pool:
            window: deque[tuple[ExecutionTask, Future[Any]]] = deque()
            exhausted = False
            while True:
                while not exhausted and len(window) < self.max_workers:
                    if should_stop():
                        exhausted = True
                        break
                    try:
                        task = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    if self.scheduler is not None:
                        self.scheduler.note_task_start(self.name)
                    window.append((task, pool.submit(task.run)))
                if not window:
                    return
                task, future = window.popleft()
                error = future.exception()
                if error is not None:
                    yield TaskOutcome(task.rank, error=error)
                else:
                    yield TaskOutcome(task.rank, value=future.result())

    def map_completed(
        self,
        tasks: Iterable[ExecutionTask],
        should_stop: Callable[[], bool],
    ) -> Iterator[TaskOutcome]:
        """Yield outcomes the moment their call completes, window bounded.

        Up to ``max_workers`` tasks are in flight; whichever finishes
        first is yielded first and its slot refilled, so one slow source
        call never delays the answers of the fast ones.  Stopping and
        error semantics match :meth:`map` — submission stops when
        ``should_stop()`` turns true, in-flight work completes, and
        exceptions travel as data.
        """
        iterator = iter(tasks)
        with ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="qpiad-engine"
        ) as pool:
            in_flight: dict[Future[Any], ExecutionTask] = {}
            exhausted = False
            while True:
                while not exhausted and len(in_flight) < self.max_workers:
                    if should_stop():
                        exhausted = True
                        break
                    try:
                        task = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    if self.scheduler is not None:
                        self.scheduler.note_task_start(self.name)
                    in_flight[pool.submit(task.run)] = task
                if not in_flight:
                    return
                done, __ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    task = in_flight.pop(future)
                    error = future.exception()
                    if error is not None:
                        yield TaskOutcome(task.rank, error=error)
                    else:
                        yield TaskOutcome(task.rank, value=future.result())


def build_executor(max_concurrency: int, scheduler: Any = None) -> PlanExecutor:
    """The executor for a concurrency width: serial at 1, thread pool above.

    *scheduler* (a :class:`~repro.resilience.SourceScheduler`) is handed
    to the executor for load attribution; it is duck-typed here to keep
    this module free of a resilience-package import.
    """
    if max_concurrency < 1:
        raise QpiadError(
            f"max_concurrency must be at least 1, got {max_concurrency}"
        )
    if max_concurrency == 1:
        return SerialExecutor(scheduler=scheduler)
    return ConcurrentExecutor(max_concurrency, scheduler=scheduler)
