"""Capability model of autonomous web databases.

The paper's central constraint is that mediators talk to sources through
web-form interfaces which

* never allow binding NULL in a query ("list cars where Body Style is
  missing" is inexpressible),
* only expose a subset of the global schema (Yahoo! Autos lacks Body Style),
* may cap the number of results returned per query, and
* may limit how many queries a mediator can issue per session (e.g. Google
  Base rate limits).

:class:`SourceCapabilities` encodes these restrictions declaratively;
:class:`repro.sources.autonomous.AutonomousSource` enforces them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SourceCapabilities"]


@dataclass(frozen=True)
class SourceCapabilities:
    """Declarative interface restrictions of one autonomous source.

    Parameters
    ----------
    allows_null_binding:
        Whether queries may ask for tuples with NULL on an attribute.  Real
        web sources do not support this; it exists so the ``AllReturned`` /
        ``AllRanked`` baselines can be simulated for comparison (the paper
        evaluates them under this counterfactual).
    max_results:
        Per-query cap on returned tuples (``None`` = unlimited).
    query_budget:
        Total queries the source will answer per mediator session
        (``None`` = unlimited).  Exceeding it raises
        :class:`repro.errors.QueryBudgetExceededError`.
    exposes_cardinality:
        Whether the source reports its total tuple count (many sites show
        "N results found"); used for selectivity-ratio estimation.
    queryable_attributes:
        Attributes the web form allows *binding* (``None`` = every local
        attribute).  Models forms that display attributes they do not let
        you filter by — the "limited support for query patterns" of the
        paper's abstract.  Returned tuples still carry all local attributes.
    rate_limit_per_second:
        Sustained request rate the source tolerates before throttling
        (``None`` = undeclared).  Unlike :attr:`query_budget` — a hard
        per-session total the source itself enforces — this is a *pacing*
        declaration the mediator honours voluntarily: the
        :class:`~repro.resilience.SourceScheduler` turns it into a
        token-bucket admission limit so concurrent plans share the
        source's goodwill instead of racing for it.
    burst:
        Token-bucket capacity paired with :attr:`rate_limit_per_second`:
        how many calls may be issued back-to-back before pacing kicks in.
        ``None`` lets the scheduler pick its default.
    max_concurrent_requests:
        How many calls the source tolerates *in flight* at once
        (``None`` = undeclared).  The scheduler queues (or sheds)
        admissions beyond this cap.
    """

    allows_null_binding: bool = False
    max_results: int | None = None
    query_budget: int | None = None
    exposes_cardinality: bool = True
    queryable_attributes: frozenset[str] | None = None
    rate_limit_per_second: float | None = None
    burst: int | None = None
    max_concurrent_requests: int | None = None

    def can_bind(self, attribute: str) -> bool:
        """Whether the interface accepts a constraint on *attribute*."""
        return self.queryable_attributes is None or attribute in self.queryable_attributes

    @classmethod
    def web_form(
        cls, max_results: int | None = None, query_budget: int | None = None
    ) -> "SourceCapabilities":
        """The typical restricted web-form interface (no NULL binding)."""
        return cls(
            allows_null_binding=False,
            max_results=max_results,
            query_budget=query_budget,
        )

    @classmethod
    def unrestricted(cls) -> "SourceCapabilities":
        """A fully permissive interface (used for oracles and baselines)."""
        return cls(allows_null_binding=True)
