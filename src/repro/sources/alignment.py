"""Coalescing redundant user-defined attributes (the Google Base problem).

The paper's fourth source of incompleteness: platforms that let users define
their own attributes accumulate redundant columns — ``Make`` vs
``Manufacturer`` — where a tuple filling one almost never fills the other,
inflating NULL counts on both.  Before mining such a source, a mediator
should *align* the redundant attributes into one.

Two pieces:

* :func:`find_redundant_attributes` — detect candidate pairs: attributes
  whose non-NULL sets barely overlap row-wise (*complementarity*) while
  their value domains overlap heavily (*same vocabulary*);
* :func:`merge_redundant_attributes` — coalesce groups of attributes into
  one column, taking the first non-NULL value per row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.values import NULL, is_null

__all__ = ["RedundancyCandidate", "find_redundant_attributes", "merge_redundant_attributes"]


@dataclass(frozen=True)
class RedundancyCandidate:
    """A pair of attributes that look like the same logical column."""

    first: str
    second: str
    complementarity: float  # fraction of rows where exactly one is non-NULL
    domain_overlap: float   # Jaccard overlap of the two value domains

    @property
    def score(self) -> float:
        return self.complementarity * self.domain_overlap


def find_redundant_attributes(
    relation: Relation,
    min_complementarity: float = 0.8,
    min_domain_overlap: float = 0.3,
) -> list[RedundancyCandidate]:
    """Candidate redundant attribute pairs, best first.

    A pair qualifies when (a) among rows where either attribute is present,
    at least *min_complementarity* have exactly one of the two (users fill
    one or the other, not both), and (b) the Jaccard overlap of their value
    domains is at least *min_domain_overlap* (they speak the same
    vocabulary).  Both conditions together separate true redundancy from
    merely-sparse unrelated columns.
    """
    names = relation.schema.names
    candidates: list[RedundancyCandidate] = []
    columns = {name: relation.column(name) for name in names}
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            either = exactly_one = 0
            for a, b in zip(columns[first], columns[second]):
                a_present = not is_null(a)
                b_present = not is_null(b)
                if a_present or b_present:
                    either += 1
                    if a_present != b_present:
                        exactly_one += 1
            if either == 0:
                continue
            complementarity = exactly_one / either
            if complementarity < min_complementarity:
                continue
            domain_a = {v for v in columns[first] if not is_null(v)}
            domain_b = {v for v in columns[second] if not is_null(v)}
            union = domain_a | domain_b
            if not union:
                continue
            overlap = len(domain_a & domain_b) / len(union)
            if overlap < min_domain_overlap:
                continue
            candidates.append(
                RedundancyCandidate(first, second, complementarity, overlap)
            )
    candidates.sort(key=lambda c: -c.score)
    return candidates


def merge_redundant_attributes(
    relation: Relation,
    groups: Mapping[str, Sequence[str]],
) -> Relation:
    """Coalesce each group of redundant attributes into one column.

    ``groups`` maps a surviving attribute name to the redundant attributes
    folded into it (the survivor itself may be listed or not).  Per row the
    first non-NULL value across the group wins; the other columns are
    dropped from the schema.

    Raises :class:`SchemaError` when a row holds *conflicting* non-NULL
    values within a group — that is data disagreement, not redundancy, and
    silently picking one would corrupt the mined statistics.
    """
    schema = relation.schema
    drop: set[str] = set()
    resolved: dict[str, list[str]] = {}
    for survivor, members in groups.items():
        ordered = [survivor] + [m for m in members if m != survivor]
        for member in ordered:
            schema.index_of(member)  # validate
        resolved[survivor] = ordered
        drop.update(ordered[1:])
    for survivor in resolved:
        if survivor in drop:
            raise SchemaError(
                f"attribute {survivor!r} is both a survivor and merged away"
            )

    survivor_indices = {
        survivor: [schema.index_of(member) for member in members]
        for survivor, members in resolved.items()
    }

    new_attributes = [a for a in schema if a.name not in drop]
    new_schema = Schema(new_attributes)
    rows = []
    for row in relation:
        values = []
        for attribute in new_attributes:
            if attribute.name in survivor_indices:
                present = [
                    row[i] for i in survivor_indices[attribute.name] if not is_null(row[i])
                ]
                if len(set(present)) > 1:
                    raise SchemaError(
                        f"conflicting values {present!r} while merging into "
                        f"{attribute.name!r}; the group is not redundant"
                    )
                values.append(present[0] if present else NULL)
            else:
                values.append(row[schema.index_of(attribute.name)])
        rows.append(tuple(values))
    return Relation(new_schema, rows)
