"""Offline sampling of autonomous sources via random probing queries.

QPIAD's knowledge-mining module (Section 5 / Fig. 1) works on "a small
portion of data sampled from the autonomous database using random probing
queries".  :class:`RandomProbingSampler` reproduces that protocol faithfully:
it only interacts with the source through its query interface, bootstraps a
pool of plausible probe values from seed queries, and keeps probing random
``attribute = value`` combinations until the requested sample size is
reached.

For controlled experiments (where we own the experimental dataset anyway)
:func:`uniform_sample` draws a uniform row sample directly, which is how the
paper's train/test partitions of the experimental dataset are built (§6.2).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.errors import MiningError, QpiadError
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation, Row
from repro.relational.values import is_null
from repro.sources.autonomous import AutonomousSource

__all__ = ["RandomProbingSampler", "uniform_sample", "split_relation"]


def uniform_sample(relation: Relation, fraction: float, rng: random.Random) -> Relation:
    """A uniform random sample of ``fraction`` of *relation*'s rows.

    The sample preserves the original row order (so repeated runs with the
    same seed are reproducible and order-insensitive code stays honest).
    """
    if not 0.0 < fraction <= 1.0:
        raise QpiadError(f"sample fraction must be in (0, 1], got {fraction}")
    count = max(1, round(len(relation) * fraction))
    indices = sorted(rng.sample(range(len(relation)), min(count, len(relation))))
    rows = [relation.rows[i] for i in indices]
    return Relation(relation.schema, rows)


def split_relation(
    relation: Relation, first_fraction: float, rng: random.Random
) -> tuple[Relation, Relation]:
    """Partition *relation* into two disjoint relations.

    Used for the paper's training/test split of the experimental dataset:
    the first part (e.g. 10%) trains the knowledge miner, the remainder
    plays the role of the autonomous database under test.
    """
    if not 0.0 < first_fraction < 1.0:
        raise QpiadError(f"split fraction must be in (0, 1), got {first_fraction}")
    count = max(1, round(len(relation) * first_fraction))
    chosen = set(rng.sample(range(len(relation)), min(count, len(relation))))
    first_rows = [row for i, row in enumerate(relation.rows) if i in chosen]
    second_rows = [row for i, row in enumerate(relation.rows) if i not in chosen]
    return Relation(relation.schema, first_rows), Relation(relation.schema, second_rows)


class RandomProbingSampler:
    """Build a sample of an autonomous source using only its query interface.

    Parameters
    ----------
    source:
        The source to probe.
    rng:
        Seeded random generator; all randomness flows through it.
    seed_queries:
        Queries issued first to bootstrap the probe-value pool.  A mediator
        always has a few plausible values (years, makes) to start from.
    probe_attributes:
        Attributes eligible for probing; defaults to all categorical-looking
        local attributes (those whose observed values are non-numeric or
        low-cardinality).
    """

    def __init__(
        self,
        source: AutonomousSource,
        rng: random.Random,
        seed_queries: Sequence[SelectionQuery],
        probe_attributes: Sequence[str] | None = None,
    ):
        if not seed_queries:
            raise MiningError("random probing requires at least one seed query")
        self._source = source
        self._rng = rng
        self._seed_queries = list(seed_queries)
        if probe_attributes is None:
            self._probe_attributes = list(source.schema.names)
        else:
            for name in probe_attributes:
                if not source.supports(name):
                    raise MiningError(
                        f"probe attribute {name!r} is not in the local schema of "
                        f"{source.name!r}"
                    )
            self._probe_attributes = list(probe_attributes)

    def sample(self, target_size: int, max_queries: int = 500) -> Relation:
        """Probe until ``target_size`` distinct tuples are collected.

        Stops early when ``max_queries`` probes have been answered or the
        value pool is exhausted; raises :class:`MiningError` if nothing at
        all could be retrieved.
        """
        collected: dict[Row, None] = {}
        pool: dict[str, list] = {name: [] for name in self._probe_attributes}
        pool_seen: dict[str, set] = {name: set() for name in self._probe_attributes}
        issued = 0

        def absorb(result: Relation) -> None:
            schema = result.schema
            for row in result:
                collected.setdefault(row)
                for name in self._probe_attributes:
                    if name not in schema:
                        continue
                    value = row[schema.index_of(name)]
                    if is_null(value) or value in pool_seen[name]:
                        continue
                    pool_seen[name].add(value)
                    pool[name].append(value)

        for query in self._seed_queries:
            if issued >= max_queries or len(collected) >= target_size:
                break
            absorb(self._source.execute(query))
            issued += 1

        attempts_without_progress = 0
        while len(collected) < target_size and issued < max_queries:
            candidates = [name for name in self._probe_attributes if pool[name]]
            if not candidates:
                break
            attribute = self._rng.choice(candidates)
            value = self._rng.choice(pool[attribute])
            before = len(collected)
            absorb(self._source.execute(SelectionQuery.equals(attribute, value)))
            issued += 1
            if len(collected) == before:
                attempts_without_progress += 1
                if attempts_without_progress > 50:
                    break
            else:
                attempts_without_progress = 0

        if not collected:
            raise MiningError(
                f"random probing of {self._source.name!r} retrieved no tuples; "
                "check the seed queries"
            )
        rows = list(collected.keys())
        if len(rows) > target_size:
            rows = rows[:target_size]
        return Relation(self._source.schema, rows)


def estimate_sample_ratio(
    source: AutonomousSource,
    sample: Relation,
    probe_queries: Iterable[SelectionQuery],
) -> float:
    """Estimate ``SmplRatio(R)`` = |database| / |sample| (Section 5.4).

    When the source exposes its cardinality we use it directly; otherwise we
    issue the probe queries to both the source and the sample and take the
    ratio of total result cardinalities.
    """
    if not len(sample):
        raise MiningError("cannot estimate a sample ratio from an empty sample")
    if source.capabilities.exposes_cardinality:
        return source.cardinality() / len(sample)
    from repro.query.executor import certain_answers  # local import to avoid cycle

    source_total = 0
    sample_total = 0
    for query in probe_queries:
        source_total += len(source.execute(query))
        sample_total += len(certain_answers(query, sample))
    if sample_total == 0:
        raise MiningError(
            "probe queries matched nothing in the sample; cannot estimate ratio"
        )
    return source_total / sample_total
