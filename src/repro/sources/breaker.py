"""Circuit breaking for repeatedly failing autonomous sources.

Retrying (:mod:`repro.sources.retrying`) absorbs *occasional* hiccups; when
a source is properly down, retrying every rewritten query multiplies the
outage into minutes of wasted timeouts and burns the goodwill of a backend
already struggling.  :class:`CircuitBreakerSource` implements the standard
three-state breaker:

* **closed** — calls pass through; consecutive transient failures are
  counted, and reaching ``failure_threshold`` opens the circuit;
* **open** — calls fail fast with :class:`~repro.errors.CircuitOpenError`
  (no source contact) until ``recovery_seconds`` elapse;
* **half-open** — exactly one trial call (the *probe*) is let through:
  success closes the circuit, failure re-opens it for another recovery
  window.  Concurrent callers arriving while the probe is in flight fail
  fast — a recovering backend gets one feeler, not a stampede of every
  caller that was queued up behind the outage.

Only :class:`~repro.errors.SourceUnavailableError` trips the breaker.
Capability errors (unsupported attributes, NULL binding, exhausted budgets)
say nothing about source *health* — they pass through without touching the
failure count.  Time is read from an injectable clock so tests and
simulations never sleep.  All state transitions happen under a lock, so
the breaker is safe under the concurrent plan executor.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import CircuitOpenError, QpiadError, SourceUnavailableError
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.telemetry import Telemetry

__all__ = ["BreakerState", "BreakerStatistics", "CircuitBreakerSource"]


class BreakerState:
    """String constants naming the breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class BreakerStatistics:
    """How often the breaker intervened."""

    successes: int = 0
    failures: int = 0
    fast_failures: int = 0  # calls rejected while open, source never contacted
    opens: int = 0
    recoveries: int = 0  # half-open trials that closed the circuit again


class CircuitBreakerSource:
    """Fail fast against a source that keeps failing.

    Parameters
    ----------
    inner:
        Any source-shaped object; stack this *outside* a
        :class:`~repro.sources.retrying.RetryingSource` wrapping it, or
        inside one to let the retry loop span recovery windows — see
        ``docs/robustness.md`` for the trade-off.
    failure_threshold:
        Consecutive transient failures that open the circuit.
    recovery_seconds:
        How long an open circuit rejects calls before a half-open trial.
    clock:
        Injectable monotonic clock (for tests).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hook; state changes
        become ``breaker.transitions`` plus ``breaker.opens`` /
        ``breaker.recoveries``, and every rejected call counts as
        ``breaker.fast_failures``.  ``None`` emits nothing.
    """

    def __init__(
        self,
        inner,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        telemetry: Telemetry | None = None,
    ):
        if failure_threshold < 1:
            raise QpiadError(
                f"failure_threshold must be at least 1, got {failure_threshold}"
            )
        if recovery_seconds < 0:
            raise QpiadError("recovery_seconds must be non-negative")
        self.inner = inner
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self._clock = clock
        self._telemetry = telemetry
        self._lock = threading.Lock()
        self.statistics = BreakerStatistics()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    # -- breaker core ------------------------------------------------------

    # Decisions _admit can reach about one call.
    _PASS = "pass"
    _REJECT_OPEN = "reject-open"
    _REJECT_PROBE = "reject-probe"

    @property
    def state(self) -> str:
        """The current state, advancing open → half-open when time is up."""
        transitioned = False
        with self._lock:
            if (
                self._state == BreakerState.OPEN
                and self._clock() - self._opened_at >= self.recovery_seconds
            ):
                self._state = BreakerState.HALF_OPEN
                self._probe_in_flight = False
                transitioned = True
            current = self._state
        if transitioned and self._telemetry is not None:
            self._telemetry.count("breaker.transitions")
        return current

    def _admit(self) -> "tuple[str, str, int, float]":
        """Decide one call's fate atomically.

        Returns ``(decision, state_at_call, consecutive_failures,
        seconds_until_half_open)`` — the latter two captured under the
        lock so rejection messages never read torn state.  In half-open,
        the first caller claims the probe slot; everyone else is
        rejected until the probe's outcome resolves the state.
        """
        transitioned = False
        with self._lock:
            if (
                self._state == BreakerState.OPEN
                and self._clock() - self._opened_at >= self.recovery_seconds
            ):
                self._state = BreakerState.HALF_OPEN
                self._probe_in_flight = False
                transitioned = True
            state = self._state
            failures = self._consecutive_failures
            remaining = self.recovery_seconds - (self._clock() - self._opened_at)
            if state == BreakerState.OPEN:
                self.statistics.fast_failures += 1
                decision = self._REJECT_OPEN
            elif state == BreakerState.HALF_OPEN and self._probe_in_flight:
                self.statistics.fast_failures += 1
                decision = self._REJECT_PROBE
            elif state == BreakerState.HALF_OPEN:
                self._probe_in_flight = True
                decision = self._PASS
            else:
                decision = self._PASS
        if transitioned and self._telemetry is not None:
            self._telemetry.count("breaker.transitions")
        return decision, state, failures, remaining

    def _call(self, operation: Callable[[], Any]) -> Any:
        decision, state, failures, remaining = self._admit()
        if decision == self._REJECT_OPEN:
            if self._telemetry is not None:
                self._telemetry.count("breaker.fast_failures")
            raise CircuitOpenError(
                f"circuit for source {self.inner.name!r} is open after "
                f"{failures} consecutive failures; retry in {remaining:.1f}s"
            )
        if decision == self._REJECT_PROBE:
            if self._telemetry is not None:
                self._telemetry.count("breaker.fast_failures")
            raise CircuitOpenError(
                f"circuit for source {self.inner.name!r} is half-open and its "
                "trial call is already in flight; failing fast"
            )
        try:
            result = operation()
        except SourceUnavailableError:
            self._on_failure(state)
            raise
        self._on_success(state)
        return result

    def _on_failure(self, state_at_call: str) -> None:
        opened = False
        with self._lock:
            self.statistics.failures += 1
            self._consecutive_failures += 1
            if state_at_call == BreakerState.HALF_OPEN:
                self._probe_in_flight = False
            # A failed half-open probe re-opens immediately, whatever the count.
            if (
                state_at_call == BreakerState.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                if self._state != BreakerState.OPEN:
                    self.statistics.opens += 1
                    opened = True
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()
        if opened and self._telemetry is not None:
            self._telemetry.count("breaker.opens")
            self._telemetry.count("breaker.transitions")

    def _on_success(self, state_at_call: str) -> None:
        recovered = False
        with self._lock:
            self.statistics.successes += 1
            if state_at_call == BreakerState.HALF_OPEN:
                self.statistics.recoveries += 1
                self._probe_in_flight = False
                recovered = True
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
        if recovered and self._telemetry is not None:
            self._telemetry.count("breaker.recoveries")
            self._telemetry.count("breaker.transitions")

    # -- the source surface -------------------------------------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def schema(self) -> Schema:
        return self.inner.schema

    @property
    def capabilities(self):
        return self.inner.capabilities

    def supports(self, attribute: str) -> bool:
        return self.inner.supports(attribute)

    def can_answer(self, query: SelectionQuery) -> bool:
        # Expressibility, not health: an open circuit does not change what
        # the web form could answer once the source recovers.
        checker = getattr(self.inner, "can_answer", None)
        return True if checker is None else checker(query)

    def cardinality(self) -> int:
        return self._call(self.inner.cardinality)

    def execute(self, query: SelectionQuery) -> Relation:
        return self._call(lambda: self.inner.execute(query))

    def execute_null_binding(self, query: SelectionQuery, max_nulls: int | None = None):
        return self._call(
            lambda: self.inner.execute_null_binding(query, max_nulls=max_nulls)
        )

    def execute_certain_or_possible(self, query: SelectionQuery) -> Relation:
        return self._call(lambda: self.inner.execute_certain_or_possible(query))

    def scan(self, limit: int | None = None) -> Relation:
        return self._call(lambda: self.inner.scan(limit))

    def reset_statistics(self) -> None:
        self.inner.reset_statistics()
        with self._lock:
            self.statistics = BreakerStatistics()

    def __repr__(self) -> str:
        return (
            f"CircuitBreakerSource({self.inner!r}, state={self.state!r}, "
            f"threshold={self.failure_threshold})"
        )
