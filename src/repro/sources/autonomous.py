"""Simulated autonomous web databases.

An :class:`AutonomousSource` wraps a backend :class:`~repro.relational.Relation`
behind the web-form interface of :class:`~repro.sources.SourceCapabilities`.
The mediator can only interact with it through :meth:`execute` (and, for the
counterfactual baselines, :meth:`execute_null_binding`); it can never touch
or modify the backend relation — exactly the autonomy constraint QPIAD is
designed around.

The source also keeps access statistics (queries answered, tuples shipped)
so experiments can report query-processing and transmission costs (Fig. 8).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import (
    NullBindingError,
    QueryBudgetExceededError,
    UnsupportedAttributeError,
)
from repro.query.executor import certain_answers, certain_or_possible, possible_answers
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.capabilities import SourceCapabilities

__all__ = ["AccessStatistics", "AutonomousSource"]


@dataclass
class AccessStatistics:
    """Running totals of the traffic one mediator session generated.

    Updates are locked: with a concurrent plan executor several engine
    threads hit the same source, and these totals back the chaos suite's
    exact-accounting assertions.
    """

    queries_answered: int = 0
    tuples_returned: int = 0
    rejected_queries: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record(self, tuples: int) -> None:
        with self._lock:
            self.queries_answered += 1
            self.tuples_returned += tuples

    def record_rejection(self) -> None:
        with self._lock:
            self.rejected_queries += 1

    def reset(self) -> None:
        with self._lock:
            self.queries_answered = 0
            self.tuples_returned = 0
            self.rejected_queries = 0


class AutonomousSource:
    """A read-only, capability-restricted view over a backend relation.

    Parameters
    ----------
    name:
        Source identifier (e.g. ``"cars.com"``).
    backend:
        The full hidden relation.  The source projects it onto
        *local_attributes* — attributes outside the local schema are
        invisible in results and unqueryable, modelling sources whose local
        schema lacks global-schema attributes (Section 4.3).
    capabilities:
        Interface restrictions; defaults to a plain web form.
    local_attributes:
        Names of the attributes the source exposes; defaults to all backend
        attributes.
    """

    def __init__(
        self,
        name: str,
        backend: Relation,
        capabilities: SourceCapabilities | None = None,
        local_attributes: "tuple[str, ...] | list[str] | None" = None,
    ):
        self.name = name
        self.capabilities = capabilities or SourceCapabilities.web_form()
        if local_attributes is None:
            self._view = backend
        else:
            self._view = backend.project(list(local_attributes))
        self.statistics = AccessStatistics()

    # ------------------------------------------------------------------
    # Schema-level introspection (what a mediator can legitimately know)
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The local schema the source advertises."""
        return self._view.schema

    def supports(self, attribute: str) -> bool:
        """Whether *attribute* appears in the local schema."""
        return attribute in self._view.schema

    def can_answer(self, query: SelectionQuery) -> bool:
        """Whether the interface can express *query* at all.

        Every constrained attribute must be in the local schema *and*
        bindable through the web form.  The mediator consults this before
        issuing rewritten queries so unissuable ones are skipped rather
        than burned against the budget.
        """
        return all(
            attribute in self._view.schema and self.capabilities.can_bind(attribute)
            for attribute in query.constrained_attributes
        )

    def cardinality(self) -> int:
        """Total tuple count, if the interface exposes it."""
        if not self.capabilities.exposes_cardinality:
            raise UnsupportedAttributeError(
                f"source {self.name!r} does not expose its cardinality"
            )
        return len(self._view)

    # ------------------------------------------------------------------
    # Query interface
    # ------------------------------------------------------------------

    def execute(self, query: SelectionQuery) -> Relation:
        """Answer a conjunctive query with its certain answers.

        Enforces the web-form restrictions: every constrained attribute must
        be in the local schema and the query budget must not be exhausted.
        Results are capped at ``capabilities.max_results``.
        """
        self._validate(query)
        self._charge()
        result = certain_answers(query, self._view)
        result = self._cap(result)
        self.statistics.record(len(result))
        return result

    def execute_null_binding(
        self, query: SelectionQuery, max_nulls: int | None = None
    ) -> Relation:
        """Retrieve *possible* answers by binding NULL on constrained attributes.

        Only permitted when ``capabilities.allows_null_binding`` — real web
        databases reject this, which is exactly why QPIAD rewrites queries.
        The baselines (``AllReturned``/``AllRanked``) run against sources
        configured with this counterfactual capability.
        """
        if not self.capabilities.allows_null_binding:
            self.statistics.record_rejection()
            raise NullBindingError(
                f"source {self.name!r} does not support binding NULL values "
                f"(query {query!r})"
            )
        self._validate(query)
        self._charge()
        result = possible_answers(query, self._view, max_nulls=max_nulls)
        result = self._cap(result)
        self.statistics.record(len(result))
        return result

    def execute_certain_or_possible(self, query: SelectionQuery) -> Relation:
        """Certain plus possible answers in one scan (baseline helper)."""
        if not self.capabilities.allows_null_binding:
            self.statistics.record_rejection()
            raise NullBindingError(
                f"source {self.name!r} does not support binding NULL values"
            )
        self._validate(query)
        self._charge()
        result = self._cap(certain_or_possible(query, self._view))
        self.statistics.record(len(result))
        return result

    def scan(self, limit: int | None = None) -> Relation:
        """An unconstrained scan (browsing/pagination), budget-charged."""
        self._charge()
        result = self._view if limit is None else self._view.take(limit)
        result = self._cap(result)
        self.statistics.record(len(result))
        return result

    def reset_statistics(self) -> None:
        self.statistics.reset()

    # ------------------------------------------------------------------

    def _validate(self, query: SelectionQuery) -> None:
        for attribute in query.constrained_attributes:
            if attribute not in self._view.schema:
                self.statistics.record_rejection()
                raise UnsupportedAttributeError(
                    f"source {self.name!r} does not support attribute {attribute!r}"
                )
            if not self.capabilities.can_bind(attribute):
                self.statistics.record_rejection()
                raise UnsupportedAttributeError(
                    f"source {self.name!r} exposes {attribute!r} but its web form "
                    "cannot bind it"
                )

    def _charge(self) -> None:
        budget = self.capabilities.query_budget
        if budget is not None and self.statistics.queries_answered >= budget:
            raise QueryBudgetExceededError(
                f"source {self.name!r} exhausted its query budget of {budget}"
            )

    def _cap(self, relation: Relation) -> Relation:
        cap = self.capabilities.max_results
        if cap is not None and len(relation) > cap:
            return relation.take(cap)
        return relation

    def __repr__(self) -> str:
        return f"AutonomousSource({self.name!r}, {len(self._view)} tuples)"
