"""Autonomous web-database simulation: capabilities, sources, sampling."""

from repro.sources.alignment import (
    RedundancyCandidate,
    find_redundant_attributes,
    merge_redundant_attributes,
)
from repro.sources.autonomous import AccessStatistics, AutonomousSource
from repro.sources.breaker import BreakerState, BreakerStatistics, CircuitBreakerSource
from repro.sources.caching import CacheStatistics, CachingSource
from repro.sources.capabilities import SourceCapabilities
from repro.sources.registry import SourceRegistry
from repro.sources.retrying import RetryingSource, RetryStatistics
from repro.sources.sampler import (
    RandomProbingSampler,
    estimate_sample_ratio,
    split_relation,
    uniform_sample,
)

__all__ = [
    "SourceCapabilities",
    "AutonomousSource",
    "AccessStatistics",
    "SourceRegistry",
    "RandomProbingSampler",
    "uniform_sample",
    "split_relation",
    "estimate_sample_ratio",
    "CachingSource",
    "CacheStatistics",
    "RedundancyCandidate",
    "find_redundant_attributes",
    "merge_redundant_attributes",
    "RetryingSource",
    "RetryStatistics",
    "BreakerState",
    "BreakerStatistics",
    "CircuitBreakerSource",
]
