"""Mediator-side registry of autonomous sources and the global schema.

Section 4.3 of the paper considers a mediator exporting a *global schema*
over sources whose *local schemas* may lack some global attributes
(Yahoo! Autos has no ``Body Style``).  The registry answers the two
questions the correlated-source machinery needs:

* which sources support a given attribute, and
* which sources do *not* (and hence need cross-source rewriting).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.relational.schema import Schema
from repro.sources.autonomous import AutonomousSource

__all__ = ["SourceRegistry"]


class SourceRegistry:
    """Named collection of sources under one global schema.

    Parameters
    ----------
    global_schema:
        The mediator's exported schema.  Every source's local schema must be
        a subset of it (same attribute names; mapping heterogeneous names is
        assumed to be handled upstream by the schema-alignment layer, which
        is out of scope for the paper).
    sources:
        Initial sources to register.
    """

    def __init__(
        self, global_schema: Schema, sources: Iterable[AutonomousSource] = ()
    ):
        self.global_schema = global_schema
        self._sources: dict[str, AutonomousSource] = {}
        for source in sources:
            self.register(source)

    def register(self, source: AutonomousSource) -> None:
        """Add *source*, validating its local schema against the global one."""
        if source.name in self._sources:
            raise SchemaError(f"source {source.name!r} is already registered")
        for name in source.schema.names:
            if name not in self.global_schema:
                raise SchemaError(
                    f"source {source.name!r} exposes attribute {name!r} which is "
                    "not in the global schema"
                )
        self._sources[source.name] = source

    def get(self, name: str) -> AutonomousSource:
        try:
            return self._sources[name]
        except KeyError:
            raise SchemaError(f"no source named {name!r} is registered") from None

    def __iter__(self) -> Iterator[AutonomousSource]:
        return iter(self._sources.values())

    def __len__(self) -> int:
        return len(self._sources)

    def __contains__(self, name: object) -> bool:
        return name in self._sources

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._sources)

    def supporting(self, attribute: str) -> list[AutonomousSource]:
        """Sources whose local schema includes *attribute*."""
        return [source for source in self if source.supports(attribute)]

    def not_supporting(self, attribute: str) -> list[AutonomousSource]:
        """Sources whose local schema lacks *attribute* (need §4.3 handling)."""
        return [source for source in self if not source.supports(attribute)]
