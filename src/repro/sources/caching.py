"""Mediator-side result caching for autonomous sources.

Rewritten queries repeat across user queries (the same ``Model = Z4`` probe
serves every convertible-hunting query), and autonomous sources charge every
call against their budget.  :class:`CachingSource` memoizes query results at
the mediator so repeats cost nothing — the standard wrapper a production
mediator puts in front of a rate-limited web source.

The wrapper is transparent: it exposes the same interface as
:class:`~repro.sources.AutonomousSource` and enforces nothing itself; cache
*misses* still hit the underlying source with all its restrictions.

Two robustness guarantees the test suite pins:

* **Failures never poison the cache.**  A call that raises inserts
  nothing — the next identical query goes back to the source instead of
  replaying a cached exception or an empty placeholder.
* **Thread safety.**  Cache and statistics mutations are locked, so the
  wrapper can sit under the concurrent plan executor; the inner call
  itself runs outside the lock (it may sleep in a retry backoff) so a
  slow miss never blocks concurrent hits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import QpiadError
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.autonomous import AutonomousSource
from repro.telemetry import Telemetry

__all__ = ["CacheStatistics", "CachingSource"]


@dataclass
class CacheStatistics:
    """Hit/miss accounting of one caching wrapper."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachingSource:
    """An LRU result cache in front of an autonomous source.

    Parameters
    ----------
    inner:
        The wrapped source; only its certain-answer interface is cached
        (NULL-binding calls are baseline-only counterfactuals and stay
        uncached by design).
    capacity:
        Maximum number of distinct queries kept (least-recently-used
        eviction).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hook mirroring
        :attr:`statistics` into the ``cache.*`` counters (hits, misses,
        evictions) of a shared registry; ``None`` emits nothing.
    """

    def __init__(
        self,
        inner: AutonomousSource,
        capacity: int = 256,
        telemetry: Telemetry | None = None,
    ):
        if capacity < 1:
            raise QpiadError(f"cache capacity must be positive, got {capacity}")
        self.inner = inner
        self.capacity = capacity
        self.statistics = CacheStatistics()
        self._telemetry = telemetry
        self._lock = threading.Lock()
        self._cache: "OrderedDict[SelectionQuery, Relation]" = OrderedDict()

    # -- the AutonomousSource surface the mediator uses -------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def schema(self) -> Schema:
        return self.inner.schema

    @property
    def capabilities(self):
        return self.inner.capabilities

    def supports(self, attribute: str) -> bool:
        return self.inner.supports(attribute)

    def can_answer(self, query: SelectionQuery) -> bool:
        return self.inner.can_answer(query)

    def cardinality(self) -> int:
        return self.inner.cardinality()

    def execute(self, query: SelectionQuery) -> Relation:
        """Answer from the cache when possible; otherwise delegate.

        A raising inner call inserts nothing (no negative caching, no
        poisoned entries) and counts as neither hit nor miss — the
        failure is the retry/breaker layers' business, not the cache's.
        """
        with self._lock:
            cached = self._cache.get(query)
            if cached is not None:
                self._cache.move_to_end(query)
                self.statistics.hits += 1
        if cached is not None:
            if self._telemetry is not None:
                self._telemetry.count("cache.hits")
            return cached
        result = self.inner.execute(query)
        evicted = False
        with self._lock:
            self.statistics.misses += 1
            self._cache[query] = result
            if len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
                self.statistics.evictions += 1
                evicted = True
        if self._telemetry is not None:
            self._telemetry.count("cache.misses")
            if evicted:
                self._telemetry.count("cache.evictions")
        return result

    def execute_null_binding(self, query: SelectionQuery, max_nulls: int | None = None):
        return self.inner.execute_null_binding(query, max_nulls=max_nulls)

    def execute_certain_or_possible(self, query: SelectionQuery) -> Relation:
        return self.inner.execute_certain_or_possible(query)

    def scan(self, limit: int | None = None) -> Relation:
        return self.inner.scan(limit)

    def reset_statistics(self) -> None:
        self.inner.reset_statistics()
        with self._lock:
            self.statistics = CacheStatistics()

    def invalidate(self) -> None:
        """Drop every cached result (e.g. after a known source refresh)."""
        with self._lock:
            self._cache.clear()

    def __repr__(self) -> str:
        return (
            f"CachingSource({self.inner!r}, {len(self._cache)}/{self.capacity} "
            f"entries, hit rate {self.statistics.hit_rate:.2f})"
        )
