"""Retrying transient source failures.

Web databases fail transiently — timeouts, overloaded backends, dropped
connections.  A mediator that aborts a whole multi-query retrieval plan on
one hiccup wastes everything it already spent.  :class:`RetryingSource`
wraps any source and retries calls that raise
:class:`~repro.errors.SourceUnavailableError`, with optional backoff.

Permanent failures (capability violations, budget exhaustion) are *not*
retried: repeating a query a web form cannot express never helps, and
retrying against an exhausted budget only burns goodwill.

The wrapper is deadline-aware: before each backoff sleep it consults the
ambient :func:`repro.resilience.remaining_deadline` (published by the
engine around every source call) and raises
:class:`~repro.errors.DeadlineExceededError` instead of sleeping past
the retrieval's budget — a retry that could only land after the caller
stopped listening is pure waste.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import DeadlineExceededError, QpiadError, SourceUnavailableError
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.resilience.deadline import remaining_deadline
from repro.telemetry import Telemetry

__all__ = ["RetryStatistics", "RetryingSource"]

T = TypeVar("T")


@dataclass
class RetryStatistics:
    """How much flakiness the wrapper absorbed."""

    attempts: int = 0
    retries: int = 0
    gave_up: int = 0


class RetryingSource:
    """Retry transient failures of a wrapped source.

    Parameters
    ----------
    inner:
        Any source-shaped object (:class:`~repro.sources.AutonomousSource`,
        :class:`~repro.sources.caching.CachingSource`, ...).
    max_attempts:
        Total tries per call (1 = no retrying).
    backoff_seconds:
        Sleep between attempts, doubled each retry; 0 disables sleeping
        (the default keeps tests and simulations instant).
    max_backoff_seconds:
        Ceiling on any single sleep; ``None`` leaves the doubling uncapped.
        A mediator retrying ten rewritten queries must not escalate into
        minute-long stalls on a source that is merely slow to recover.
    jitter_seed:
        When set, each sleep is scattered over ``[delay/2, delay]`` ("equal
        jitter") by a dedicated seeded generator, so a fleet of mediators
        does not re-hammer a recovering source in lockstep — while the same
        seed still replays the same schedule, keeping simulations
        deterministic.  ``None`` sleeps the exact delay.
    sleep:
        Injectable sleep function (for tests).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hook mirroring
        :attr:`statistics` into the ``retry.*`` counters (attempts,
        retries, gave_up); ``None`` emits nothing.
    """

    def __init__(
        self,
        inner,
        max_attempts: int = 3,
        backoff_seconds: float = 0.0,
        max_backoff_seconds: float | None = None,
        jitter_seed: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
        telemetry: Telemetry | None = None,
    ):
        if max_attempts < 1:
            raise QpiadError(f"max_attempts must be at least 1, got {max_attempts}")
        if backoff_seconds < 0:
            raise QpiadError("backoff_seconds must be non-negative")
        if max_backoff_seconds is not None and max_backoff_seconds < 0:
            raise QpiadError("max_backoff_seconds must be non-negative")
        self.inner = inner
        self.max_attempts = max_attempts
        self.backoff_seconds = backoff_seconds
        self.max_backoff_seconds = max_backoff_seconds
        self._jitter_rng = None if jitter_seed is None else random.Random(jitter_seed)
        self._sleep = sleep
        self._telemetry = telemetry
        self.statistics = RetryStatistics()

    # -- retry core --------------------------------------------------------

    def _capped(self, delay: float) -> float:
        if self.max_backoff_seconds is None:
            return delay
        return min(delay, self.max_backoff_seconds)

    def _jittered(self, delay: float) -> float:
        if self._jitter_rng is None:
            return delay
        return delay / 2 + self._jitter_rng.random() * delay / 2

    def _call(self, operation: Callable[[], T]) -> T:
        delay = self._capped(self.backoff_seconds)
        for attempt in range(1, self.max_attempts + 1):
            self.statistics.attempts += 1
            if self._telemetry is not None:
                self._telemetry.count("retry.attempts")
            try:
                return operation()
            except SourceUnavailableError as exc:
                if attempt == self.max_attempts:
                    self.statistics.gave_up += 1
                    if self._telemetry is not None:
                        self._telemetry.count("retry.gave_up")
                    raise
                self.statistics.retries += 1
                if self._telemetry is not None:
                    self._telemetry.count("retry.retries")
                if delay:
                    pause = self._jittered(delay)
                    budget = remaining_deadline()
                    if budget is not None and pause >= budget:
                        # Sleeping would outlive the retrieval's budget:
                        # surface the deadline now instead of waking up
                        # only to find nobody listening.
                        self.statistics.gave_up += 1
                        if self._telemetry is not None:
                            self._telemetry.count("retry.deadline_preempted")
                        raise DeadlineExceededError(
                            f"retry backoff of {pause:.3f}s exceeds the "
                            f"remaining deadline budget of {max(budget, 0.0):.3f}s"
                        ) from exc
                    self._sleep(pause)
                    delay = self._capped(delay * 2)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- the source surface -------------------------------------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def schema(self) -> Schema:
        return self.inner.schema

    @property
    def capabilities(self):
        return self.inner.capabilities

    def supports(self, attribute: str) -> bool:
        return self.inner.supports(attribute)

    def can_answer(self, query: SelectionQuery) -> bool:
        checker = getattr(self.inner, "can_answer", None)
        return True if checker is None else checker(query)

    def cardinality(self) -> int:
        return self._call(self.inner.cardinality)

    def execute(self, query: SelectionQuery) -> Relation:
        return self._call(lambda: self.inner.execute(query))

    def execute_null_binding(self, query: SelectionQuery, max_nulls: int | None = None):
        return self._call(
            lambda: self.inner.execute_null_binding(query, max_nulls=max_nulls)
        )

    def execute_certain_or_possible(self, query: SelectionQuery) -> Relation:
        return self._call(lambda: self.inner.execute_certain_or_possible(query))

    def scan(self, limit: int | None = None) -> Relation:
        return self._call(lambda: self.inner.scan(limit))

    def reset_statistics(self) -> None:
        self.inner.reset_statistics()
        self.statistics = RetryStatistics()

    def __repr__(self) -> str:
        return (
            f"RetryingSource({self.inner!r}, max_attempts={self.max_attempts}, "
            f"absorbed {self.statistics.retries} retries)"
        )
