"""A deadline-aware token bucket.

The classic pacing primitive: tokens refill continuously at
``rate_per_second`` up to a ``burst`` capacity, and each admitted call
spends one.  Two properties matter for the scheduler built on top:

* **Injectable time.**  Both the clock and the sleep are parameters, so
  simulations and tests drive refills manually and never wait on the
  wall clock.
* **Deadline-capped waits.**  :meth:`acquire` takes the caller's
  remaining budget and raises
  :class:`~repro.errors.DeadlineExceededError` *instead of* sleeping
  past it — a queued call whose token would only arrive after the
  caller's deadline is pure waste on both sides of the wire.

Refunds exist for hedging: a hedge backup that loses the race gives its
token back, so hedged retrievals do not pay double against the source's
rate budget ("cancel the loser's budget charge").

Lock discipline: ``_advanced()`` is a *pure* computation of the refilled
state; every assignment to ``_tokens`` / ``_updated`` happens
syntactically inside ``with self._lock`` so the repo's
``unguarded-shared-write`` whole-program pass can verify the invariant.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import DeadlineExceededError, QpiadError

__all__ = ["TokenBucket"]


class TokenBucket:
    """Continuous-refill token bucket with blocking, deadline-capped waits.

    Parameters
    ----------
    rate_per_second:
        Sustained refill rate; must be positive.
    burst:
        Bucket capacity (maximum tokens banked while idle); at least 1.
        The bucket starts full, so a cold source allows an initial burst.
    clock:
        Injectable monotonic clock.
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_second <= 0:
            raise QpiadError(
                f"rate_per_second must be positive, got {rate_per_second}"
            )
        if burst < 1:
            raise QpiadError(f"burst must be at least 1, got {burst}")
        self.rate_per_second = float(rate_per_second)
        self.burst = burst
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._updated = clock()

    def _advanced(self) -> "tuple[float, float]":
        """The refilled ``(tokens, now)`` pair; pure — callers assign it
        back under the lock."""
        now = self._clock()
        elapsed = now - self._updated
        tokens = self._tokens
        if elapsed > 0:
            tokens = min(float(self.burst), tokens + elapsed * self.rate_per_second)
        return tokens, now

    def try_acquire(self) -> bool:
        """Take a token if one is banked; never waits."""
        with self._lock:
            tokens, now = self._advanced()
            taken = tokens >= 1.0
            self._tokens = tokens - 1.0 if taken else tokens
            self._updated = now
            return taken

    def acquire(
        self,
        timeout: "float | None" = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> float:
        """Take a token, sleeping until one refills; returns seconds waited.

        *timeout* is the caller's remaining deadline budget: when the
        next token would land beyond it, the bucket raises
        :class:`DeadlineExceededError` immediately — it never sleeps past
        a deadline only to fail afterwards.
        """
        waited = 0.0
        while True:
            with self._lock:
                tokens, now = self._advanced()
                taken = tokens >= 1.0
                self._tokens = tokens - 1.0 if taken else tokens
                self._updated = now
                if taken:
                    return waited
                deficit = (1.0 - tokens) / self.rate_per_second
            if timeout is not None and waited + deficit > timeout:
                raise DeadlineExceededError(
                    f"rate limit wait of {deficit:.3f}s exceeds the remaining "
                    f"deadline budget of {max(timeout - waited, 0.0):.3f}s"
                )
            sleep(deficit)
            waited += deficit

    def refund(self) -> None:
        """Return one token (a hedge loser's charge is cancelled)."""
        with self._lock:
            tokens, now = self._advanced()
            self._tokens = min(float(self.burst), tokens + 1.0)
            self._updated = now

    @property
    def available(self) -> float:
        """Currently banked tokens (after refill), for diagnostics."""
        with self._lock:
            tokens, now = self._advanced()
            self._tokens = tokens
            self._updated = now
            return tokens

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate_per_second}/s, burst={self.burst}, "
            f"available={self.available:.2f})"
        )
