"""The shared source-admission scheduler.

Every mediated retrieval in the process ultimately funnels its source
calls through one :class:`SourceScheduler`.  The scheduler owns the
cross-cutting concerns no single mediator can see:

* **Admission control.**  Each source gets a bounded wait queue, an
  optional concurrency cap, and an optional token-bucket rate limit —
  declared per source via
  :class:`~repro.sources.capabilities.SourceCapabilities` or configured
  explicitly through :class:`SchedulerConfig`.  A call arriving at a
  full queue is shed immediately with
  :class:`~repro.errors.AdmissionRejectedError` instead of deepening the
  backlog.
* **Single-flight dedup.**  Identical in-flight calls — same source,
  same operation, same query fingerprint — collapse onto one wire call;
  followers share the leader's outcome (value *or* exception).
* **Hedged requests.**  Once a source's latency distribution is warm,
  a straggling call races a backup fired after the policy percentile of
  observed latency; the first result wins and the loser's rate-limit
  charge is refunded.
* **Deadline propagation.**  The caller's remaining budget caps every
  queue, slot, and token wait — a call that could only be admitted
  after its deadline fails fast with
  :class:`~repro.errors.DeadlineExceededError`.

Ordering relative to the source-wrapper stack: the scheduler sits
*outside* retry and breaker wrappers (the engine routes the whole
wrapped call through :meth:`SourceScheduler.call`), so a retry's second
attempt re-enters neither admission nor dedup — it is the same admitted
call still running.  See ``docs/robustness.md`` for the full layering
diagram.

Lock discipline follows the repo's ``unguarded-shared-write`` pass:
every mutation of shared state sits syntactically inside a
``with self._lock`` block; helpers that compute next states are pure.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as wait_futures
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Mapping

from repro.errors import AdmissionRejectedError, DeadlineExceededError, QpiadError
from repro.resilience.bucket import TokenBucket
from repro.resilience.deadline import Deadline
from repro.resilience.singleflight import SingleFlight
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "SourcePolicy",
    "SchedulerConfig",
    "SourceScheduler",
    "install_scheduler",
    "current_scheduler",
    "scheduler_scope",
]


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SourcePolicy:
    """Admission rules for one source (or the scheduler-wide default).

    Parameters
    ----------
    rate_per_second:
        Token-bucket refill rate; ``None`` disables rate limiting.
    burst:
        Token-bucket capacity (calls allowed back-to-back from cold).
    max_concurrent:
        Cap on calls in flight against the source; ``None`` = unlimited.
    max_queue:
        Bound on callers *waiting* for admission (dedup followers
        included); one more is shed with ``AdmissionRejectedError``.
        ``None`` = unbounded queue (admission never sheds).
    dedup:
        Collapse identical in-flight calls onto one wire call.
    hedge:
        Race a backup call against stragglers once latency is warm.
    hedge_quantile:
        Latency percentile (0..1) after which the backup fires.
    hedge_min_samples:
        Observed-latency samples required before hedging arms; until
        then every call runs inline, which keeps cold-start behaviour
        bit-identical to an unhedged scheduler.
    hedge_min_delay_seconds:
        Floor on the hedge delay so a momentarily fast window cannot
        make the scheduler double-fire every call.
    """

    rate_per_second: "float | None" = None
    burst: int = 4
    max_concurrent: "int | None" = None
    max_queue: "int | None" = 64
    dedup: bool = True
    hedge: bool = False
    hedge_quantile: float = 0.95
    hedge_min_samples: int = 20
    hedge_min_delay_seconds: float = 0.001

    def __post_init__(self) -> None:
        if self.rate_per_second is not None and self.rate_per_second <= 0:
            raise QpiadError(
                f"rate_per_second must be positive, got {self.rate_per_second}"
            )
        if self.burst < 1:
            raise QpiadError(f"burst must be at least 1, got {self.burst}")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise QpiadError(
                f"max_concurrent must be at least 1, got {self.max_concurrent}"
            )
        if self.max_queue is not None and self.max_queue < 0:
            raise QpiadError(f"max_queue must be >= 0, got {self.max_queue}")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise QpiadError(
                f"hedge_quantile must be within (0, 1), got {self.hedge_quantile}"
            )
        if self.hedge_min_samples < 1:
            raise QpiadError(
                f"hedge_min_samples must be at least 1, got {self.hedge_min_samples}"
            )


@dataclass
class SchedulerConfig:
    """Scheduler-wide defaults plus per-source overrides.

    Resolution order in :meth:`policy_for`: an explicit ``per_source``
    entry wins outright; otherwise the default policy is specialised
    with whatever pacing the source's own capabilities declare
    (``rate_limit_per_second`` / ``burst`` / ``max_concurrent_requests``).
    """

    default: SourcePolicy = field(default_factory=SourcePolicy)
    per_source: "Mapping[str, SourcePolicy]" = field(default_factory=dict)

    def policy_for(self, source: Any) -> SourcePolicy:
        name = source_name(source)
        explicit = self.per_source.get(name)
        if explicit is not None:
            return explicit
        capabilities = getattr(source, "capabilities", None)
        if capabilities is None:
            return self.default
        overrides: "dict[str, Any]" = {}
        declared_rate = getattr(capabilities, "rate_limit_per_second", None)
        if declared_rate is not None:
            overrides["rate_per_second"] = declared_rate
            declared_burst = getattr(capabilities, "burst", None)
            if declared_burst is not None:
                overrides["burst"] = declared_burst
        declared_cap = getattr(capabilities, "max_concurrent_requests", None)
        if declared_cap is not None:
            overrides["max_concurrent"] = declared_cap
        return replace(self.default, **overrides) if overrides else self.default


def _fingerprint(query: Any) -> str:
    """The planner's content fingerprint for *query*.

    Imported lazily: the fingerprint module lives in ``repro.planner``,
    whose package init reaches back into ``repro.engine`` — importing it
    at module load would close a cycle with the engine's import of this
    scheduler.  By the first call every package is fully initialised.
    """
    from repro.planner.fingerprint import query_fingerprint

    return query_fingerprint(query)


def source_name(source: Any) -> str:
    """The logical identity admission state is keyed by.

    Two wrappers reporting the same ``name`` are treated as the same
    backend: they share one rate budget and their identical in-flight
    calls dedup against each other.
    """
    name = getattr(source, "name", None)
    return name if isinstance(name, str) and name else type(source).__name__


# ---------------------------------------------------------------------------
# per-source runtime state
# ---------------------------------------------------------------------------


class _SourceState:
    """Queue/slot/bucket state of one source, shared across callers.

    ``self._lock`` is a :class:`threading.Condition`: the same object
    guards the counters and wakes slot waiters, so a release can never
    race a wait on a different lock.
    """

    def __init__(self, name: str, policy: SourcePolicy, clock: Callable[[], float]):
        self.name = name
        self.policy = policy
        self._lock = threading.Condition()
        self.inflight = 0
        self.queued = 0
        self.bucket: "TokenBucket | None" = (
            TokenBucket(policy.rate_per_second, policy.burst, clock)
            if policy.rate_per_second is not None
            else None
        )

    # -- bounded wait queue -------------------------------------------------

    def enter_queue(self) -> None:
        """Count this caller as waiting; shed when the queue is full."""
        with self._lock:
            limit = self.policy.max_queue
            if limit is not None and self.queued >= limit:
                raise AdmissionRejectedError(
                    f"source {self.name!r} admission queue is full "
                    f"({self.queued}/{limit} waiting); call shed"
                )
            self.queued += 1

    def exit_queue(self) -> None:
        with self._lock:
            self.queued -= 1

    # -- concurrency slots --------------------------------------------------

    def acquire_slot(self, deadline: "Deadline | None") -> None:
        """Take an in-flight slot, waiting no longer than the deadline."""
        cap = self.policy.max_concurrent
        with self._lock:
            while cap is not None and self.inflight >= cap:
                remaining = None if deadline is None else deadline.remaining()
                if remaining is not None and remaining <= 0:
                    raise DeadlineExceededError(
                        f"no execution slot freed on source {self.name!r} "
                        "within the remaining deadline budget"
                    )
                self._lock.wait(timeout=remaining)
            self.inflight += 1

    def try_acquire_slot(self) -> bool:
        """Non-blocking slot grab (hedge backups never queue)."""
        with self._lock:
            cap = self.policy.max_concurrent
            if cap is not None and self.inflight >= cap:
                return False
            self.inflight += 1
            return True

    def release_slot(self) -> None:
        with self._lock:
            self.inflight -= 1
            self._lock.notify()


# ---------------------------------------------------------------------------
# the scheduler
# ---------------------------------------------------------------------------


class SourceScheduler:
    """Process-wide admission, dedup, and hedging for source calls.

    One instance is meant to be shared by every engine in the process
    (see :func:`install_scheduler`); per-source state is created lazily
    on first call.  The scheduler keeps its own always-on
    :class:`MetricsRegistry` (``scheduler.*`` counters and per-source
    latency histograms) and mirrors every emission into an attached
    :class:`~repro.telemetry.Telemetry` when one is given.
    """

    def __init__(
        self,
        config: "SchedulerConfig | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        telemetry: Any = None,
        hedge_pool_size: int = 16,
    ):
        self.config = config if config is not None else SchedulerConfig()
        self.metrics = MetricsRegistry()
        self._clock = clock
        self._sleep = sleep
        self._telemetry = telemetry
        self._hedge_pool_size = hedge_pool_size
        self._lock = threading.Lock()
        self._states: "dict[str, _SourceState]" = {}
        self._flights = SingleFlight()
        self._pool: "ThreadPoolExecutor | None" = None

    # -- telemetry ----------------------------------------------------------

    def _count(self, name: str, amount: float = 1) -> None:
        self.metrics.count(name, amount)
        if self._telemetry is not None:
            self._telemetry.count(name, amount)

    def _observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
        if self._telemetry is not None:
            self._telemetry.observe(name, value)

    def _latency_metric(self, name: str) -> str:
        return f"scheduler.source.{name}.latency_seconds"

    # -- state access -------------------------------------------------------

    def state_for(self, source: Any) -> _SourceState:
        name = source_name(source)
        with self._lock:
            state = self._states.get(name)
            if state is None:
                state = self._states[name] = _SourceState(
                    name, self.config.policy_for(source), self._clock
                )
            return state

    def _hedge_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._hedge_pool_size,
                    thread_name_prefix="qpiad-hedge",
                )
            return self._pool

    def shutdown(self) -> None:
        """Release the hedge pool's threads (idempotent)."""
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)

    def note_task_start(self, executor_name: str) -> None:
        """Executor hook: count a plan task handed to this scheduler's care.

        Plan executors carrying a scheduler call this as each task
        starts, so ``scheduler.executor.<name>.tasks`` exposes which
        execution strategy is driving the admission load.
        """
        self._count(f"scheduler.executor.{executor_name}.tasks")

    # -- the one entry point ------------------------------------------------

    def call(
        self,
        source: Any,
        query: Any,
        operation: str,
        thunk: Callable[[], Any],
        *,
        deadline: "Deadline | None" = None,
        on_hedge_launch: "Callable[[], None] | None" = None,
    ) -> Any:
        """Route one source call through admission → dedup → hedging.

        *thunk* is the fully wrapped call (retry, breaker, and the
        source itself); the scheduler decides when — and how many times
        concurrently — it runs.  *operation* disambiguates call shapes
        sharing a query (``"execute"`` vs ``"null-binding:2"``) so dedup
        never conflates them.  *on_hedge_launch* lets the caller bill a
        hedge backup as an extra issued query the moment it is fired.
        """
        self._count("scheduler.calls")
        state = self.state_for(source)
        if not state.policy.dedup or query is None:
            return self._admitted_call(state, thunk, deadline, on_hedge_launch)

        key = (state.name, operation, _fingerprint(query))
        flight, leader = self._flights.lead_or_join(key)
        if leader:
            value: Any = None
            error: "BaseException | None" = None
            try:
                value = self._admitted_call(state, thunk, deadline, on_hedge_launch)
                return value
            except BaseException as exc:
                error = exc
                raise
            finally:
                shared = self._flights.complete(key, flight, value, error)
                if shared:
                    self._count("scheduler.dedup_flights_shared")

        # Follower: no wire call of its own, but it still occupies the
        # bounded queue — a thousand piled-up followers are load too.
        self._count("scheduler.dedup_hits")
        try:
            state.enter_queue()
        except AdmissionRejectedError:
            self._count("scheduler.rejected_queue_full")
            raise
        try:
            timeout = None if deadline is None else max(deadline.remaining(), 0.0)
            return self._flights.wait(flight, timeout)
        finally:
            state.exit_queue()

    # -- admission ----------------------------------------------------------

    def _admitted_call(
        self,
        state: _SourceState,
        thunk: Callable[[], Any],
        deadline: "Deadline | None",
        on_hedge_launch: "Callable[[], None] | None",
    ) -> Any:
        arrived = self._clock()
        try:
            state.enter_queue()
        except AdmissionRejectedError:
            self._count("scheduler.rejected_queue_full")
            raise
        slot_held = False
        try:
            state.acquire_slot(deadline)
            slot_held = True
            if state.bucket is not None:
                remaining = None if deadline is None else deadline.remaining()
                state.bucket.acquire(timeout=remaining, sleep=self._sleep)
        except DeadlineExceededError:
            if slot_held:
                state.release_slot()
            self._count("scheduler.rejected_deadline")
            raise
        except BaseException:
            if slot_held:
                state.release_slot()
            raise
        finally:
            state.exit_queue()

        self._count("scheduler.admitted")
        self._observe("scheduler.queue_wait_seconds", self._clock() - arrived)

        delay = self._hedge_delay(state)
        if delay is None:
            started = self._clock()
            try:
                value = thunk()
            finally:
                state.release_slot()
            self._observe(self._latency_metric(state.name), self._clock() - started)
            return value
        return self._race_hedge(state, thunk, delay, on_hedge_launch)

    # -- hedging ------------------------------------------------------------

    def _hedge_delay(self, state: _SourceState) -> "float | None":
        """Seconds to wait before firing a backup; ``None`` = run inline."""
        policy = state.policy
        if not policy.hedge:
            return None
        metric = self._latency_metric(state.name)
        if self.metrics.histogram(metric).count < policy.hedge_min_samples:
            return None
        estimate = self.metrics.percentile(metric, policy.hedge_quantile)
        if estimate is None:
            return None
        return max(estimate, policy.hedge_min_delay_seconds)

    def _race_hedge(
        self,
        state: _SourceState,
        thunk: Callable[[], Any],
        delay: float,
        on_hedge_launch: "Callable[[], None] | None",
    ) -> Any:
        """Run *thunk*, racing a backup copy once *delay* elapses.

        Slot accounting moves from the caller to done-callbacks here:
        each launched copy holds its slot until *it* finishes, not until
        the race is decided — the loser is still occupying the source.
        """
        pool = self._hedge_pool()
        started = self._clock()

        def _settle(future: Future) -> None:
            state.release_slot()
            future.exception()  # consume, so a loser's error is never orphaned

        primary = pool.submit(thunk)
        primary.add_done_callback(_settle)
        try:
            value = primary.result(timeout=delay)
        except FutureTimeoutError:
            pass
        else:
            self._observe(self._latency_metric(state.name), self._clock() - started)
            return value

        # Primary is straggling past the latency percentile: try to fire
        # a backup without waiting — a hedge that queues is no hedge.
        hedged = state.try_acquire_slot()
        if hedged and state.bucket is not None and not state.bucket.try_acquire():
            state.release_slot()
            hedged = False
        if not hedged:
            self._count("scheduler.hedges_suppressed")
            value = primary.result()
            self._observe(self._latency_metric(state.name), self._clock() - started)
            return value

        if on_hedge_launch is not None:
            on_hedge_launch()
        self._count("scheduler.hedges_launched")
        backup = pool.submit(thunk)
        backup.add_done_callback(_settle)

        failures: "dict[Future, BaseException]" = {}
        pending = {primary, backup}
        while pending:
            done, pending = wait_futures(pending, return_when=FIRST_COMPLETED)
            for future in sorted(done, key=lambda f: f is not primary):
                error = future.exception()
                if error is not None:
                    failures[future] = error
                    continue
                self._count(
                    "scheduler.hedge_wins"
                    if future is backup
                    else "scheduler.hedge_losses"
                )
                if state.bucket is not None:
                    state.bucket.refund()  # cancel the loser's rate charge
                self._observe(
                    self._latency_metric(state.name), self._clock() - started
                )
                return future.result()
        # Both copies failed: surface the primary's error when it has one
        # so hedging never changes which exception the caller sees.
        raise failures.get(primary) or next(iter(failures.values()))


# ---------------------------------------------------------------------------
# process-wide default
# ---------------------------------------------------------------------------

_INSTALL_LOCK = threading.Lock()
_installed: "SourceScheduler | None" = None


def install_scheduler(scheduler: "SourceScheduler | None") -> "SourceScheduler | None":
    """Set the process-wide scheduler; returns the previous one.

    Engines built without an explicit ``scheduler=`` fall back to this,
    so one ``install_scheduler(SourceScheduler(...))`` at startup routes
    every mediator in the process through shared admission control.
    ``None`` uninstalls.
    """
    global _installed
    with _INSTALL_LOCK:
        previous = _installed
        _installed = scheduler
    return previous


def current_scheduler() -> "SourceScheduler | None":
    return _installed


@contextmanager
def scheduler_scope(scheduler: "SourceScheduler | None") -> Iterator[None]:
    """Temporarily install *scheduler* (tests, CLI invocations)."""
    previous = install_scheduler(scheduler)
    try:
        yield
    finally:
        install_scheduler(previous)
