"""Deadline propagation: one wall-clock budget, visible to every layer.

The engine has always enforced ``deadline_seconds`` *between* source
calls — a plan stops issuing once the budget is spent.  What it could not
do is reach the layers below a call already in flight: a
:class:`~repro.sources.retrying.RetryingSource` would happily sleep a
30-second backoff inside a retrieval whose caller only had two seconds
left, and a queued admission wait had no idea any budget existed.

:class:`Deadline` is the value that flows down: an absolute expiry on an
injectable monotonic clock.  It travels two ways:

* explicitly — the :class:`~repro.resilience.SourceScheduler` receives it
  per call and caps every queue wait with it;
* ambiently — :func:`deadline_scope` publishes it in a ``threading.local``
  for the duration of a source call, so deep layers that were never
  taught a ``deadline=`` parameter (the retry backoff sleep) can consult
  :func:`remaining_deadline` without any signature change.  The scope is
  set by the engine *on the executor thread that runs the call*, so
  thread-pool execution propagates correctly by construction.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "remaining_deadline",
]


class Deadline:
    """An absolute expiry on a monotonic clock.

    Parameters
    ----------
    expires_at:
        Absolute instant (in *clock* units) after which the budget is
        spent.
    clock:
        The monotonic clock the expiry was measured on; every layer that
        compares against this deadline must read the same clock, which is
        why the deadline carries it.
    """

    __slots__ = ("expires_at", "clock")

    def __init__(self, expires_at: float, clock: Callable[[], float] = time.monotonic):
        self.expires_at = expires_at
        self.clock = clock

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """The deadline *seconds* from now on *clock*."""
        return cls(clock() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left; zero or negative once the deadline has passed."""
        return self.expires_at - self.clock()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


class _DeadlineLocal(threading.local):
    current: "Deadline | None" = None


_ACTIVE = _DeadlineLocal()


def current_deadline() -> "Deadline | None":
    """The deadline governing the current thread's call, if any."""
    return _ACTIVE.current


def remaining_deadline() -> "float | None":
    """Seconds left on the ambient deadline; ``None`` when unbounded."""
    deadline = _ACTIVE.current
    return None if deadline is None else deadline.remaining()


@contextmanager
def deadline_scope(deadline: "Deadline | None") -> Iterator["Deadline | None"]:
    """Publish *deadline* as the ambient deadline for the ``with`` body.

    ``None`` is accepted and simply leaves the ambient state untouched,
    so call sites need no conditional.  Scopes nest: an inner scope with
    a tighter deadline shadows the outer one and restores it on exit.
    """
    if deadline is None:
        yield None
        return
    previous = _ACTIVE.current
    _ACTIVE.current = deadline
    try:
        yield deadline
    finally:
        _ACTIVE.current = previous
