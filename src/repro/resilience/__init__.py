"""Shared resilience layer: admission control, dedup, hedging, deadlines.

Where ``repro.sources`` wraps *one* source with per-call policies (retry,
breaker, cache), this package coordinates *across* callers: a
process-wide :class:`SourceScheduler` that every engine routes source
calls through, plus the primitives it composes —
:class:`TokenBucket` pacing, :class:`SingleFlight` dedup, and
:class:`Deadline` propagation.  See ``docs/robustness.md`` for how the
layers stack.
"""

from repro.resilience.bucket import TokenBucket
from repro.resilience.deadline import (
    Deadline,
    current_deadline,
    deadline_scope,
    remaining_deadline,
)
from repro.resilience.scheduler import (
    SchedulerConfig,
    SourcePolicy,
    SourceScheduler,
    current_scheduler,
    install_scheduler,
    scheduler_scope,
    source_name,
)
from repro.resilience.singleflight import Flight, SingleFlight

__all__ = [
    "TokenBucket",
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "remaining_deadline",
    "Flight",
    "SingleFlight",
    "SourcePolicy",
    "SchedulerConfig",
    "SourceScheduler",
    "install_scheduler",
    "current_scheduler",
    "scheduler_scope",
    "source_name",
]
