"""Single-flight deduplication of identical in-flight calls.

When several concurrent plans ask the same source the same question at
the same moment — the classic thundering herd of a popular rewritten
query — only the first caller (the **leader**) should put the call on
the wire.  Everyone else (**followers**) waits on the leader's outcome
and shares it: one source call, N consumers.

The contract on failure is exact: a leader that raises propagates the
*same* exception to every follower, each exactly once, and the flight is
always cleared — the next caller after completion starts a fresh flight
(single-flight dedups *in-flight* calls; it is not a cache).

The API is split into :meth:`lead_or_join` / :meth:`complete` /
:meth:`wait` rather than one ``do(key, fn)`` so the scheduler can keep
followers inside its bounded-admission-queue accounting while they wait.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable

from repro.errors import DeadlineExceededError

__all__ = ["Flight", "SingleFlight"]


class Flight:
    """One in-flight call: its completion event and eventual outcome."""

    __slots__ = ("event", "value", "error", "followers")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: "BaseException | None" = None
        self.followers = 0


class SingleFlight:
    """Registry of in-flight calls keyed by content fingerprint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: "dict[Hashable, Flight]" = {}

    def lead_or_join(self, key: Hashable) -> "tuple[Flight, bool]":
        """The flight for *key* plus whether this caller leads it.

        The leader **must** later call :meth:`complete` (typically in a
        ``finally``) or every follower deadlocks until its timeout.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = Flight()
                self._flights[key] = flight
                return flight, True
            flight.followers += 1
            return flight, False

    def complete(
        self,
        key: Hashable,
        flight: Flight,
        value: Any = None,
        error: "BaseException | None" = None,
    ) -> int:
        """Publish the leader's outcome and release the flight.

        Returns how many followers shared it.  The flight is removed
        *before* the event fires, so a caller arriving afterwards starts
        a fresh flight instead of reading a stale result.
        """
        flight.value = value
        flight.error = error
        with self._lock:
            self._flights.pop(key, None)
            followers = flight.followers
        flight.event.set()
        return followers

    def wait(self, flight: Flight, timeout: "float | None" = None) -> Any:
        """A follower's side: block for the outcome and share it.

        Raises the leader's exception verbatim when the call failed, or
        :class:`DeadlineExceededError` when *timeout* (the follower's own
        remaining deadline budget) elapses first — the leader's call
        keeps running for the consumers that can still afford to wait.
        """
        if not flight.event.wait(timeout):
            raise DeadlineExceededError(
                "deduplicated call did not complete within the remaining "
                f"deadline budget of {timeout:.3f}s"
            )
        if flight.error is not None:
            raise flight.error
        return flight.value

    def in_flight(self) -> int:
        """How many distinct calls are currently in flight."""
        with self._lock:
            return len(self._flights)
