"""Workload builders for experiments (Section 6's query generation).

The paper "randomly formulate[s] single attribute and multi attribute
selection queries" and, for aggregates, takes "distinct combinations of
values" of attribute subsets.  These builders implement those protocols
once, so tests and benchmarks share them:

* :func:`selection_workload` (re-exported from the harness) — single
  attribute equalities with guaranteed relevance mass;
* :func:`multi_attribute_workload` — conjunctive queries sampled from real
  tuples (so they are satisfiable);
* :func:`aggregate_workload` — the §6.6 protocol over attribute subsets;
* :func:`join_workload` — join queries pairing values observed on both
  sides of the join attribute.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import QpiadError
from repro.evaluation.harness import Environment
from repro.query.predicates import Equals
from repro.query.query import AggregateFunction, AggregateQuery, JoinQuery, SelectionQuery
from repro.relational.values import is_null

__all__ = ["multi_attribute_workload", "aggregate_workload", "join_workload"]


def multi_attribute_workload(
    env: Environment,
    attributes: Sequence[str],
    count: int,
    seed: int = 17,
    min_relevant: int = 1,
) -> list[SelectionQuery]:
    """Conjunctive equality queries over *attributes*, sampled from tuples.

    Each query binds every listed attribute to the values of a randomly
    drawn complete-on-those-attributes test tuple, guaranteeing the query
    is satisfiable; queries without at least *min_relevant* relevant
    possible answers are discarded.
    """
    if len(attributes) < 2:
        raise QpiadError("a multi-attribute workload needs at least two attributes")
    rng = random.Random(seed)
    combos = [
        combo
        for combo in env.test.project(list(attributes), distinct=True).rows
        if not any(is_null(value) for value in combo)
    ]
    rng.shuffle(combos)
    queries: list[SelectionQuery] = []
    for combo in combos:
        query = SelectionQuery.conjunction(
            [Equals(name, value) for name, value in zip(attributes, combo)]
        )
        if env.total_relevant(query) >= min_relevant:
            queries.append(query)
        if len(queries) >= count:
            break
    if not queries:
        raise QpiadError(
            f"no conjunctive query over {tuple(attributes)} has {min_relevant}+ "
            "relevant possible answers"
        )
    return queries


def aggregate_workload(
    env: Environment,
    function: AggregateFunction,
    attribute: str = "*",
    subsets: Sequence[Sequence[str]] = (),
    combos_per_subset: int = 6,
    seed: int = 19,
) -> list[AggregateQuery]:
    """The §6.6 protocol: one aggregate query per distinct value combination
    of each attribute subset (drawn from the training sample)."""
    if not subsets:
        raise QpiadError("aggregate_workload needs at least one attribute subset")
    rng = random.Random(seed)
    queries: list[AggregateQuery] = []
    for subset in subsets:
        combos = [
            combo
            for combo in env.train.project(list(subset), distinct=True).rows
            if not any(is_null(value) for value in combo)
        ]
        rng.shuffle(combos)
        for combo in combos[:combos_per_subset]:
            selection = SelectionQuery.conjunction(
                [Equals(name, value) for name, value in zip(subset, combo)]
            )
            queries.append(AggregateQuery(selection, function, attribute))
    return queries


def join_workload(
    left_env: Environment,
    right_env: Environment,
    join_attribute: str,
    left_attribute: str,
    right_attribute: str,
    count: int,
    seed: int = 29,
) -> list[JoinQuery]:
    """Join queries whose per-side constraints co-occur with a shared join
    value, so the certain join is non-empty."""
    rng = random.Random(seed)
    shared = sorted(
        set(left_env.test.distinct_values(join_attribute))
        & set(right_env.test.distinct_values(join_attribute))
    )
    rng.shuffle(shared)
    queries: list[JoinQuery] = []
    for join_value in shared:
        left_rows = [
            row
            for row in left_env.test
            if left_env.test.value(row, join_attribute) == join_value
            and not is_null(left_env.test.value(row, left_attribute))
        ]
        right_rows = [
            row
            for row in right_env.test
            if right_env.test.value(row, join_attribute) == join_value
            and not is_null(right_env.test.value(row, right_attribute))
        ]
        if not left_rows or not right_rows:
            continue
        left_value = left_env.test.value(rng.choice(left_rows), left_attribute)
        right_value = right_env.test.value(rng.choice(right_rows), right_attribute)
        queries.append(
            JoinQuery(
                SelectionQuery.equals(left_attribute, left_value),
                SelectionQuery.equals(right_attribute, right_value),
                join_attribute,
            )
        )
        if len(queries) >= count:
            break
    if not queries:
        raise QpiadError("no join query with a non-empty certain join was found")
    return queries
