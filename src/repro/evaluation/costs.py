"""Retrieval cost modelling for the web environment.

The paper motivates QPIAD with "the bounded pool of database and network
resources in the web environment": every query costs a round trip and every
tuple costs transmission.  This module prices a retrieval run under a
simple linear cost model so experiments can report *cost*, not just tuple
counts — the unit in which a mediator operator actually budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QpiadError

__all__ = ["CostModel", "RetrievalCost"]


@dataclass(frozen=True)
class RetrievalCost:
    """Priced breakdown of one retrieval run."""

    queries: int
    tuples: int
    query_cost: float
    transfer_cost: float

    @property
    def total(self) -> float:
        return self.query_cost + self.transfer_cost


@dataclass(frozen=True)
class CostModel:
    """Linear pricing of source interactions.

    Parameters
    ----------
    per_query:
        Cost of one query round trip (e.g. milliseconds of latency, or an
        API-quota unit).
    per_tuple:
        Cost of transferring one tuple (e.g. milliseconds, or bytes/1000).
    """

    per_query: float = 150.0
    per_tuple: float = 2.0

    def __post_init__(self) -> None:
        if self.per_query < 0 or self.per_tuple < 0:
            raise QpiadError("cost-model rates must be non-negative")

    def price(self, queries: int, tuples: int) -> RetrievalCost:
        """Price a run of *queries* round trips shipping *tuples* tuples."""
        if queries < 0 or tuples < 0:
            raise QpiadError("cannot price negative usage")
        return RetrievalCost(
            queries=queries,
            tuples=tuples,
            query_cost=queries * self.per_query,
            transfer_cost=tuples * self.per_tuple,
        )

    def price_outcome(self, outcome) -> RetrievalCost:
        """Price a harness :class:`~repro.evaluation.harness.RunOutcome`."""
        return self.price(outcome.queries_issued, outcome.tuples_retrieved)

    def price_result(self, result) -> RetrievalCost:
        """Price a mediator :class:`~repro.core.results.QueryResult`."""
        return self.price(result.stats.queries_issued, result.stats.tuples_retrieved)
