"""Evaluation machinery: ground-truth oracle, IR metrics, experiment harness."""

from repro.evaluation.costs import CostModel, RetrievalCost
from repro.evaluation.harness import (
    Environment,
    RunOutcome,
    build_environment,
    classification_accuracy,
    run_all_ranked,
    run_all_returned,
    run_qpiad,
    selection_workload,
)
from repro.evaluation.metrics import (
    PrecisionRecallPoint,
    accumulated_precision,
    accuracy_cdf,
    aggregate_accuracy,
    average_accumulated_precision,
    average_precision,
    precision_at_recall,
    precision_recall_curve,
    tuples_required_for_recall,
)
from repro.evaluation.oracle import GroundTruthOracle
from repro.evaluation.workloads import (
    aggregate_workload,
    join_workload,
    multi_attribute_workload,
)
from repro.evaluation.reporting import render_curves, render_series, render_table
from repro.evaluation.stats import IncompletenessReport, incompleteness_report
from repro.evaluation.summary import SummaryResult, experiment_summary, render_summary

__all__ = [
    "GroundTruthOracle",
    "PrecisionRecallPoint",
    "precision_recall_curve",
    "accumulated_precision",
    "average_accumulated_precision",
    "precision_at_recall",
    "tuples_required_for_recall",
    "aggregate_accuracy",
    "accuracy_cdf",
    "average_precision",
    "Environment",
    "build_environment",
    "RunOutcome",
    "run_qpiad",
    "run_all_returned",
    "run_all_ranked",
    "selection_workload",
    "multi_attribute_workload",
    "aggregate_workload",
    "join_workload",
    "classification_accuracy",
    "CostModel",
    "RetrievalCost",
    "IncompletenessReport",
    "incompleteness_report",
    "SummaryResult",
    "experiment_summary",
    "render_summary",
    "render_table",
    "render_series",
    "render_curves",
]
