"""Incompleteness statistics of web databases (Table 1).

The paper motivates QPIAD with statistics on how incomplete live web
databases are: the fraction of tuples with at least one NULL, and per-
attribute missing-value percentages.  These helpers compute the same report
for any relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.relational.relation import Relation

__all__ = ["IncompletenessReport", "incompleteness_report"]


@dataclass(frozen=True)
class IncompletenessReport:
    """Table-1 style statistics for one database."""

    name: str
    attribute_count: int
    total_tuples: int
    incomplete_tuples_pct: float
    attribute_null_pct: dict[str, float]

    def row(self, attributes: Sequence[str]) -> list[str]:
        """Render as a Table-1 row for the chosen per-attribute columns."""
        cells = [
            self.name,
            str(self.attribute_count),
            str(self.total_tuples),
            f"{self.incomplete_tuples_pct:.2f}%",
        ]
        cells.extend(f"{self.attribute_null_pct.get(name, 0.0):.2f}%" for name in attributes)
        return cells


def incompleteness_report(name: str, relation: Relation) -> IncompletenessReport:
    """Compute Table-1 statistics for *relation*."""
    return IncompletenessReport(
        name=name,
        attribute_count=len(relation.schema),
        total_tuples=len(relation),
        incomplete_tuples_pct=100.0 * relation.incomplete_fraction(),
        attribute_null_pct={
            attribute: 100.0 * relation.null_fraction(attribute)
            for attribute in relation.schema.names
        },
    )
