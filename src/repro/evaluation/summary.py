"""One-command reproduction summary.

``qpiad report`` (or :func:`experiment_summary`) runs a compact version of
the paper's headline experiments on freshly generated data and renders one
plain-text report: the Section 6 story in under a minute, without the full
benchmark harness.  Useful as a smoke check that an installation reproduces
the qualitative results, and as a template for running the experiments on
your own data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import all_ranked
from repro.core.qpiad import QpiadConfig
from repro.datasets.cars import generate_cars
from repro.evaluation.harness import (
    Environment,
    build_environment,
    classification_accuracy,
    run_all_returned,
    run_qpiad,
    selection_workload,
)
from repro.evaluation.metrics import (
    average_accumulated_precision,
    average_precision,
    tuples_required_for_recall,
)
from repro.evaluation.reporting import render_table

__all__ = ["SummaryResult", "experiment_summary", "render_summary"]


@dataclass
class SummaryResult:
    """Headline numbers of one compact reproduction run."""

    qpiad_precision_at_5: float
    all_returned_precision_at_5: float
    qpiad_mean_ap: float
    all_returned_mean_ap: float
    tuples_for_recall_60: int | None
    all_ranked_population: int
    hybrid_accuracy: float
    all_attributes_accuracy: float
    queries_evaluated: int


def experiment_summary(
    size: int = 5000, seed: int = 7, queries: int = 5
) -> tuple[SummaryResult, Environment]:
    """Run the compact experiment battery on a fresh Cars environment."""
    env = build_environment(
        generate_cars(size, seed=seed),
        seed=seed + 40,
        attribute_weights={"body_style": 5.0},
        name="summary",
    )
    workload = selection_workload(env, "body_style", queries, seed=seed + 1)

    qpiad_runs = []
    baseline_runs = []
    qpiad_aps = []
    baseline_aps = []
    for query in workload:
        qpiad = run_qpiad(env, query, QpiadConfig(alpha=0.0, k=10))
        baseline = run_all_returned(env, query)
        qpiad_runs.append(qpiad.relevance)
        baseline_runs.append(baseline.relevance)
        qpiad_aps.append(average_precision(qpiad.relevance, qpiad.total_relevant))
        baseline_aps.append(
            average_precision(baseline.relevance, baseline.total_relevant)
        )

    qpiad_curve = average_accumulated_precision(qpiad_runs, length=5)
    baseline_curve = average_accumulated_precision(baseline_runs, length=5)

    efficiency_query = workload[0]
    efficiency = run_qpiad(env, efficiency_query, QpiadConfig(alpha=1.0, k=20))
    ranks = tuples_required_for_recall(
        efficiency.relevance, efficiency.total_relevant, [0.6]
    )
    population = len(
        all_ranked(env.permissive_source(), efficiency_query, env.knowledge).ranked
    )

    result = SummaryResult(
        qpiad_precision_at_5=qpiad_curve[4] if qpiad_curve else 0.0,
        all_returned_precision_at_5=baseline_curve[4] if baseline_curve else 0.0,
        qpiad_mean_ap=sum(qpiad_aps) / len(qpiad_aps),
        all_returned_mean_ap=sum(baseline_aps) / len(baseline_aps),
        tuples_for_recall_60=ranks[0],
        all_ranked_population=population,
        hybrid_accuracy=classification_accuracy(env, "hybrid-one-afd", limit=200),
        all_attributes_accuracy=classification_accuracy(
            env, "all-attributes", limit=200
        ),
        queries_evaluated=len(workload),
    )
    return result, env


def render_summary(result: SummaryResult) -> str:
    """The report text for one :class:`SummaryResult`."""
    rows = [
        [
            "ranking quality (Figs 3/6)",
            f"precision@5 {result.qpiad_precision_at_5:.2f}",
            f"precision@5 {result.all_returned_precision_at_5:.2f}",
        ],
        [
            "mean average precision",
            f"{result.qpiad_mean_ap:.2f}",
            f"{result.all_returned_mean_ap:.2f}",
        ],
        [
            "cost for recall 0.6 (Fig 8)",
            (
                f"{result.tuples_for_recall_60} possible answers"
                if result.tuples_for_recall_60 is not None
                else "recall 0.6 unreached"
            ),
            f"{result.all_ranked_population} tuples always (AllRanked)",
        ],
        [
            "null prediction (Table 3)",
            f"Hybrid One-AFD {100 * result.hybrid_accuracy:.1f}%",
            f"All-Attributes {100 * result.all_attributes_accuracy:.1f}%",
        ],
    ]
    return render_table(
        ["experiment", "QPIAD", "baseline"],
        rows,
        title=(
            f"QPIAD reproduction summary ({result.queries_evaluated} queries "
            "on a fresh synthetic Cars database)"
        ),
    )
