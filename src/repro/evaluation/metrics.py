"""Precision/recall machinery for ranked retrieval evaluation (Section 6).

All functions operate on *relevance flag lists*: the boolean relevance of
each retrieved possible answer, in the order the system returned them.
They compute exactly the curves the paper plots:

* cumulative precision–recall curves (Figs 3, 4, 5, 13),
* accumulated precision after the Kth tuple (Figs 6, 7, 10, 11),
* tuples required to reach a recall level (Fig 8), and
* aggregate-accuracy CDFs (Fig 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import QpiadError

__all__ = [
    "PrecisionRecallPoint",
    "precision_recall_curve",
    "accumulated_precision",
    "average_accumulated_precision",
    "precision_at_recall",
    "tuples_required_for_recall",
    "aggregate_accuracy",
    "accuracy_cdf",
    "average_precision",
]


@dataclass(frozen=True)
class PrecisionRecallPoint:
    """One point on a P/R curve: after retrieving ``rank`` answers."""

    rank: int
    precision: float
    recall: float


def precision_recall_curve(
    relevance: Sequence[bool], total_relevant: int
) -> list[PrecisionRecallPoint]:
    """Cumulative precision and recall after each retrieved answer.

    ``total_relevant`` is the oracle's count of relevant possible answers;
    recall stays 0 when it is 0 (nothing to find).  Should the denominator
    turn out to be an underestimate (more hits than the oracle counted),
    recall is clamped at 1.0 rather than exceeding it.
    """
    if total_relevant < 0:
        raise QpiadError(f"total_relevant must be non-negative, got {total_relevant}")
    points: list[PrecisionRecallPoint] = []
    hits = 0
    for rank, flag in enumerate(relevance, start=1):
        if flag:
            hits += 1
        precision = hits / rank
        recall = min(1.0, hits / total_relevant) if total_relevant else 0.0
        points.append(PrecisionRecallPoint(rank, precision, recall))
    return points


def accumulated_precision(relevance: Sequence[bool]) -> list[float]:
    """Precision after the Kth retrieved tuple, for K = 1..len."""
    precisions: list[float] = []
    hits = 0
    for rank, flag in enumerate(relevance, start=1):
        if flag:
            hits += 1
        precisions.append(hits / rank)
    return precisions


def average_accumulated_precision(
    per_query: Sequence[Sequence[bool]], length: int | None = None
) -> list[float]:
    """Average accumulated precision@K over several queries (Figs 6, 7).

    Queries that retrieved fewer than K answers contribute their final
    precision beyond their end (their result quality is "frozen"), matching
    the paper's practice of plotting average density over a fixed K range.
    Queries that retrieved nothing are skipped.
    """
    curves = [accumulated_precision(flags) for flags in per_query if flags]
    if not curves:
        return []
    target = length or max(len(curve) for curve in curves)
    averaged: list[float] = []
    for position in range(target):
        values = [
            curve[position] if position < len(curve) else curve[-1] for curve in curves
        ]
        averaged.append(sum(values) / len(values))
    return averaged


def precision_at_recall(
    points: Sequence[PrecisionRecallPoint], recall_levels: Sequence[float]
) -> list[float]:
    """Interpolated precision at given recall levels (max precision at or
    beyond each level, the standard IR interpolation); 0 when unreached."""
    out: list[float] = []
    for level in recall_levels:
        candidates = [point.precision for point in points if point.recall >= level]
        out.append(max(candidates) if candidates else 0.0)
    return out


def tuples_required_for_recall(
    relevance: Sequence[bool], total_relevant: int, recall_levels: Sequence[float]
) -> list[int | None]:
    """Number of tuples retrieved before each recall level is reached (Fig 8).

    ``None`` marks levels the run never reached.
    """
    points = precision_recall_curve(relevance, total_relevant)
    out: list[int | None] = []
    for level in recall_levels:
        rank = next((point.rank for point in points if point.recall >= level), None)
        out.append(rank)
    return out


def aggregate_accuracy(true_value: float | None, measured: float | None) -> float:
    """Relative accuracy of an aggregate: ``1 − |measured − true| / |true|``.

    Degenerate cases: both missing → 1.0 (vacuously exact); one missing or a
    zero true value with a nonzero measurement → 0.0; clamped at 0.

    NULL-audit note (qpiadlint): the ``is None`` tests below are correct as
    written.  Both operands are *computed aggregates* —
    :meth:`AggregateFunction.compute` returns the Python ``None`` sentinel
    for an empty input — and can never be tuple-sourced database NULLs,
    which ingestion coerces to the :data:`~repro.relational.values.NULL`
    singleton before any aggregation runs.
    """
    if true_value is None and measured is None:
        return 1.0
    if true_value is None or measured is None:
        return 0.0
    if true_value == 0:
        return 1.0 if measured == 0 else 0.0
    return max(0.0, 1.0 - abs(measured - true_value) / abs(true_value))


def accuracy_cdf(
    accuracies: Sequence[float], thresholds: Sequence[float]
) -> list[float]:
    """Fraction of queries reaching each accuracy threshold (Fig 12's axes)."""
    if not accuracies:
        return [0.0 for __ in thresholds]
    return [
        sum(1 for accuracy in accuracies if accuracy >= threshold) / len(accuracies)
        for threshold in thresholds
    ]


def average_precision(relevance: Sequence[bool], total_relevant: int) -> float:
    """Classic IR average precision (AP) of one ranked run.

    Clamped at 1.0 for robustness against an underestimated denominator.
    """
    if total_relevant <= 0:
        return 0.0
    hits = 0
    score = 0.0
    for rank, flag in enumerate(relevance, start=1):
        if flag:
            hits += 1
            score += hits / rank
    return min(1.0, score / total_relevant)
