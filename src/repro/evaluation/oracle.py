"""Ground-truth oracle for precision/recall evaluation (Section 6.2).

Because the experimental dataset (ED) was derived from a complete ground
truth dataset (GD) by masking cells, every possible answer's true value is
known.  The oracle answers the two questions the metrics need:

* is a retrieved possible answer *relevant* (does its ground-truth row
  certainly satisfy the query)?
* how many relevant possible answers exist in a given test relation (the
  recall denominator)?

Rows are matched back to the ED by exact tuple equality.  Duplicate tuples
resolve to their first occurrence, which is deterministic and unbiased for
the shape-level comparisons the reproduction targets.
"""

from __future__ import annotations

from typing import Sequence

from repro.datasets.incompleteness import IncompleteDataset
from repro.errors import QpiadError
from repro.query.executor import possible_answers
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation, Row

__all__ = ["GroundTruthOracle"]


class GroundTruthOracle:
    """Answers relevance questions against the GD/ED pair."""

    def __init__(self, dataset: IncompleteDataset):
        self.dataset = dataset
        self._index: dict[Row, int] = {}
        for position, row in enumerate(dataset.incomplete.rows):
            self._index.setdefault(row, position)

    # ------------------------------------------------------------------

    def ground_truth_row(self, ed_row: Row) -> Row:
        """The complete (GD) row behind an ED row."""
        try:
            position = self._index[ed_row]
        except KeyError:
            raise QpiadError(
                f"row {ed_row!r} does not occur in the experimental dataset"
            ) from None
        return self.dataset.complete.rows[position]

    def is_relevant(self, ed_row: Row, query: SelectionQuery) -> bool:
        """Whether the ground truth behind *ed_row* certainly satisfies *query*."""
        truth = self.ground_truth_row(ed_row)
        return query.predicate.matches(truth, self.dataset.complete.schema)

    def is_relevant_projection(
        self, partial_row: Row, visible: Sequence[str], query: SelectionQuery
    ) -> bool:
        """Relevance for rows returned by a source with a *smaller* schema.

        Correlated-source retrieval (§4.3) returns tuples missing the query
        attribute entirely.  The partial row is matched against the ED by
        its visible attributes; the first matching ED row whose ground truth
        satisfies the query makes it relevant.
        """
        schema = self.dataset.incomplete.schema
        indices = schema.indices_of(visible)
        for position, candidate in enumerate(self.dataset.incomplete.rows):
            if tuple(candidate[i] for i in indices) == tuple(partial_row):
                truth = self.dataset.complete.rows[position]
                if query.predicate.matches(truth, self.dataset.complete.schema):
                    return True
        return False

    # ------------------------------------------------------------------

    def relevant_possible(
        self,
        query: SelectionQuery,
        within: Relation | None = None,
        max_nulls: int | None = 1,
    ) -> list[Row]:
        """All relevant possible answers to *query* in *within* (default: ED).

        A row counts when it is a possible answer (NULL-blocked on at most
        *max_nulls* constrained attributes) *and* its ground truth satisfies
        the query.  This is the denominator of every recall measurement.
        """
        relation = within if within is not None else self.dataset.incomplete
        candidates = possible_answers(query, relation, max_nulls=max_nulls)
        return [row for row in candidates if self.is_relevant(row, query)]

    def relevance_flags(
        self, retrieved: Sequence[Row], query: SelectionQuery
    ) -> list[bool]:
        """Per-answer relevance of a ranked retrieval, in rank order."""
        return [self.is_relevant(row, query) for row in retrieved]

    def true_aggregate(self, query, relation: Relation | None = None) -> float | None:
        """Ground-truth value of an aggregate query (over the complete GD)."""
        from repro.query.executor import evaluate_aggregate

        target = relation if relation is not None else self.dataset.complete
        return evaluate_aggregate(query, target)
