"""Experiment workbench: environments, workloads and evaluation runners.

Everything Section 6 does repeatedly lives here so that tests, examples and
the per-figure benchmarks stay short:

* :func:`build_environment` reproduces the §6.2 protocol — generate a
  ground-truth dataset, mask 10% of tuples, split ED into a training sample
  and a test database, mine a knowledge base;
* workload helpers draw random selection queries that actually have
  relevant possible answers (so recall is well-defined);
* runners execute QPIAD / AllReturned / AllRanked on an environment and
  hand back relevance flags ready for the metrics module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.baselines import all_ranked, all_returned
from repro.core.qpiad import QpiadConfig, QpiadMediator
from repro.core.results import QueryResult
from repro.datasets.incompleteness import IncompleteDataset, make_incomplete
from repro.errors import QpiadError
from repro.evaluation.oracle import GroundTruthOracle
from repro.mining.knowledge import KnowledgeBase, MiningConfig
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation
from repro.relational.values import is_null
from repro.sources.autonomous import AutonomousSource
from repro.sources.capabilities import SourceCapabilities
from repro.sources.sampler import split_relation

__all__ = [
    "Environment",
    "build_environment",
    "RunOutcome",
    "run_qpiad",
    "run_all_returned",
    "run_all_ranked",
    "selection_workload",
    "classification_accuracy",
]


@dataclass
class Environment:
    """One fully prepared experimental setting (dataset + knowledge + oracle)."""

    dataset: IncompleteDataset
    oracle: GroundTruthOracle
    train: Relation
    test: Relation
    knowledge: KnowledgeBase
    name: str = "experiment"

    def web_source(self, **capability_kwargs) -> AutonomousSource:
        """The test database behind a restricted web-form interface."""
        return AutonomousSource(
            self.name,
            self.test,
            SourceCapabilities.web_form(**capability_kwargs),
        )

    def permissive_source(self) -> AutonomousSource:
        """The test database with counterfactual NULL binding (baselines)."""
        return AutonomousSource(
            self.name, self.test, SourceCapabilities.unrestricted()
        )

    def total_relevant(self, query: SelectionQuery, max_nulls: int | None = 1) -> int:
        """Recall denominator: relevant possible answers in the test DB."""
        return len(self.oracle.relevant_possible(query, within=self.test, max_nulls=max_nulls))


def build_environment(
    complete: Relation,
    incomplete_fraction: float = 0.10,
    train_fraction: float = 0.10,
    seed: int = 42,
    mining: MiningConfig | None = None,
    maskable_attributes: Sequence[str] | None = None,
    attribute_weights: "dict[str, float] | None" = None,
    name: str = "experiment",
) -> Environment:
    """The §6.2 pipeline: GD → ED → train/test split → mined knowledge."""
    dataset = make_incomplete(
        complete,
        incomplete_fraction=incomplete_fraction,
        seed=seed,
        maskable_attributes=maskable_attributes,
        attribute_weights=attribute_weights,
    )
    rng = random.Random(seed + 1)
    train, test = split_relation(dataset.incomplete, train_fraction, rng)
    knowledge = KnowledgeBase(train, database_size=len(test), config=mining)
    return Environment(
        dataset=dataset,
        oracle=GroundTruthOracle(dataset),
        train=train,
        test=test,
        knowledge=knowledge,
        name=name,
    )


@dataclass
class RunOutcome:
    """One system's ranked retrieval on one query, ready for metrics."""

    query: SelectionQuery
    relevance: list[bool]
    total_relevant: int
    tuples_retrieved: int
    queries_issued: int
    result: QueryResult

    @property
    def hits(self) -> int:
        return sum(self.relevance)


def _outcome(env: Environment, query: SelectionQuery, result: QueryResult) -> RunOutcome:
    flags = env.oracle.relevance_flags([a.row for a in result.ranked], query)
    return RunOutcome(
        query=query,
        relevance=flags,
        total_relevant=env.total_relevant(query),
        tuples_retrieved=result.stats.tuples_retrieved,
        queries_issued=result.stats.queries_issued,
        result=result,
    )


def run_qpiad(
    env: Environment, query: SelectionQuery, config: QpiadConfig | None = None
) -> RunOutcome:
    """Run the QPIAD mediator against the web-form source."""
    mediator = QpiadMediator(env.web_source(), env.knowledge, config)
    return _outcome(env, query, mediator.query(query))


def run_all_returned(env: Environment, query: SelectionQuery) -> RunOutcome:
    """Run the AllReturned baseline (needs the permissive source)."""
    return _outcome(env, query, all_returned(env.permissive_source(), query))


def run_all_ranked(
    env: Environment, query: SelectionQuery, method: str | None = None
) -> RunOutcome:
    """Run the AllRanked baseline (needs the permissive source)."""
    result = all_ranked(env.permissive_source(), query, env.knowledge, method=method)
    return _outcome(env, query, result)


def selection_workload(
    env: Environment,
    attribute: str,
    count: int,
    seed: int = 13,
    min_relevant: int = 1,
) -> list[SelectionQuery]:
    """Random single-attribute equality queries with nonzero recall mass.

    Values are drawn (without replacement) from the attribute's domain,
    keeping only values for which the test database holds at least
    *min_relevant* relevant possible answers — queries with an empty recall
    denominator measure nothing.
    """
    rng = random.Random(seed)
    values = env.test.distinct_values(attribute)
    rng.shuffle(values)
    queries: list[SelectionQuery] = []
    for value in values:
        query = SelectionQuery.equals(attribute, value)
        if env.total_relevant(query) >= min_relevant:
            queries.append(query)
        if len(queries) >= count:
            break
    if not queries:
        raise QpiadError(
            f"no query on {attribute!r} has {min_relevant}+ relevant possible "
            "answers; grow the dataset or lower min_relevant"
        )
    return queries


def classification_accuracy(
    env: Environment,
    method: str,
    attributes: Sequence[str] | None = None,
    limit: int | None = None,
) -> float:
    """Null-value prediction accuracy over the test database (Table 3).

    For every masked cell that landed in the test split, predict the missing
    value from the tuple's other attributes using the given classifier
    variant and compare against the masked ground-truth value.
    """
    test_rows = set(env.test.rows)
    schema = env.dataset.incomplete.schema
    correct = 0
    total = 0
    for cell in env.dataset.masked:
        if attributes is not None and cell.attribute not in attributes:
            continue
        row = env.dataset.incomplete.rows[cell.row_index]
        if row not in test_rows:
            continue
        evidence = {
            name: value
            for name, value in zip(schema.names, row)
            if not is_null(value) and name != cell.attribute
        }
        predicted, __ = env.knowledge.predict_value(cell.attribute, evidence, method)
        if predicted == cell.true_value:
            correct += 1
        total += 1
        if limit is not None and total >= limit:
            break
    if total == 0:
        raise QpiadError("no masked cells fell into the test split")
    return correct / total
