"""Plain-text rendering of tables and figure series.

The benchmark harness regenerates every table and figure of the paper as
text: tables as aligned ASCII grids, figures as labelled data series (one
``x  y`` row per point).  Keeping the renderer here means benches, examples
and EXPERIMENTS.md all show identical output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_series", "render_curves"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """An aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for position, cell in enumerate(row):
            if position < len(widths):
                widths[position] = max(widths[position], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    points: Sequence[tuple[object, object]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """One figure series as labelled ``x  y`` rows."""
    lines = [f"{title}", f"  {x_label:>12}  {y_label}"]
    for x, y in points:
        x_text = f"{x:.4f}" if isinstance(x, float) else str(x)
        y_text = f"{y:.4f}" if isinstance(y, float) else str(y)
        lines.append(f"  {x_text:>12}  {y_text}")
    return "\n".join(lines)


def render_curves(
    title: str,
    curves: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Several labelled series of one figure, stacked."""
    blocks = [title]
    for label, points in curves.items():
        blocks.append(render_series(f"[{label}]", points, x_label, y_label))
    return "\n\n".join(blocks)
