"""Composable rewrite generators: the candidate-producing planner stage.

A :class:`RewriteGenerator` turns (query, base set) into candidate
rewritten queries.  The planner composes one generator with the shared
:class:`~repro.planner.ranker.Ranker` and a gating policy to build a
retrieval plan; mediators never call the generation machinery in
:mod:`repro.core.rewriting` directly any more (the
``raw-rewrite-call-in-core`` lint rule keeps it that way).

Generators are small frozen values so they can live inside cache keys and
be shared across threads freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Any, Protocol, Sequence

from repro.core.rewriting import RewrittenQuery, generate_rewritten_queries
from repro.errors import QueryError, RewritingError
from repro.mining.afd import Afd
from repro.mining.knowledge import KnowledgeBase
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation

__all__ = [
    "AfdRewriteGenerator",
    "CorrelationRewriteGenerator",
    "RelaxationGenerator",
    "RewriteGenerator",
    "attribute_influence",
    "can_answer",
]


def can_answer(source: Any, query: SelectionQuery) -> bool:
    """Whether *source*'s interface can express *query*.

    Sources (and wrappers) expose :meth:`can_answer`; anything without it —
    including ``None`` — is assumed fully capable.
    """
    checker = getattr(source, "can_answer", None)
    if checker is None:
        return True
    return bool(checker(query))


class RewriteGenerator(Protocol):
    """One way of producing candidate rewritten queries for a user query."""

    def generate(
        self, query: SelectionQuery, base_set: Relation
    ) -> "list[RewrittenQuery]": ...


@dataclass(frozen=True)
class AfdRewriteGenerator:
    """Section 4.2's AFD-based rewriting (one candidate per distinct
    determining-set combination of the base set).

    An unrewritable query (no constrained attribute has a usable AFD) is a
    planning outcome, not an error: it yields an empty candidate list and
    the retrieval proceeds with certain answers only.
    """

    # A generator lives for exactly one plan_* call; the planner hands it
    # the per-call generation snapshot on purpose, so candidate generation
    # and ranking read one coherent set of statistics.
    knowledge: KnowledgeBase  # qpiadlint: disable=stale-knowledge-capture
    method: "str | None" = None

    def generate(
        self, query: SelectionQuery, base_set: Relation
    ) -> "list[RewrittenQuery]":
        try:
            return generate_rewritten_queries(
                query, base_set, self.knowledge, self.method
            )
        except RewritingError:
            return []


@dataclass(frozen=True)
class CorrelationRewriteGenerator:
    """Section 4.3's cross-source variant.

    Candidates are generated from the *correlated* source's knowledge but
    will be issued against the *deficient* target source, so anything the
    target's web form cannot express is filtered out before ranking —
    unlike the single-source pipeline, which ranks first and gates after,
    because here unissuable candidates would distort the recall
    normalization of a plan none of whose queries the target can run.
    """

    # Same single-query snapshot as AfdRewriteGenerator: one generation
    # per plan_correlated call, chosen by the planner.
    knowledge: KnowledgeBase  # qpiadlint: disable=stale-knowledge-capture
    target: Any
    method: "str | None" = None

    def generate(
        self, query: SelectionQuery, base_set: Relation
    ) -> "list[RewrittenQuery]":
        candidates = AfdRewriteGenerator(self.knowledge, self.method).generate(
            query, base_set
        )
        return [
            candidate
            for candidate in candidates
            if can_answer(self.target, candidate.query)
        ]


def attribute_influence(afds: Sequence[Afd], attribute: str) -> float:
    """How strongly *attribute* determines others, per the mined AFDs.

    The sum of confidences of pruned AFDs whose determining set contains
    the attribute.  Attributes that determine nothing score 0 and are
    relaxed first.
    """
    return sum(afd.confidence for afd in afds if attribute in afd.determining)


@dataclass(frozen=True)
class RelaxationGenerator:
    """AFD-influence-guided relaxation (the QUIC direction, Section 7).

    Not a rewrite generator in the Protocol sense — relaxation produces
    weaker *whole queries*, not per-tuple rewritings — but it is the same
    planning shape: derive an ordered query list from the mined knowledge,
    deterministically, so the result is cacheable under the knowledge
    fingerprint.
    """

    afds: "tuple[Afd, ...]"
    max_dropped: "int | None" = None

    def influence(self, query: SelectionQuery) -> "dict[str, float]":
        return {
            attribute: attribute_influence(self.afds, attribute)
            for attribute in query.constrained_attributes
        }

    def generate(
        self, query: SelectionQuery
    ) -> "tuple[dict[str, float], tuple[SelectionQuery, ...]]":
        """The influence map and the relaxed queries, least-painful first.

        Queries dropping fewer conjuncts come first; among equal counts,
        the dropped set with the smallest total influence comes first.
        """
        conjuncts = query.conjuncts
        if len(conjuncts) < 2:
            raise QueryError(
                "relaxation needs at least two conjuncts; a single-conjunct "
                "query can only be relaxed to a full scan"
            )
        influence = self.influence(query)
        limit = (
            self.max_dropped if self.max_dropped is not None else len(conjuncts) - 1
        )
        limit = min(limit, len(conjuncts) - 1)

        relaxed: "list[tuple[int, float, SelectionQuery]]" = []
        for dropped_count in range(1, limit + 1):
            for dropped in combinations(conjuncts, dropped_count):
                kept = [c for c in conjuncts if c not in dropped]
                if not kept:
                    continue
                pain = sum(influence[a] for c in dropped for a in c.attributes())
                relaxed.append(
                    (
                        dropped_count,
                        pain,
                        SelectionQuery.conjunction(kept, query.relation),
                    )
                )
        relaxed.sort(key=lambda item: (item[0], item[1], repr(item[2])))
        return influence, tuple(q for __, __, q in relaxed)
