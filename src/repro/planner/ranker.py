"""The shared F-measure ranker (Section 4.1/4.2).

Two orthogonal quantities rate a rewritten query: its expected *precision*
(probability the retrieved tuples answer the original query) and its
*selectivity* (how many tuples it brings in).  QPIAD trades them off with
the IR F-measure:

    F_α = (1 + α) · P · R / (α · P + R)

where the recall ``R`` of a query is its expected throughput
(precision × selectivity) normalized by the cumulative expected throughput
of all candidates.  ``α = 0`` reduces to precision-only ordering; larger α
weights recall more.

This module is the *one* place ordering and tie-breaking policy lives.
Every pipeline — selection rewriting, correlated-source retrieval,
aggregate processing, join-pair selection — ranks through it, so the
policy cannot drift between mediators again (it had: the join processor
once broke F-measure ties on bare precision instead of expected
throughput).  The canonical tie-break for top-K selection is::

    (-F_α, -expected throughput, canonical repr)

and the survivors of a selection plan are issued in precision order
(``-precision, -throughput, repr``) so each returned tuple inherits its
retrieving query's precision as its rank — no per-tuple re-ranking needed
(step 2c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.core.rewriting import RewrittenQuery
from repro.errors import QpiadError

__all__ = ["Ranker", "f_measure", "order_rewritten_queries", "score_rewritten_queries"]

T = TypeVar("T")


def f_measure(precision: float, recall: float, alpha: float) -> float:
    """The weighted harmonic mean used for query ordering.

    Degenerate cases: with ``α = 0`` the measure reduces exactly to the
    precision; when both terms are zero the score is zero.
    """
    if alpha < 0:
        raise QpiadError(f"alpha must be non-negative, got {alpha}")
    if alpha == 0:
        return precision
    denominator = alpha * precision + recall
    if denominator <= 0.0:
        return 0.0
    return (1.0 + alpha) * precision * recall / denominator


def score_rewritten_queries(
    rewritten: Sequence[RewrittenQuery], alpha: float
) -> "list[RewrittenQuery]":
    """Attach estimated recall and F-measure to every rewritten query.

    Recall is expected throughput normalized by the cumulative expected
    throughput over *all* candidates (the paper's estimate of the fraction
    of reachable relevant answers each query contributes).
    """
    total_throughput = sum(query.expected_throughput for query in rewritten)
    scored = []
    for query in rewritten:
        if total_throughput > 0:
            recall = query.expected_throughput / total_throughput
        else:
            recall = 0.0
        scored.append(
            query.with_ordering_scores(
                recall, f_measure(query.estimated_precision, recall, alpha)
            )
        )
    return scored


def order_rewritten_queries(
    rewritten: Sequence[RewrittenQuery],
    alpha: float = 0.0,
    k: "int | None" = None,
) -> "list[RewrittenQuery]":
    """Select and order the rewritten queries to issue.

    1. Score every candidate with the F-measure at the given α.
    2. Keep the top-K by F-measure (``k = None`` keeps all).
    3. Re-order the survivors by estimated precision, descending, so that
       issuing them in order yields answers in rank order (step 2c).

    Ties break on expected throughput, then on the query's repr for
    determinism.
    """
    if k is not None and k < 0:
        raise QpiadError(f"k must be non-negative, got {k}")
    scored = score_rewritten_queries(rewritten, alpha)
    by_f = sorted(
        scored,
        key=lambda q: (-q.f_measure, -q.expected_throughput, repr(q.query)),
    )
    selected = by_f if k is None else by_f[:k]
    return sorted(
        selected,
        key=lambda q: (-q.estimated_precision, -q.expected_throughput, repr(q.query)),
    )


@dataclass(frozen=True)
class Ranker:
    """One pipeline's ranking policy: α plus the top-K budget.

    A small value object so every planner stage — and anything else that
    needs F-measure selection over jointly scored items, like the join
    processor's query pairs — applies *identical* scoring, selection, and
    tie-breaking.
    """

    alpha: float = 0.0
    k: "int | None" = None

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise QpiadError(f"alpha must be non-negative, got {self.alpha}")
        if self.k is not None and self.k < 0:
            raise QpiadError(f"k must be non-negative, got {self.k}")

    def f_measure(self, precision: float, recall: float) -> float:
        return f_measure(precision, recall, self.alpha)

    def score(self, rewritten: Sequence[RewrittenQuery]) -> "list[RewrittenQuery]":
        return score_rewritten_queries(rewritten, self.alpha)

    def order(self, rewritten: Sequence[RewrittenQuery]) -> "list[RewrittenQuery]":
        return order_rewritten_queries(rewritten, self.alpha, self.k)

    def select_top(
        self,
        items: Sequence[T],
        *,
        f: Callable[[T], float],
        throughput: Callable[[T], float],
        key: Callable[[T], str],
    ) -> "list[T]":
        """Top-K of *items* under the canonical selection tie-break.

        Sorts by ``(-F, -expected throughput, canonical key)`` and keeps
        the first K — the exact policy :func:`order_rewritten_queries`
        applies to rewritten queries, generalized to any jointly scored
        item (the join processor's query pairs use it directly).
        """
        ranked = sorted(items, key=lambda item: (-f(item), -throughput(item), key(item)))
        return ranked if self.k is None else ranked[: self.k]
