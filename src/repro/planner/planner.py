"""The query planner: one facade over the query→plan pipeline.

:class:`QueryPlanner` owns the stages every mediator used to run privately
— candidate generation (:mod:`repro.planner.generators`), F-measure
ranking (:mod:`repro.planner.ranker`), and capability/confidence gating —
and produces the immutable plans the
:class:`~repro.engine.RetrievalEngine` executes.  One planning mode exists
per mediator family:

* :meth:`plan_selection` — the QPIAD selection pipeline (generate, rank,
  gate on expressibility and the confidence threshold);
* :meth:`plan_correlated` — the §4.3 cross-source variant (gate on the
  *target* source before ranking, force the unsupported attribute);
* :meth:`plan_aggregate` — the §4.4 pipeline with argmax / fractional
  inclusion gating and per-step weights;
* :meth:`rewrite_candidates` — bare ranked-input candidates, for pipelines
  with their own joint scoring (join-pair selection);
* :meth:`plan_relaxation` — the influence-guided relaxation plan.

Every mode runs through one caching wrapper.  With a
:class:`~repro.planner.cache.PlanCache` attached, results are memoized
under a key built from content fingerprints — canonical query, base-set
rows, planner config, source capability token, and the knowledge base's
:meth:`~repro.mining.knowledge.KnowledgeBase.fingerprint` — so a cached
plan is reused exactly when every planning input is bit-identical, and a
knowledge refresh (new sample, re-mined AFDs, different discretization)
invalidates it by construction.  Without a cache, no fingerprint is ever
computed: the disabled path is the plain pipeline with zero overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Hashable, TypeVar

if TYPE_CHECKING:
    from repro.core.relaxation import RelaxationPlan

from repro.core.rewriting import RewrittenQuery
from repro.engine.plan import PlannedQuery, QueryKind, RetrievalPlan
from repro.errors import QueryError
from repro.mining.knowledge import KnowledgeBase
from repro.mining.store import KnowledgeStore, as_store
from repro.planner.cache import PlanCache
from repro.planner.fingerprint import (
    query_fingerprint,
    relation_fingerprint,
    source_token,
)
from repro.planner.generators import (
    AfdRewriteGenerator,
    CorrelationRewriteGenerator,
    RelaxationGenerator,
    can_answer,
)
from repro.planner.ranker import Ranker
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation
from repro.telemetry import SpanKind, Telemetry, maybe_span

__all__ = [
    "AggregatePlan",
    "PlannerConfig",
    "QueryPlanner",
    "SelectionPlan",
    "baseline_plan",
]

PlanT = TypeVar("PlanT")


@dataclass(frozen=True)
class PlannerConfig:
    """The planning-stage slice of a mediator's configuration.

    Every field participates in the cache key, so changing any knob —
    α, K, the classifier variant, the confidence threshold, the aggregate
    inclusion rule — starts a fresh cache lineage instead of serving plans
    ranked under the old policy.
    """

    alpha: float = 0.0
    k: "int | None" = 10
    classifier_method: "str | None" = None
    min_confidence: float = 0.0
    inclusion_rule: str = "argmax"

    def token(self) -> str:
        """Canonical cache-key component for this configuration."""
        return (
            f"alpha={self.alpha!r};k={self.k!r};"
            f"method={self.classifier_method!r};"
            f"min_confidence={self.min_confidence!r};"
            f"inclusion={self.inclusion_rule!r}"
        )


@dataclass(frozen=True)
class SelectionPlan:
    """The planned rewritten-query sequence for one selection retrieval.

    Steps carry no source object — they are attached at execution time —
    so one cached plan can serve any retrieval whose capability token
    matches, and nothing mutable is ever shared across threads.
    """

    steps: "tuple[PlannedQuery, ...]"
    generated: int = 0
    skipped_unanswerable: int = 0
    skipped_below_confidence: int = 0
    cached: bool = False

    @property
    def skipped(self) -> int:
        return self.skipped_unanswerable + self.skipped_below_confidence


@dataclass(frozen=True)
class AggregatePlan:
    """The §4.4 plan: gated rewritten queries plus their inclusion weights."""

    steps: "tuple[PlannedQuery, ...]"
    weights: "tuple[float, ...]"
    generated: int = 0
    considered: int = 0
    skipped: int = 0
    cached: bool = False


def baseline_plan(query: SelectionQuery, max_nulls: "int | None" = 1) -> RetrievalPlan:
    """The counterfactual baselines' two-step plan (§6.2).

    One base query for the certain answers, one NULL-binding fetch for the
    possible ones.  The fetch is ``required``: the baselines exist to
    quantify what NULL binding would buy, so a source that cannot bind
    NULL must fail the retrieval loudly, not degrade it.
    """
    return RetrievalPlan(
        steps=(
            PlannedQuery(query=query, kind=QueryKind.BASE, rank=0),
            PlannedQuery(
                query=query,
                kind=QueryKind.MULTI_NULL,
                rank=1,
                max_nulls=max_nulls,
                required=True,
                label="null-binding",
            ),
        )
    )


class QueryPlanner:
    """Plans retrievals over one knowledge base.

    Parameters
    ----------
    knowledge:
        The mined statistics every planning decision reads — either a
        bare :class:`~repro.mining.knowledge.KnowledgeBase` or a
        :class:`~repro.mining.store.KnowledgeStore` holding the current
        generation.  The planner always reads through a store (a bare
        knowledge base is wrapped in a private one), snapshotting the
        current generation once per planning call: one plan is built
        against one consistent generation, and a refresh swapping the
        store between calls changes the fingerprint in the cache key, so
        stale plans miss by construction.
    config:
        Ranking and gating knobs; defaults match :class:`PlannerConfig`.
    cache:
        Optional :class:`~repro.planner.cache.PlanCache`.  ``None`` (the
        default) disables caching entirely — no fingerprints are computed,
        so the disabled path costs nothing over the raw pipeline.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hook: cache traffic
        feeds the ``planner.cache_*`` counters and every *built* (i.e.
        non-cached) plan becomes a ``plan`` span.
    """

    def __init__(
        self,
        knowledge: "KnowledgeBase | KnowledgeStore",
        config: "PlannerConfig | None" = None,
        *,
        cache: "PlanCache | None" = None,
        telemetry: "Telemetry | None" = None,
    ):
        self._store = as_store(knowledge)
        self.config = config or PlannerConfig()
        self.cache = cache
        self._telemetry = telemetry
        self._ranker = Ranker(self.config.alpha, self.config.k)

    @property
    def store(self) -> KnowledgeStore:
        """The knowledge store this planner reads through."""
        return self._store

    @property
    def knowledge(self) -> KnowledgeBase:
        """Snapshot of the current knowledge generation."""
        return self._store.current

    # ------------------------------------------------------------------
    # Planning modes

    def plan_selection(
        self,
        query: SelectionQuery,
        base_set: Relation,
        source: Any = None,
        *,
        knowledge: "KnowledgeBase | None" = None,
    ) -> SelectionPlan:
        """The QPIAD selection plan: generated, ordered, gated, ranked.

        Gating happens here — at plan time — so an inexpressible or
        below-threshold rewriting never spends source budget; the skip
        tallies let the mediator keep its ``rewritten_skipped`` accounting
        without replanning.  Pass *knowledge* to plan against a caller-held
        generation snapshot instead of the store's current one.
        """
        snapshot = self._snapshot(knowledge)
        return self._cached(
            "selection",
            lambda: (
                query_fingerprint(query),
                relation_fingerprint(base_set),
                source_token(source),
            ),
            lambda: self._build_selection(query, base_set, source, snapshot),
            name=str(query),
            knowledge=snapshot,
        )

    def plan_correlated(
        self,
        query: SelectionQuery,
        base_set: Relation,
        attribute: str,
        target: Any,
        *,
        knowledge: "KnowledgeBase | None" = None,
    ) -> SelectionPlan:
        """The §4.3 cross-source plan against a deficient *target* source.

        Candidates come from this planner's (correlated) knowledge; only
        those the target can express are ranked, and every step hunts the
        single unsupported *attribute*.  Steps carry no source — the
        mediator attaches the target at execution time.
        """
        snapshot = self._snapshot(knowledge)
        return self._cached(
            f"correlated:{attribute}",
            lambda: (
                query_fingerprint(query),
                relation_fingerprint(base_set),
                source_token(target),
            ),
            lambda: self._build_correlated(
                query, base_set, attribute, target, snapshot
            ),
            name=str(query),
            knowledge=snapshot,
        )

    def plan_aggregate(
        self,
        selection: SelectionQuery,
        base_set: Relation,
        *,
        knowledge: "KnowledgeBase | None" = None,
    ) -> AggregatePlan:
        """The §4.4 plan: inclusion-gated rewritten queries with weights.

        The argmax / fractional rule depends only on mined statistics,
        never on retrieved rows, so gated-out rewritings cost nothing on
        the wire — and the whole gate result is cacheable.
        """
        snapshot = self._snapshot(knowledge)
        return self._cached(
            "aggregate",
            lambda: (
                query_fingerprint(selection),
                relation_fingerprint(base_set),
            ),
            lambda: self._build_aggregate(selection, base_set, snapshot),
            name=str(selection),
            knowledge=snapshot,
        )

    def rewrite_candidates(
        self,
        query: SelectionQuery,
        base_set: Relation,
        *,
        knowledge: "KnowledgeBase | None" = None,
    ) -> "tuple[RewrittenQuery, ...]":
        """Bare AFD-rewriting candidates, for pipelines with their own
        joint scoring (the join processor scores query *pairs*)."""
        snapshot = self._snapshot(knowledge)
        return self._cached(
            "candidates",
            lambda: (query_fingerprint(query), relation_fingerprint(base_set)),
            lambda: tuple(
                AfdRewriteGenerator(
                    snapshot, self.config.classifier_method
                ).generate(query, base_set)
            ),
            name=str(query),
            knowledge=snapshot,
        )

    def plan_relaxation(
        self,
        query: SelectionQuery,
        max_dropped: "int | None" = None,
        *,
        knowledge: "KnowledgeBase | None" = None,
    ) -> "RelaxationPlan":
        """The influence-guided relaxation plan (least-painful first)."""
        snapshot = self._snapshot(knowledge)
        return self._cached(
            f"relaxation:{max_dropped!r}",
            lambda: (query_fingerprint(query),),
            lambda: self._build_relaxation(query, max_dropped, snapshot),
            name=str(query),
            knowledge=snapshot,
        )

    def _snapshot(self, knowledge: "KnowledgeBase | None") -> KnowledgeBase:
        """The generation this planning call runs against.

        Taken once per call so generation, builders and cache key all see
        the same knowledge even if the store is swapped mid-plan.
        """
        return self._store.current if knowledge is None else knowledge

    # ------------------------------------------------------------------
    # Stage implementations

    def _build_selection(
        self,
        query: SelectionQuery,
        base_set: Relation,
        source: Any,
        knowledge: KnowledgeBase,
    ) -> SelectionPlan:
        generator = AfdRewriteGenerator(knowledge, self.config.classifier_method)
        candidates = generator.generate(query, base_set)
        ordered = self._ranker.order(candidates)
        steps: "list[PlannedQuery]" = []
        unanswerable = 0
        below_confidence = 0
        for rewritten in ordered:
            if not can_answer(source, rewritten.query):
                unanswerable += 1
                continue  # the web form cannot express this rewriting
            if rewritten.estimated_precision < self.config.min_confidence:
                # Plan-time confidence gate: every row this rewriting could
                # retrieve would carry a confidence below the user's
                # threshold, so issuing it would only burn the source's
                # query budget on rows the post-filter must discard.
                below_confidence += 1
                continue
            steps.append(
                PlannedQuery(
                    query=rewritten.query,
                    kind=QueryKind.REWRITTEN,
                    rank=len(steps),
                    estimated_precision=rewritten.estimated_precision,
                    estimated_recall=rewritten.estimated_recall,
                    target_attribute=rewritten.target_attribute,
                    explanation=rewritten.afd,
                )
            )
        return SelectionPlan(
            steps=tuple(steps),
            generated=len(candidates),
            skipped_unanswerable=unanswerable,
            skipped_below_confidence=below_confidence,
        )

    def _build_correlated(
        self,
        query: SelectionQuery,
        base_set: Relation,
        attribute: str,
        target: Any,
        knowledge: KnowledgeBase,
    ) -> SelectionPlan:
        generator = CorrelationRewriteGenerator(
            knowledge, target, self.config.classifier_method
        )
        usable = generator.generate(query, base_set)
        ordered = self._ranker.order(usable)
        steps = tuple(
            PlannedQuery(
                query=rewritten.query,
                kind=QueryKind.REWRITTEN,
                rank=rank,
                estimated_precision=rewritten.estimated_precision,
                estimated_recall=rewritten.estimated_recall,
                target_attribute=attribute,
                explanation=rewritten.afd,
            )
            for rank, rewritten in enumerate(ordered)
        )
        return SelectionPlan(steps=steps, generated=len(usable))

    def _build_aggregate(
        self,
        selection: SelectionQuery,
        base_set: Relation,
        knowledge: KnowledgeBase,
    ) -> AggregatePlan:
        generator = AfdRewriteGenerator(knowledge, self.config.classifier_method)
        candidates = generator.generate(selection, base_set)
        ordered = self._ranker.order(candidates)
        steps: "list[PlannedQuery]" = []
        weights: "list[float]" = []
        skipped = 0
        for rewritten in ordered:
            if self.config.inclusion_rule == "argmax":
                if not self._argmax_matches(rewritten, selection, knowledge):
                    skipped += 1
                    continue
                weight = 1.0
            else:
                weight = rewritten.estimated_precision
                if weight <= 0.0:
                    skipped += 1
                    continue
            steps.append(
                PlannedQuery(
                    query=rewritten.query,
                    kind=QueryKind.REWRITTEN,
                    rank=len(steps),
                    estimated_precision=rewritten.estimated_precision,
                    estimated_recall=rewritten.estimated_recall,
                    target_attribute=rewritten.target_attribute,
                    explanation=rewritten.afd,
                )
            )
            weights.append(weight)
        return AggregatePlan(
            steps=tuple(steps),
            weights=tuple(weights),
            generated=len(candidates),
            considered=len(ordered),
            skipped=skipped,
        )

    def _argmax_matches(
        self, rewritten: Any, selection: SelectionQuery, knowledge: KnowledgeBase
    ) -> bool:
        """Section 4.4's inclusion rule: most-likely completion == query value."""
        try:
            value = selection.equality_value(rewritten.target_attribute)
        except QueryError:
            # Range-constrained target: include when the majority of the
            # posterior mass satisfies the constraint (natural extension).
            return rewritten.estimated_precision > 0.5
        return knowledge.predict_matches(
            rewritten.target_attribute,
            value,
            rewritten.evidence,
            self.config.classifier_method,
        )

    def _build_relaxation(
        self,
        query: SelectionQuery,
        max_dropped: "int | None",
        knowledge: KnowledgeBase,
    ) -> "RelaxationPlan":
        # Imported lazily: repro.core.relaxation itself plans through this
        # module, and the plan type stays there for API compatibility.
        from repro.core.relaxation import RelaxationPlan

        generator = RelaxationGenerator(knowledge.afds, max_dropped)
        influence, queries = generator.generate(query)
        return RelaxationPlan(original=query, queries=queries, influence=influence)

    # ------------------------------------------------------------------
    # The caching wrapper

    def _cached(
        self,
        mode: str,
        key_parts: Callable[[], "tuple[Hashable, ...]"],
        build: Callable[[], PlanT],
        name: str,
        knowledge: KnowledgeBase,
    ) -> PlanT:
        telemetry = self._telemetry
        cache = self.cache
        if cache is None:
            # The disabled path computes no fingerprints at all: planning
            # with the cache off costs exactly what the raw pipeline does.
            return self._build_spanned(mode, build, name)
        key = (
            mode,
            self.config.token(),
            knowledge.fingerprint(),
            *key_parts(),
        )
        hit = cache.lookup(key)
        if hit is not None:
            if telemetry is not None:
                telemetry.count("planner.cache_hits")
            if isinstance(hit, (SelectionPlan, AggregatePlan)):
                return replace(hit, cached=True)
            return hit
        if telemetry is not None:
            telemetry.count("planner.cache_misses")
        plan = self._build_spanned(mode, build, name)
        evicted = cache.store(key, plan)
        if evicted and telemetry is not None:
            telemetry.count("planner.cache_evictions")
        return plan

    def _build_spanned(
        self, mode: str, build: Callable[[], PlanT], name: str
    ) -> PlanT:
        telemetry = self._telemetry
        with maybe_span(
            telemetry, f"plan {name}", SpanKind.PLAN, mode=mode
        ) as span:
            plan = build()
            if span is not None:
                payload = getattr(plan, "steps", None)
                if payload is None:
                    payload = getattr(plan, "queries", None)
                if payload is None and isinstance(plan, tuple):
                    payload = plan
                span.set(
                    steps=len(payload) if payload is not None else 0,
                    cache="off" if self.cache is None else "miss",
                )
        return plan
