"""A thread-safe LRU cache for rewrite plans.

Plans are immutable (frozen dataclasses holding tuples), so a cached plan
can be handed to any number of concurrent retrievals without copying; the
cache itself serializes its bookkeeping behind one lock, which composes
with the engine's ``max_concurrency`` executors and with several mediators
sharing one cache (federation, multi-way joins).

Keys are built by :class:`~repro.planner.planner.QueryPlanner` from
content fingerprints — canonical query, base-set rows, planner config,
source capability token, knowledge fingerprint — so entries are
invalidated *exactly* when an input changes and never otherwise: reloading
knowledge (same content) keeps hitting, re-mining or refreshing it misses,
and two sources whose samples differ by one row can never cross-talk.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.errors import QpiadError

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded, thread-safe, least-recently-used plan store.

    Parameters
    ----------
    max_entries:
        Capacity; storing beyond it evicts the least recently used entry.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise QpiadError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def lookup(self, key: Hashable) -> Any:
        """The cached plan for *key*, or ``None`` (counted as hit/miss)."""
        with self._lock:
            try:
                plan = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return plan

    def store(self, key: Hashable, plan: Any) -> bool:
        """Insert (or refresh) *key*; returns whether an entry was evicted."""
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                return True
            return False

    def clear(self) -> None:
        """Drop every entry; counters keep accumulating."""
        with self._lock:
            self._entries.clear()

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"PlanCache({len(self)}/{self.max_entries} entries, "
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.evictions} evictions)"
        )
