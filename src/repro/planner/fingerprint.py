"""Deterministic content fingerprints for plan caching.

A cached plan is only valid while everything it was derived from is
unchanged: the user query, the base result set it was seeded with, the
planner's own configuration, the capability surface of the source that
gated it, and — most importantly — the mined knowledge.  Each of those
inputs gets a canonical string encoding here, hashed with SHA-256, so two
inputs share a fingerprint exactly when they are content-identical.

Encoding rules worth noting:

* floats are encoded via ``repr``, which round-trips binary64 exactly, so
  a knowledge base saved to JSON and loaded back fingerprints identically;
* relation rows are encoded **in order** — row order is semantic for
  planning (rewritten queries bind the determining values of the *first*
  base tuple seen per bucket-space class);
* sets, frozensets, and mappings are sorted into a canonical order so the
  fingerprint never depends on iteration order.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.relational.relation import Relation
from repro.relational.values import is_null

__all__ = [
    "knowledge_fingerprint",
    "query_fingerprint",
    "relation_fingerprint",
    "source_token",
    "stable_digest",
]


def _canonical(value: Any) -> str:
    """A canonical, collision-resistant string encoding of *value*.

    Every scalar is tagged with its type and length-prefixed where the
    payload could contain delimiter characters, so structurally different
    values can never serialize to the same string.
    """
    if value is None:
        return "~"
    if isinstance(value, bool):
        return "b1" if value else "b0"
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        return f"f{value!r}"
    if isinstance(value, str):
        return f"s{len(value)}:{value}"
    if is_null(value):
        return "N"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(item) for item in value)) + "}"
    if isinstance(value, dict):
        items = sorted(
            ((_canonical(k), _canonical(v)) for k, v in value.items()),
            key=lambda pair: pair[0],
        )
        return "(" + ",".join(f"{k}={v}" for k, v in items) + ")"
    encoded = repr(value)
    return f"r{len(encoded)}:{encoded}"


def stable_digest(payload: Any) -> str:
    """SHA-256 hex digest of *payload*'s canonical encoding."""
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def query_fingerprint(query: Any) -> str:
    """Fingerprint of a selection query's *value* (predicates + relation).

    Conjunct order is canonicalized: ``σ(a ∧ b)`` and ``σ(b ∧ a)`` are the
    same query (their ``__eq__`` agrees) and must share a cache entry.
    """
    return stable_digest(
        (
            "query",
            getattr(query, "relation", None),
            sorted(repr(conjunct) for conjunct in query.conjuncts),
        )
    )


def relation_fingerprint(relation: Relation) -> str:
    """Fingerprint of a relation's schema and rows, **in row order**.

    Delegates to the relation's memoized row-chain digest, which
    ``concat``/``concat_encoded`` extend in O(appended rows) — the reason
    an incremental knowledge refresh never re-hashes its base sample.
    """
    return relation.content_digest()


def source_token(source: Any) -> str:
    """The capability surface of *source* that plan-time gating reads.

    ``can_answer`` depends only on the source's local schema and its
    (frozen) web-form capabilities — never on mutable state like the
    remaining query budget — so this token plus the other key components
    fully determines the gated plan.
    """
    if source is None:
        return "source:none"
    schema = getattr(source, "schema", None)
    names = tuple(schema.names) if schema is not None else ()
    capabilities = getattr(source, "capabilities", None)
    if capabilities is None:
        encoded: Any = None
    else:
        queryable = capabilities.queryable_attributes
        encoded = (
            bool(capabilities.allows_null_binding),
            capabilities.max_results,
            capabilities.query_budget,
            bool(capabilities.exposes_cardinality),
            sorted(queryable) if queryable is not None else None,
        )
    return stable_digest(
        ("source", getattr(source, "name", type(source).__name__), names, encoded)
    )


def knowledge_fingerprint(knowledge: Any) -> str:
    """Content fingerprint of a mined knowledge base.

    Covers everything planning reads: the sample (schema + rows in order),
    the advertised database size, the full mining configuration, the mined
    and pruned AFDs, the AKeys, and the discretizer's bin edges.  Derived
    state (classifiers, selectivity estimates) is a pure function of these
    inputs and therefore does not need to be hashed separately.
    """
    config = knowledge.config
    discretizer = knowledge._discretizer
    bins = (
        {
            name: (list(edges), low, high)
            for name, (edges, low, high) in discretizer.to_bins().items()
        }
        if discretizer is not None
        else None
    )
    return stable_digest(
        (
            "knowledge",
            relation_fingerprint(knowledge.sample),
            knowledge.database_size,
            (
                config.tane.min_confidence,
                config.tane.max_determining_size,
                config.tane.min_support,
                tuple(config.tane.attributes) if config.tane.attributes else None,
                config.tane.expand_near_keys,
                config.pruning_delta,
                config.classifier_method,
                config.smoothing_m,
                config.discretize_bins,
                config.discretize_strategy,
            ),
            [
                (afd.determining, afd.dependent, afd.confidence, afd.support)
                for afd in knowledge.all_afds
            ],
            [
                (afd.determining, afd.dependent, afd.confidence, afd.support)
                for afd in knowledge.afds
            ],
            [
                (key.attributes, key.confidence, key.support)
                for key in knowledge.akeys
            ],
            bins,
        )
    )
