"""The unified rewrite-planning pipeline.

Everything between a user query and the :class:`~repro.engine.RetrievalPlan`
the engine executes lives here: composable rewrite generators, the shared
F-measure ranker, the :class:`QueryPlanner` facade, content fingerprints,
and the knowledge-versioned :class:`PlanCache`.  See ``docs/planner.md``.
"""

from repro.planner.cache import PlanCache
from repro.planner.fingerprint import (
    knowledge_fingerprint,
    query_fingerprint,
    relation_fingerprint,
    source_token,
    stable_digest,
)
from repro.planner.generators import (
    AfdRewriteGenerator,
    CorrelationRewriteGenerator,
    RelaxationGenerator,
    RewriteGenerator,
    attribute_influence,
)
from repro.planner.planner import (
    AggregatePlan,
    PlannerConfig,
    QueryPlanner,
    SelectionPlan,
    baseline_plan,
)
from repro.planner.ranker import (
    Ranker,
    f_measure,
    order_rewritten_queries,
    score_rewritten_queries,
)

__all__ = [
    "AfdRewriteGenerator",
    "AggregatePlan",
    "CorrelationRewriteGenerator",
    "PlanCache",
    "PlannerConfig",
    "QueryPlanner",
    "Ranker",
    "RelaxationGenerator",
    "RewriteGenerator",
    "SelectionPlan",
    "attribute_influence",
    "baseline_plan",
    "f_measure",
    "knowledge_fingerprint",
    "order_rewritten_queries",
    "query_fingerprint",
    "relation_fingerprint",
    "score_rewritten_queries",
    "source_token",
    "stable_digest",
]
