"""Exception hierarchy for the QPIAD reproduction.

All library-raised exceptions derive from :class:`QpiadError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class QpiadError(Exception):
    """Base class for every exception raised by this package."""


class SchemaError(QpiadError):
    """A schema is malformed or an attribute reference cannot be resolved."""


class QueryError(QpiadError):
    """A query is malformed or references attributes absent from a schema."""


class CapabilityError(QpiadError):
    """An autonomous source rejected a query its interface cannot express.

    This models the web-form restrictions of autonomous databases: binding
    NULL values, constraining unsupported attributes, or exceeding the
    source's query budget all surface as :class:`CapabilityError`.
    """


class QueryBudgetExceededError(CapabilityError):
    """The per-session query budget of an autonomous source was exhausted."""


class NullBindingError(CapabilityError):
    """A query attempted to bind NULL, which web forms do not support."""


class UnsupportedAttributeError(CapabilityError):
    """A query constrained an attribute missing from the source's schema."""


class SourceUnavailableError(QpiadError):
    """A source failed transiently (timeout, 5xx, connection reset).

    Unlike :class:`CapabilityError` — which means the query can *never*
    succeed — this failure is worth retrying; see
    :class:`repro.sources.retrying.RetryingSource`.
    """


class CircuitOpenError(SourceUnavailableError):
    """A circuit breaker rejected the call without contacting the source.

    Raised by :class:`repro.sources.breaker.CircuitBreakerSource` while its
    circuit is open: the source failed repeatedly and calls now fail fast
    instead of burning latency (and goodwill) on a database that is down.
    Subclasses :class:`SourceUnavailableError` because to the caller it *is*
    a transient unavailability — the source may recover once the breaker
    half-opens — so the mediator's skip-and-continue degradation applies.
    """


class AdmissionRejectedError(QpiadError):
    """The source scheduler shed this call instead of queueing it.

    Raised by :class:`repro.resilience.SourceScheduler` when a source's
    bounded wait queue is already full: admitting one more caller would
    only grow the backlog, so the scheduler fails the call immediately
    (load shedding).  Deliberately *not* a
    :class:`SourceUnavailableError` — the source itself is healthy, the
    mediator-side admission queue is the resource that ran out — so
    :class:`repro.sources.retrying.RetryingSource` does not hammer an
    overloaded scheduler with immediate retries and the circuit breaker
    does not open over local congestion.  The engine absorbs it under
    the same failure budget as transient source errors.
    """


class DeadlineExceededError(QpiadError):
    """A mediated retrieval ran past its wall-clock deadline.

    Only raised when :attr:`repro.core.qpiad.QpiadConfig.deadline_seconds`
    is set and ``tolerate_deadline_exceeded`` is off; the default is to stop
    issuing rewritten queries and return a degraded result instead.
    """


class MiningError(QpiadError):
    """Knowledge mining failed (e.g. empty sample, no usable AFD)."""


class ClassifierError(MiningError):
    """A classifier could not be trained or applied."""


class RewritingError(QpiadError):
    """Query rewriting could not produce any rewritten queries."""
