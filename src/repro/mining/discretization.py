"""Discretization of numeric attributes for dependency mining.

AFDs and Naive Bayes both operate on categorical values.  Web-database
attributes like ``price`` or ``mileage`` are continuous; the paper's queries
(``Price = 20000``) implicitly treat them as coarse buckets.  A
:class:`Discretizer` maps numeric columns to interval labels so the mining
stack sees categorical data, and exposes the inverse mapping so evidence
values can be bucketed consistently at prediction time.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.errors import MiningError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.values import NULL, is_null

__all__ = ["Discretizer", "equal_width_edges", "quantile_edges"]


def equal_width_edges(values: Sequence[float], bins: int) -> list[float]:
    """Interior edges of *bins* equal-width intervals over *values*."""
    if bins < 2:
        raise MiningError("discretization needs at least 2 bins")
    if not len(values):
        raise MiningError("cannot derive bin edges from an empty column")
    low, high = float(np.min(values)), float(np.max(values))
    if low == high:
        return []
    return [float(edge) for edge in np.linspace(low, high, bins + 1)[1:-1]]


def quantile_edges(values: Sequence[float], bins: int) -> list[float]:
    """Interior edges at the empirical quantiles of *values* (deduplicated)."""
    if bins < 2:
        raise MiningError("discretization needs at least 2 bins")
    if not len(values):
        raise MiningError("cannot derive bin edges from an empty column")
    quantiles = np.quantile(
        np.asarray(values, dtype=float),
        [i / bins for i in range(1, bins)],
        method="lower",
    )
    edges: list[float] = []
    for edge in quantiles:
        value = float(edge)
        if not edges or value > edges[-1]:
            edges.append(value)
    return edges


def _encoded_numeric_column(sample: Relation, name: str) -> "Any | None":
    """Non-NULL values of column *name* as a float64 array, if cheaply possible.

    Only uses a columnar image the relation has *already* materialized
    (never builds one just for fitting), and only when every dictionary
    entry converts to float64 exactly — those two conditions make the
    gathered array element-for-element identical to the per-row Python
    extraction, so bin edges cannot depend on which path ran.
    """
    store = getattr(sample, "_columnar", None)
    if store is None:
        return None
    column = store.column(name)
    codes = column.codes
    if codes is None:
        return None
    numeric, exact = column.dictionary_numeric()
    if not bool(exact.all()):
        return None
    return numeric[codes[codes >= 0]]


@dataclass(frozen=True)
class _ColumnBins:
    edges: tuple[float, ...]
    low: float
    high: float

    def label(self, value: float) -> int:
        """Bin index of *value* (0-based, rightmost bin catches overflow)."""
        return bisect.bisect_right(self.edges, value)

    def center(self, index: int) -> float:
        """Midpoint of bin *index*, used as the bin's representative value."""
        bounds = (self.low, *self.edges, self.high)
        index = max(0, min(index, len(bounds) - 2))
        return (bounds[index] + bounds[index + 1]) / 2.0


class Discretizer:
    """Bucket numeric attributes of a relation into interval labels.

    The discretizer is *fit* on one relation (the sample) and can then be
    applied to other relations and to scalar evidence values, guaranteeing
    the same bucketing everywhere — which is what keeps classifier evidence
    consistent between mining and query time.

    Parameters
    ----------
    sample:
        Relation whose numeric columns define the bin edges.
    bins:
        Number of buckets per numeric attribute.
    strategy:
        ``"width"`` (equal-width) or ``"quantile"``.
    attributes:
        Restrict to these numeric attributes (default: all numeric ones).
    """

    def __init__(
        self,
        sample: Relation,
        bins: int = 10,
        strategy: str = "width",
        attributes: Sequence[str] | None = None,
    ):
        if strategy not in ("width", "quantile"):
            raise MiningError(f"unknown discretization strategy {strategy!r}")
        edge_fn = equal_width_edges if strategy == "width" else quantile_edges
        if attributes is None:
            attributes = [
                attr.name
                for attr in sample.schema
                if attr.type is AttributeType.NUMERIC
            ]
        self._bins: dict[str, _ColumnBins] = {}
        for name in attributes:
            if not sample.schema.is_numeric(name):
                raise MiningError(f"attribute {name!r} is not numeric")
            values: Any = _encoded_numeric_column(sample, name)
            if values is None:
                values = [v for v in sample.column(name) if not is_null(v)]
            if not len(values):
                continue  # an all-NULL column carries no binning information
            if isinstance(values, np.ndarray):
                low, high = float(values.min()), float(values.max())
            else:
                low, high = float(min(values)), float(max(values))
            self._bins[name] = _ColumnBins(tuple(edge_fn(values, bins)), low, high)

    @classmethod
    def from_bins(
        cls, bins: "dict[str, tuple[tuple[float, ...], float, float]]"
    ) -> "Discretizer":
        """Rebuild a discretizer from stored ``(edges, low, high)`` per attribute.

        Used by knowledge-base persistence so reloaded classifiers bucket
        evidence exactly as the original mining run did.
        """
        instance = cls.__new__(cls)
        instance._bins = {
            name: _ColumnBins(tuple(edges), float(low), float(high))
            for name, (edges, low, high) in bins.items()
        }
        return instance

    def to_bins(self) -> "dict[str, tuple[tuple[float, ...], float, float]]":
        """The inverse of :meth:`from_bins`."""
        return {
            name: (column.edges, column.low, column.high)
            for name, column in self._bins.items()
        }

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(self._bins)

    def covers(self, attribute: str) -> bool:
        return attribute in self._bins

    def bucket(self, attribute: str, value: Any) -> Any:
        """The bucket label of a scalar *value* (NULL passes through).

        Already-bucketed labels (and any other strings) pass through
        unchanged, making the mapping idempotent — callers may mix raw and
        mining-space values in evidence.
        """
        if is_null(value):
            return NULL
        column = self._bins.get(attribute)
        if column is None or isinstance(value, str):
            return value
        return f"bin{column.label(value)}"

    def bin_bounds(self, attribute: str, label: Any) -> tuple[float, float]:
        """The numeric interval a bucket label covers.

        The outermost bins extend to ±∞ so values beyond the fitted sample's
        range still fall into a bin; this is what rewritten range queries
        bind.
        """
        column = self._bins.get(attribute)
        if column is None:
            raise MiningError(f"attribute {attribute!r} is not discretized")
        if not isinstance(label, str) or not label.startswith("bin"):
            raise MiningError(f"{label!r} is not a bucket label")
        index = int(label[3:])
        bounds = (float("-inf"), *column.edges, float("inf"))
        index = max(0, min(index, len(bounds) - 2))
        return bounds[index], bounds[index + 1]

    def transform(
        self, relation: Relation, exclude: "set[str] | frozenset[str]" = frozenset()
    ) -> Relation:
        """A relation with every covered numeric column bucketed.

        Bucketed attributes become categorical in the result schema.
        Attributes in *exclude* keep their raw values — classifier training
        uses this to bucket only the *feature* columns while the class
        column stays raw, so posteriors range over actual domain values.
        """
        schema = relation.schema
        new_schema = Schema(
            Attribute(attr.name, AttributeType.CATEGORICAL)
            if attr.name in self._bins and attr.name not in exclude
            else attr
            for attr in schema
        )
        covered = [
            (schema.index_of(name), self._bins[name])
            for name in self._bins
            if name in schema and name not in exclude
        ]
        rows = []
        for row in relation:
            values = list(row)
            for index, column in covered:
                value = values[index]
                # Inlined `bucket` with the column pre-resolved: NULLs and
                # already-bucketed labels pass through, numbers get binned.
                if not (is_null(value) or isinstance(value, str)):
                    values[index] = f"bin{column.label(value)}"
            rows.append(tuple(values))
        # Rows come out of an existing relation, so they are already coerced.
        return Relation.from_coerced(new_schema, rows)

    def transform_evidence(self, evidence: dict[str, Any]) -> dict[str, Any]:
        """Bucket the numeric entries of an evidence mapping."""
        return {name: self.bucket(name, value) for name, value in evidence.items()}

    def representative(self, attribute: str, label: Any) -> Any:
        """A representative raw value for a bucket label (the bin midpoint).

        Non-bucket labels (including values of uncovered attributes) pass
        through unchanged, so callers can apply this uniformly to predicted
        completions.
        """
        column = self._bins.get(attribute)
        if column is None or not isinstance(label, str) or not label.startswith("bin"):
            return label
        try:
            index = int(label[3:])
        except ValueError:
            return label
        return column.center(index)
