"""Levelwise (TANE-style) discovery of AFDs and AKeys from a sample.

Section 5.1 of the paper uses the TANE algorithm (Huhtala et al., ICDE'98)
to discover all approximate dependencies and approximate keys whose
confidence exceeds a threshold β.  This module implements the levelwise
lattice search with the two classic prunings adapted to the approximate
setting:

* **minimality** — once ``X ⇝ A`` meets the confidence threshold, supersets
  of ``X`` are not expanded for ``A`` (their confidence is at least as high
  but they make worse rewriting features: more constrained attributes, fewer
  matching tuples);
* **key pruning** — supersets of a discovered (approximate) key are keys too
  and are recorded without re-expansion.

Confidence is ``1 − g3`` computed on equivalence-class partitions
(:mod:`repro.mining.partitions`); rows NULL on the participating attributes
are excluded, which is essential because QPIAD mines from incomplete samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.errors import MiningError
from repro.mining.afd import Afd, AKey
from repro.mining.partitions import (
    Partition,
    class_counts,
    code_histogram_items,
    g3_stats,
    partition_by,
    partition_from_codes,
)
from repro.relational.columnar import use_columnar
from repro.relational.relation import Relation

#: Row labels as mined: raw column values, or dictionary codes (columnar).
Labels = Sequence[object] | NDArray[np.int64]

__all__ = [
    "TaneConfig",
    "TaneResult",
    "MiningState",
    "IncrementalMiningUnavailable",
    "mine_dependencies",
    "mine_dependencies_incremental",
]


class IncrementalMiningUnavailable(MiningError):
    """Incremental mining cannot run on this relation (e.g. opaque columns).

    Raised instead of silently degrading so callers can fall back to a full
    re-mine — which is always available and produces the same result.
    """


@dataclass(frozen=True)
class TaneConfig:
    """Tuning knobs of the dependency miner.

    Parameters
    ----------
    min_confidence:
        The β threshold of the paper: keep AFDs/AKeys with confidence ≥ β.
        The default 0.6 admits the moderately-approximate dependencies the
        paper's own examples rely on (e.g. ``{Make, Body Style} ⇝ Model``);
        the Best-AFD selection step still prefers the strongest one per
        attribute.
    max_determining_size:
        Maximum size of the determining set / key (lattice depth).  The
        paper's experiments use small determining sets; 3 is a practical
        default for web-database schemas.
    min_support:
        Minimum number of non-NULL rows a dependency must be measured over;
        guards against "dependencies" observed on a handful of rows in a
        sparse sample.
    attributes:
        Restrict mining to these attributes (default: all).
    expand_near_keys:
        By default a candidate set that turns out to be an (approximate)
        key is recorded and *not* used as a determining set — near-keys
        determine everything trivially and generalize to nothing.  Setting
        this flag mints those AFDs anyway; it exists so the AKey-pruning
        ablation can measure what the defense buys.
    """

    min_confidence: float = 0.6
    max_determining_size: int = 3
    min_support: int = 10
    attributes: tuple[str, ...] | None = None
    expand_near_keys: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.min_confidence <= 1.0:
            raise MiningError(f"min_confidence must be in (0, 1], got {self.min_confidence}")
        if self.max_determining_size < 1:
            raise MiningError("max_determining_size must be at least 1")


@dataclass
class TaneResult:
    """Everything the miner found."""

    afds: list[Afd] = field(default_factory=list)
    akeys: list[AKey] = field(default_factory=list)

    def afds_for(self, dependent: str) -> list[Afd]:
        """AFDs with *dependent* on the right-hand side, best first."""
        matches = [afd for afd in self.afds if afd.dependent == dependent]
        return sorted(matches, key=lambda afd: (-afd.confidence, len(afd.determining)))

    def best_afd(self, dependent: str) -> Afd | None:
        """The highest-confidence AFD for *dependent* (ties: smallest set)."""
        candidates = self.afds_for(dependent)
        return candidates[0] if candidates else None


def mine_dependencies(sample: Relation, config: TaneConfig | None = None) -> TaneResult:
    """Run the levelwise search over *sample* and return AFDs and AKeys.

    The search walks attribute-set levels 1..max_determining_size.  At each
    level it measures every candidate set ``X`` once as a key and once per
    dependent attribute ``A ∉ X`` (sharing ``Π_X`` across all dependents).
    """
    config = config or TaneConfig()
    names = _validated_names(sample, config)
    labels = _mining_labels(sample, names)
    return _walk(names, config, _KernelMeasurer(sample, labels))


def mine_dependencies_incremental(
    sample: Relation, config: TaneConfig | None, state: "MiningState"
) -> TaneResult:
    """Levelwise search over *sample* backed by folded sufficient statistics.

    *sample* must extend the relation *state* last saw by appended rows
    only; the new rows are folded into the tracked combination counts and
    root partitions first, then the same lattice walk as
    :func:`mine_dependencies` runs against the updated statistics.  Because
    every measurement is an exact integer statistic feeding the same float
    divisions as the partition kernels, the result — and therefore the
    knowledge fingerprint derived from it — is bit-identical to a full
    re-mine of *sample*.  Pruning decisions are re-derived on every walk
    (confidences can move in both directions as batches fold in), so no
    stale minimality or key-pruning state can leak across refreshes.

    Raises :class:`IncrementalMiningUnavailable` when the relation cannot
    be mined through dictionary codes (opaque columns or the row plane);
    callers should fall back to :func:`mine_dependencies`.
    """
    config = config or TaneConfig()
    names = _validated_names(sample, config)
    if state.names != tuple(names):
        raise MiningError(
            "mining state tracks attributes "
            f"{state.names!r}, not {tuple(names)!r}"
        )
    labels = _mining_labels(sample, names)
    arrays: dict[str, NDArray[np.int64]] = {}
    for name in names:
        column_labels = labels[name]
        if not isinstance(column_labels, np.ndarray):
            raise IncrementalMiningUnavailable(
                f"attribute {name!r} has no dictionary codes; incremental "
                "mining requires the columnar plane"
            )
        arrays[name] = column_labels
    state.fold(arrays, len(sample))
    measurer = _StateMeasurer(sample, state, arrays)
    result = _walk(names, config, measurer)
    measurer.save_roots()
    return result


def _validated_names(sample: Relation, config: TaneConfig) -> list[str]:
    names = list(config.attributes or sample.schema.names)
    if len(names) < 2:
        raise MiningError("dependency mining needs at least two attributes")
    for name in names:
        sample.schema.index_of(name)  # validate early
    return names


def _walk(
    names: list[str],
    config: TaneConfig,
    measurer: "_KernelMeasurer | _StateMeasurer",
) -> TaneResult:
    """The shared lattice walk, parameterized over how candidates are measured.

    Both measurers return exact integer statistics — ``(covered, classes)``
    for a key candidate and ``(support, kept)`` for an AFD candidate — and
    the walk owns the float arithmetic, so the one-shot and incremental
    paths cannot diverge in what they admit, prune, or score.
    """
    result = TaneResult()
    # Determining sets already satisfied per dependent: stop expanding them.
    satisfied: dict[str, list[frozenset[str]]] = {name: [] for name in names}
    discovered_keys: list[frozenset[str]] = []

    level: list[tuple[str, ...]] = [(name,) for name in sorted(names)]

    for depth in range(1, config.max_determining_size + 1):
        next_level: list[tuple[str, ...]] = []
        for candidate in level:
            candidate_set = frozenset(candidate)
            # Skip candidates that extend an already-found key: supersets of
            # keys are keys and make useless determining sets.
            if not config.expand_near_keys and any(
                key < candidate_set for key in discovered_keys
            ):
                continue
            covered, class_count = measurer.key_stats(candidate)
            if covered < config.min_support:
                continue

            key_error = (covered - class_count) / covered if covered else 0.0
            key_conf = 1.0 - key_error
            if key_conf >= config.min_confidence:
                result.akeys.append(
                    AKey(candidate, confidence=key_conf, support=covered)
                )
                discovered_keys.append(candidate_set)
                if not config.expand_near_keys:
                    # A (near-)key determines everything trivially; expanding
                    # it as a determining set would only mint useless AFDs.
                    continue

            expanded = False
            for dependent in names:
                if dependent in candidate_set:
                    continue
                if any(prior <= candidate_set for prior in satisfied[dependent]):
                    continue  # a subset already determines this attribute
                support, kept = measurer.afd_stats(candidate, dependent)
                error = (support - kept) / support if support else 0.0
                confidence = 1.0 - error
                if support < config.min_support:
                    continue
                if confidence >= config.min_confidence:
                    result.afds.append(
                        Afd(candidate, dependent, confidence=confidence, support=support)
                    )
                    satisfied[dependent].append(candidate_set)
                else:
                    expanded = True
            if expanded and depth < config.max_determining_size:
                next_level.append(candidate)

        if depth >= config.max_determining_size:
            break
        level = _generate_next_level(next_level)

    result.afds.sort(key=lambda afd: (afd.dependent, -afd.confidence, len(afd.determining)))
    result.akeys.sort(key=lambda key: (-key.confidence, key.attributes))
    return result


class _KernelMeasurer:
    """Measure candidates directly from partitions (the one-shot path)."""

    def __init__(self, sample: Relation, labels: dict[str, Labels]):
        self._sample = sample
        self._labels = labels
        self._partitions: dict[tuple[str, ...], Partition] = {}

    def key_stats(self, candidate: tuple[str, ...]) -> tuple[int, int]:
        partition = _partition_for(
            self._sample, candidate, self._partitions, self._labels
        )
        return partition.covered, len(partition)

    def afd_stats(self, candidate: tuple[str, ...], dependent: str) -> tuple[int, int]:
        partition = self._partitions[candidate]
        return g3_stats(partition, self._labels[dependent])


class _SetStats:
    """Histogram of one tracked attribute set, plus walk-ready aggregates.

    ``support`` is the running sum of all combination counts, and ``kept``
    the running sum of per-prefix maxima — the ``g3`` "kept rows" numerator
    when the set is read as a joint ``X + (A,)``.  Both are maintained
    incrementally as batches fold in (counts only ever grow, so a prefix
    maximum moves monotonically and the delta is exact), which makes every
    candidate measurement during a lattice walk O(1) dictionary reads
    instead of a full histogram scan.
    """

    __slots__ = ("counts", "support", "kept", "_best")

    def __init__(self) -> None:
        self.counts: dict[tuple[int, ...], int] = {}
        self.support = 0
        self.kept = 0
        self._best: dict[tuple[int, ...], int] = {}

    def add(self, fresh: "Iterable[tuple[tuple[int, ...], int]]") -> None:
        """Fold batch histogram pairs in, keeping every aggregate consistent."""
        counts = self.counts
        best = self._best
        for combo, count in fresh:
            new = counts.get(combo, 0) + count
            counts[combo] = new
            self.support += count
            prefix = combo[:-1]
            old = best.get(prefix, 0)
            if new > old:
                self.kept += new - old
                best[prefix] = new


class MiningState:
    """Sufficient statistics carried between incremental mining walks.

    The state tracks, over all rows folded so far:

    * ``_sets`` — for every attribute tuple the walk has ever measured
      (candidate sets ``X`` and joints ``X + (A,)``), a :class:`_SetStats`:
      the histogram of value-code combinations to their row counts, plus
      incrementally maintained aggregates.  Key statistics are
      ``(support, len(counts))``; ``g3`` statistics are ``(support, kept)``.
    * ``roots`` — level-1 partitions over the full folded relation,
      advanced batch-by-batch via :meth:`Partition.extend`; they seed the
      prefix-refinement cache when the walk reaches a candidate it has not
      measured before (pruning frontiers shift as confidences move).

    Folding a batch touches only the batch rows (argsort kernels over the
    batch slice), never the historical rows — that is the whole point.
    Correctness rests on dictionary codes being minted first-seen: growing
    a relation never re-codes its existing prefix, so histograms keyed by
    code tuples stay valid across folds.
    """

    __slots__ = ("names", "rows", "roots", "_sets")

    def __init__(self, names: Sequence[str]):
        self.names = tuple(names)
        self.rows = 0
        self.roots: dict[str, Partition] = {}
        self._sets: dict[tuple[str, ...], _SetStats] = {}

    def fold(self, labels: "dict[str, NDArray[np.int64]]", total_rows: int) -> None:
        """Fold rows ``self.rows..total_rows`` into every tracked statistic."""
        start = self.rows
        if total_rows < start:
            raise MiningError(
                f"mining state has folded {start} rows but the relation has "
                f"only {total_rows}; state can only move forward"
            )
        if total_rows == start:
            return
        batch = {name: labels[name][start:] for name in self.names}
        for key, stats in self._sets.items():
            stats.add(code_histogram_items([batch[name] for name in key]))
        for name, root in self.roots.items():
            self.roots[name] = root.extend([labels[name]], start)
        self.rows = total_rows


class _StateMeasurer:
    """Measure candidates from a :class:`MiningState`'s folded statistics.

    Histogram hits are pure dict arithmetic; misses (candidates this state
    never measured) are computed once from the full code arrays with the
    same partition kernels the one-shot path uses, then tracked so future
    folds keep them current.
    """

    def __init__(
        self,
        sample: Relation,
        state: MiningState,
        labels: "dict[str, NDArray[np.int64]]",
    ):
        self._sample = sample
        self._state = state
        self._labels: dict[str, Labels] = dict(labels)
        self._partitions: dict[tuple[str, ...], Partition] = {
            (name,): root for name, root in state.roots.items()
        }

    def key_stats(self, candidate: tuple[str, ...]) -> tuple[int, int]:
        stats = self._stats(candidate)
        return stats.support, len(stats.counts)

    def afd_stats(self, candidate: tuple[str, ...], dependent: str) -> tuple[int, int]:
        stats = self._stats(candidate + (dependent,))
        return stats.support, stats.kept

    def _stats(self, key: tuple[str, ...]) -> _SetStats:
        stats = self._state._sets.get(key)
        if stats is None:
            partition = _partition_for(
                self._sample, key, self._partitions, self._labels
            )
            columns = [self._labels[name] for name in key]
            stats = _SetStats()
            stats.add(class_counts(partition, columns).items())  # type: ignore[arg-type]
            self._state._sets[key] = stats
        return stats

    def save_roots(self) -> None:
        """Keep any level-1 partitions computed this walk for future folds."""
        for name in self._state.names:
            partition = self._partitions.get((name,))
            if partition is not None:
                self._state.roots[name] = partition


def _mining_labels(sample: Relation, names: Sequence[str]) -> dict[str, Labels]:
    """Per-attribute row labels to mine over.

    On the columnar plane these are dictionary-code arrays (``-1`` = NULL),
    which route partitioning and ``g3`` through the sort-based numpy kernels;
    grouping by codes and grouping by the decoded values produce identical
    classes because codes are assigned with the same ``dict`` equality.  If
    any attribute is opaque (unhashable cells) — or the row plane is active —
    every attribute falls back to raw value tuples together, so all labels
    stay mutually consistent.
    """
    if use_columnar():
        store = sample.columnar()
        columns = [store.column(name) for name in names]
        if all(column.is_encoded for column in columns):
            return {
                name: column.codes
                for name, column in zip(names, columns)
                if column.codes is not None
            }
    return {name: sample.column(name) for name in names}


def _partition_for(
    sample: Relation,
    attributes: tuple[str, ...],
    cache: dict[tuple[str, ...], Partition],
    labels: dict[str, Labels],
) -> Partition:
    """Compute (or fetch) ``Π_X``, refining a cached prefix when possible."""
    if attributes in cache:
        return cache[attributes]
    if len(attributes) > 1:
        prefix = attributes[:-1]
        if prefix in cache:
            partition = cache[prefix].refine(labels[attributes[-1]])
            cache[attributes] = partition
            return partition
    first = labels[attributes[0]]
    if isinstance(first, np.ndarray):
        partition = partition_from_codes(
            [labels[name] for name in attributes]  # type: ignore[misc]
        )
    else:
        partition = partition_by(sample, attributes)
    cache[attributes] = partition
    return partition


def _generate_next_level(level: list[tuple[str, ...]]) -> list[tuple[str, ...]]:
    """Candidate generation à la Apriori: join sets sharing a prefix."""
    next_level: list[tuple[str, ...]] = []
    seen: set[tuple[str, ...]] = set()
    current = {candidate for candidate in level}
    ordered = sorted(current)
    for first, second in combinations(ordered, 2):
        if first[:-1] != second[:-1]:
            continue
        merged = tuple(sorted(set(first) | set(second)))
        if merged in seen:
            continue
        # All (k-1)-subsets must have been expandable; approximate check:
        # require every subset obtained by dropping one element to be present.
        subsets_ok = all(
            tuple(sorted(set(merged) - {attr})) in current for attr in merged
        )
        if subsets_ok:
            seen.add(merged)
            next_level.append(merged)
    return next_level
