"""Levelwise (TANE-style) discovery of AFDs and AKeys from a sample.

Section 5.1 of the paper uses the TANE algorithm (Huhtala et al., ICDE'98)
to discover all approximate dependencies and approximate keys whose
confidence exceeds a threshold β.  This module implements the levelwise
lattice search with the two classic prunings adapted to the approximate
setting:

* **minimality** — once ``X ⇝ A`` meets the confidence threshold, supersets
  of ``X`` are not expanded for ``A`` (their confidence is at least as high
  but they make worse rewriting features: more constrained attributes, fewer
  matching tuples);
* **key pruning** — supersets of a discovered (approximate) key are keys too
  and are recorded without re-expansion.

Confidence is ``1 − g3`` computed on equivalence-class partitions
(:mod:`repro.mining.partitions`); rows NULL on the participating attributes
are excluded, which is essential because QPIAD mines from incomplete samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.errors import MiningError
from repro.mining.afd import Afd, AKey
from repro.mining.partitions import (
    Partition,
    g3_error,
    key_error,
    partition_by,
    partition_from_codes,
)
from repro.relational.columnar import use_columnar
from repro.relational.relation import Relation

#: Row labels as mined: raw column values, or dictionary codes (columnar).
Labels = Sequence[object] | NDArray[np.int64]

__all__ = ["TaneConfig", "TaneResult", "mine_dependencies"]


@dataclass(frozen=True)
class TaneConfig:
    """Tuning knobs of the dependency miner.

    Parameters
    ----------
    min_confidence:
        The β threshold of the paper: keep AFDs/AKeys with confidence ≥ β.
        The default 0.6 admits the moderately-approximate dependencies the
        paper's own examples rely on (e.g. ``{Make, Body Style} ⇝ Model``);
        the Best-AFD selection step still prefers the strongest one per
        attribute.
    max_determining_size:
        Maximum size of the determining set / key (lattice depth).  The
        paper's experiments use small determining sets; 3 is a practical
        default for web-database schemas.
    min_support:
        Minimum number of non-NULL rows a dependency must be measured over;
        guards against "dependencies" observed on a handful of rows in a
        sparse sample.
    attributes:
        Restrict mining to these attributes (default: all).
    expand_near_keys:
        By default a candidate set that turns out to be an (approximate)
        key is recorded and *not* used as a determining set — near-keys
        determine everything trivially and generalize to nothing.  Setting
        this flag mints those AFDs anyway; it exists so the AKey-pruning
        ablation can measure what the defense buys.
    """

    min_confidence: float = 0.6
    max_determining_size: int = 3
    min_support: int = 10
    attributes: tuple[str, ...] | None = None
    expand_near_keys: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.min_confidence <= 1.0:
            raise MiningError(f"min_confidence must be in (0, 1], got {self.min_confidence}")
        if self.max_determining_size < 1:
            raise MiningError("max_determining_size must be at least 1")


@dataclass
class TaneResult:
    """Everything the miner found."""

    afds: list[Afd] = field(default_factory=list)
    akeys: list[AKey] = field(default_factory=list)

    def afds_for(self, dependent: str) -> list[Afd]:
        """AFDs with *dependent* on the right-hand side, best first."""
        matches = [afd for afd in self.afds if afd.dependent == dependent]
        return sorted(matches, key=lambda afd: (-afd.confidence, len(afd.determining)))

    def best_afd(self, dependent: str) -> Afd | None:
        """The highest-confidence AFD for *dependent* (ties: smallest set)."""
        candidates = self.afds_for(dependent)
        return candidates[0] if candidates else None


def mine_dependencies(sample: Relation, config: TaneConfig | None = None) -> TaneResult:
    """Run the levelwise search over *sample* and return AFDs and AKeys.

    The search walks attribute-set levels 1..max_determining_size.  At each
    level it measures every candidate set ``X`` once as a key and once per
    dependent attribute ``A ∉ X`` (sharing ``Π_X`` across all dependents).
    """
    config = config or TaneConfig()
    names = list(config.attributes or sample.schema.names)
    if len(names) < 2:
        raise MiningError("dependency mining needs at least two attributes")
    for name in names:
        sample.schema.index_of(name)  # validate early

    labels = _mining_labels(sample, names)
    result = TaneResult()
    # Determining sets already satisfied per dependent: stop expanding them.
    satisfied: dict[str, list[frozenset[str]]] = {name: [] for name in names}
    discovered_keys: list[frozenset[str]] = []

    level: list[tuple[str, ...]] = [(name,) for name in sorted(names)]
    partitions: dict[tuple[str, ...], Partition] = {}

    for depth in range(1, config.max_determining_size + 1):
        next_level: list[tuple[str, ...]] = []
        for candidate in level:
            candidate_set = frozenset(candidate)
            # Skip candidates that extend an already-found key: supersets of
            # keys are keys and make useless determining sets.
            if not config.expand_near_keys and any(
                key < candidate_set for key in discovered_keys
            ):
                continue
            partition = _partition_for(sample, candidate, partitions, labels)
            if partition.covered < config.min_support:
                continue

            key_conf = 1.0 - key_error(partition)
            if key_conf >= config.min_confidence:
                result.akeys.append(
                    AKey(candidate, confidence=key_conf, support=partition.covered)
                )
                discovered_keys.append(candidate_set)
                if not config.expand_near_keys:
                    # A (near-)key determines everything trivially; expanding
                    # it as a determining set would only mint useless AFDs.
                    continue

            expanded = False
            for dependent in names:
                if dependent in candidate_set:
                    continue
                if any(prior <= candidate_set for prior in satisfied[dependent]):
                    continue  # a subset already determines this attribute
                error = g3_error(partition, labels[dependent])
                confidence = 1.0 - error
                support = _joint_support(partition, labels[dependent])
                if support < config.min_support:
                    continue
                if confidence >= config.min_confidence:
                    result.afds.append(
                        Afd(candidate, dependent, confidence=confidence, support=support)
                    )
                    satisfied[dependent].append(candidate_set)
                else:
                    expanded = True
            if expanded and depth < config.max_determining_size:
                next_level.append(candidate)

        if depth >= config.max_determining_size:
            break
        level = _generate_next_level(next_level)

    result.afds.sort(key=lambda afd: (afd.dependent, -afd.confidence, len(afd.determining)))
    result.akeys.sort(key=lambda key: (-key.confidence, key.attributes))
    return result


def _mining_labels(sample: Relation, names: Sequence[str]) -> dict[str, Labels]:
    """Per-attribute row labels to mine over.

    On the columnar plane these are dictionary-code arrays (``-1`` = NULL),
    which route partitioning and ``g3`` through the sort-based numpy kernels;
    grouping by codes and grouping by the decoded values produce identical
    classes because codes are assigned with the same ``dict`` equality.  If
    any attribute is opaque (unhashable cells) — or the row plane is active —
    every attribute falls back to raw value tuples together, so all labels
    stay mutually consistent.
    """
    if use_columnar():
        store = sample.columnar()
        columns = [store.column(name) for name in names]
        if all(column.is_encoded for column in columns):
            return {
                name: column.codes
                for name, column in zip(names, columns)
                if column.codes is not None
            }
    return {name: sample.column(name) for name in names}


def _partition_for(
    sample: Relation,
    attributes: tuple[str, ...],
    cache: dict[tuple[str, ...], Partition],
    labels: dict[str, Labels],
) -> Partition:
    """Compute (or fetch) ``Π_X``, refining a cached prefix when possible."""
    if attributes in cache:
        return cache[attributes]
    if len(attributes) > 1:
        prefix = attributes[:-1]
        if prefix in cache:
            partition = cache[prefix].refine(labels[attributes[-1]])
            cache[attributes] = partition
            return partition
    first = labels[attributes[0]]
    if isinstance(first, np.ndarray):
        partition = partition_from_codes(
            [labels[name] for name in attributes]  # type: ignore[misc]
        )
    else:
        partition = partition_by(sample, attributes)
    cache[attributes] = partition
    return partition


def _joint_support(partition: Partition, dependent_labels: Labels) -> int:
    """Rows covered by ``Π_X`` that are also non-NULL on the dependent."""
    if isinstance(dependent_labels, np.ndarray):
        return partition.covered_with(dependent_labels)
    from repro.relational.values import is_null

    # Row-plane fallback; the columnar plane takes the covered_with mask
    # sum above.
    support = 0
    # qpiadlint: disable-next-line=row-loop-in-mining
    for cls in partition.classes:
        support += sum(1 for index in cls if not is_null(dependent_labels[index]))
    return support


def _generate_next_level(level: list[tuple[str, ...]]) -> list[tuple[str, ...]]:
    """Candidate generation à la Apriori: join sets sharing a prefix."""
    next_level: list[tuple[str, ...]] = []
    seen: set[tuple[str, ...]] = set()
    current = {candidate for candidate in level}
    ordered = sorted(current)
    for first, second in combinations(ordered, 2):
        if first[:-1] != second[:-1]:
            continue
        merged = tuple(sorted(set(first) | set(second)))
        if merged in seen:
            continue
        # All (k-1)-subsets must have been expandable; approximate check:
        # require every subset obtained by dropping one element to be present.
        subsets_ok = all(
            tuple(sorted(set(merged) - {attr})) in current for attr in merged
        )
        if subsets_ok:
            seen.add(merged)
            next_level.append(merged)
    return next_level
