"""Query selectivity estimation from the offline sample (Section 5.4).

The F-measure ordering of rewritten queries needs an estimate of how many
*relevant possible* tuples each rewritten query would retrieve from the full
autonomous database.  The paper estimates

    EstSel(Q) = SmplSel(Q) · SmplRatio(R) · PerInc(R)

where ``SmplSel(Q)`` is the number of sample tuples matching Q,
``SmplRatio(R)`` is the database-to-sample size ratio (estimated off-line by
issuing probe queries to both, or read off the source's advertised
cardinality), and ``PerInc(R)`` is the fraction of incomplete tuples
observed while building the sample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MiningError
from repro.query.executor import certain_count
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation

__all__ = ["SelectivityEstimator"]


@dataclass
class SelectivityEstimator:
    """Estimates absolute result sizes of queries against the full database.

    Parameters
    ----------
    sample:
        The probed sample the estimate is computed over.
    sample_ratio:
        ``SmplRatio(R)``: database size / sample size.
    incomplete_fraction:
        ``PerInc(R)``: fraction of database tuples with at least one NULL,
        estimated from the sample.
    """

    sample: Relation
    sample_ratio: float
    incomplete_fraction: float

    def __post_init__(self) -> None:
        if self.sample_ratio <= 0:
            raise MiningError(f"sample_ratio must be positive, got {self.sample_ratio}")
        if not 0.0 <= self.incomplete_fraction <= 1.0:
            raise MiningError(
                f"incomplete_fraction must be in [0, 1], got {self.incomplete_fraction}"
            )

    @classmethod
    def from_sample(cls, sample: Relation, database_size: int) -> "SelectivityEstimator":
        """Build an estimator from a sample and the (advertised) database size."""
        if not len(sample):
            raise MiningError("cannot estimate selectivity from an empty sample")
        incomplete = sample.incomplete_count()
        estimator = cls(
            sample=sample,
            sample_ratio=database_size / len(sample),
            incomplete_fraction=incomplete / len(sample),
        )
        # Keep the integer numerator from the scan just done, so a later
        # fold (:meth:`extended`) never rescans the old sample.
        estimator.__dict__["_incomplete_cache"] = incomplete
        return estimator

    @property
    def _incomplete_rows(self) -> int:
        """Incomplete-row count of the sample (the PerInc numerator), memoized."""
        cached = self.__dict__.get("_incomplete_cache")
        if cached is None:
            cached = self.sample.incomplete_count()
            self.__dict__["_incomplete_cache"] = cached
        return int(cached)

    def extended(
        self,
        batch: Relation,
        database_size: int,
        union: "Relation | None" = None,
    ) -> "SelectivityEstimator":
        """Fold *batch* into the estimate without rescanning the old sample.

        Exact, not approximate: the incomplete-row count is additive, so
        the folded estimator equals ``from_sample(sample ⊕ batch, size)``
        bit for bit (same integer numerators, same divisions).  *union* may
        pass in an already-concatenated sample relation (refresh builds one
        anyway) to avoid concatenating twice.
        """
        if union is None:
            union = self.sample.concat(batch)
        # Batch-only scan: folding touches the new rows, never the old sample.
        incomplete = self._incomplete_rows + batch.incomplete_count()
        folded = SelectivityEstimator(
            sample=union,
            sample_ratio=database_size / len(union),
            incomplete_fraction=incomplete / len(union),
        )
        folded.__dict__["_incomplete_cache"] = incomplete
        return folded

    def sample_selectivity(self, query: SelectionQuery) -> int:
        """``SmplSel(Q)``: how many sample tuples certainly match *query*."""
        return certain_count(query, self.sample)

    def estimated_cardinality(self, query: SelectionQuery) -> float:
        """Expected number of tuples *query* retrieves from the database."""
        return self.sample_selectivity(query) * self.sample_ratio

    def estimate(self, query: SelectionQuery) -> float:
        """``EstSel(Q)``: expected number of *incomplete* tuples retrieved.

        This is the quantity the rewritten-query ordering consumes — the
        rewritten query's useful output is the tuples whose constrained
        attribute is missing (everything else is post-filtered).
        """
        return self.estimated_cardinality(query) * self.incomplete_fraction
