"""Knowledge mining: AFDs (TANE), Naive Bayes value distributions, selectivity."""

from repro.mining.afd import Afd, AKey
from repro.mining.classifiers import (
    CLASSIFIER_METHODS,
    AllAttributesClassifier,
    BestAfdClassifier,
    EnsembleAfdClassifier,
    HybridOneAfdClassifier,
    ValueDistributionClassifier,
    build_classifier,
)
from repro.mining.association import (
    AssociationRule,
    AssociationRuleClassifier,
    mine_association_rules,
)
from repro.mining.bayesnet import TreeAugmentedNaiveBayes
from repro.mining.imputation import ImputationReport, ImputedCell, impute
from repro.mining.drift import AfdDrift, DistributionDrift, DriftReport, detect_drift
from repro.mining.discretization import Discretizer, equal_width_edges, quantile_edges
from repro.mining.knowledge import KnowledgeBase, KnowledgeLineage, MiningConfig
from repro.mining.nbc import NaiveBayesClassifier
from repro.mining.persistence import load_knowledge, save_knowledge
from repro.mining.partitions import (
    Partition,
    class_counts,
    g3_error,
    g3_stats,
    key_error,
    partition_by,
)
from repro.mining.pruning import DEFAULT_DELTA, is_noisy, prune_noisy_afds
from repro.mining.refresh import KnowledgeRefresher, RefreshResult
from repro.mining.selectivity import SelectivityEstimator
from repro.mining.store import KnowledgeStore, as_store, resolve_knowledge
from repro.mining.tane import (
    IncrementalMiningUnavailable,
    MiningState,
    TaneConfig,
    TaneResult,
    mine_dependencies,
    mine_dependencies_incremental,
)

__all__ = [
    "Afd",
    "AKey",
    "Partition",
    "partition_by",
    "g3_error",
    "g3_stats",
    "class_counts",
    "key_error",
    "TaneConfig",
    "TaneResult",
    "MiningState",
    "IncrementalMiningUnavailable",
    "mine_dependencies",
    "mine_dependencies_incremental",
    "DEFAULT_DELTA",
    "is_noisy",
    "prune_noisy_afds",
    "NaiveBayesClassifier",
    "ValueDistributionClassifier",
    "BestAfdClassifier",
    "HybridOneAfdClassifier",
    "EnsembleAfdClassifier",
    "AllAttributesClassifier",
    "build_classifier",
    "CLASSIFIER_METHODS",
    "SelectivityEstimator",
    "Discretizer",
    "equal_width_edges",
    "quantile_edges",
    "KnowledgeBase",
    "KnowledgeLineage",
    "MiningConfig",
    "KnowledgeStore",
    "as_store",
    "resolve_knowledge",
    "KnowledgeRefresher",
    "RefreshResult",
    "save_knowledge",
    "load_knowledge",
    "AssociationRule",
    "AssociationRuleClassifier",
    "mine_association_rules",
    "TreeAugmentedNaiveBayes",
    "impute",
    "ImputationReport",
    "ImputedCell",
    "detect_drift",
    "DriftReport",
    "AfdDrift",
    "DistributionDrift",
]
