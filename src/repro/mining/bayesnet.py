"""Tree-augmented Naive Bayes — the paper's Bayesian-network comparator.

Section 6.5 compares AFD-enhanced NBC against "learning Bayesian networks
from the data" (via WEKA) and finds the AFD-enhanced classifiers
"significantly cheaper to learn ... their accuracy was competitive".  This
module provides a faithful stand-in for that comparator: the classic
tree-augmented Naive Bayes (TAN) of Friedman, Geiger & Goldszmidt:

1. compute conditional mutual information ``I(Xᵢ; Xⱼ | C)`` for every
   feature pair,
2. build a maximum-weight spanning tree over the features (Chow–Liu),
3. direct it from an arbitrary root so each feature gets at most one
   feature parent, and
4. classify with ``P(c) · Π P(xᵢ | c, parent(xᵢ))`` under m-estimate
   smoothing.

TAN subsumes Naive Bayes (an empty tree) and is the standard "one step up"
Bayesian network; learning it is O(n·d²) counting plus O(d² log d) tree
construction — measurably costlier than NBC, which is the paper's point.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Mapping, Sequence

from repro.errors import ClassifierError
from repro.mining.classifiers import ValueDistributionClassifier
from repro.relational.relation import Relation
from repro.relational.values import is_null

__all__ = ["TreeAugmentedNaiveBayes"]


class TreeAugmentedNaiveBayes(ValueDistributionClassifier):
    """A TAN classifier for one class attribute over categorical features.

    Parameters mirror :class:`~repro.mining.nbc.NaiveBayesClassifier`;
    features default to every other attribute.
    """

    def __init__(
        self,
        sample: Relation,
        attribute: str,
        features: Sequence[str] | None = None,
        m: float = 1.0,
    ):
        super().__init__(attribute)
        if features is None:
            features = [name for name in sample.schema.names if name != attribute]
        if attribute in features:
            raise ClassifierError(f"{attribute!r} cannot be its own feature")
        if not features:
            raise ClassifierError("TAN requires at least one feature")
        if m < 0:
            raise ClassifierError(f"smoothing weight m must be non-negative, got {m}")
        self._features = tuple(features)
        self.m = m

        schema = sample.schema
        class_index = schema.index_of(attribute)
        feature_indices = {name: schema.index_of(name) for name in features}

        rows = [row for row in sample if not is_null(row[class_index])]
        if not rows:
            raise ClassifierError(f"no training rows with a value for {attribute!r}")

        self._class_counts: Counter = Counter(row[class_index] for row in rows)
        self._total = sum(self._class_counts.values())

        # Sufficient statistics: per-feature marginals and pairwise joints,
        # all conditioned on the class.
        self._single: dict[str, dict[Any, Counter]] = {f: {} for f in features}
        pair_counts: dict[tuple[str, str], dict[Any, Counter]] = {}
        domains: dict[str, set] = {f: set() for f in features}
        ordered_pairs = [
            (a, b) for i, a in enumerate(features) for b in features[i + 1 :]
        ]
        for pair in ordered_pairs:
            pair_counts[pair] = {}
        for row in rows:
            c = row[class_index]
            present = {}
            for name in features:
                value = row[feature_indices[name]]
                if is_null(value):
                    continue
                present[name] = value
                domains[name].add(value)
                self._single[name].setdefault(c, Counter())[value] += 1
            for a, b in ordered_pairs:
                if a in present and b in present:
                    pair_counts[(a, b)].setdefault(c, Counter())[
                        (present[a], present[b])
                    ] += 1
        self._domain_sizes = {f: max(1, len(domain)) for f, domain in domains.items()}

        self._parents = self._chow_liu_parents(pair_counts)
        # Conditional pair statistics for P(x | c, parent value).
        self._pair: dict[str, dict[tuple[Any, Any], Counter]] = {}
        for child, parent in self._parents.items():
            if parent is None:
                continue
            key = (child, parent) if (child, parent) in pair_counts else (parent, child)
            child_first = key[0] == child
            table: dict[tuple[Any, Any], Counter] = {}
            for c, counter in pair_counts[key].items():
                for (va, vb), count in counter.items():
                    child_value = va if child_first else vb
                    parent_value = vb if child_first else va
                    table.setdefault((c, parent_value), Counter())[child_value] += count
            self._pair[child] = table

    # ------------------------------------------------------------------

    @property
    def feature_attributes(self) -> tuple[str, ...]:
        return self._features

    @property
    def tree_parents(self) -> dict[str, str | None]:
        """Each feature's feature-parent in the learned tree (root: None)."""
        return dict(self._parents)

    def distribution(self, evidence: Mapping[str, Any]) -> dict[Any, float]:
        scores: dict[Any, float] = {}
        k = len(self._class_counts)
        for c, class_count in self._class_counts.items():
            score = (class_count + self.m / k) / (self._total + self.m)
            for name in self._features:
                value = evidence.get(name)
                if value is None or is_null(value):
                    continue
                parent = self._parents.get(name)
                parent_value = evidence.get(parent) if parent else None
                score *= self._likelihood(name, value, c, parent, parent_value)
            scores[c] = score
        total = sum(scores.values())
        if total <= 0.0:
            return {c: count / self._total for c, count in self._class_counts.items()}
        return {c: score / total for c, score in scores.items()}

    # ------------------------------------------------------------------

    def _likelihood(self, feature, value, c, parent, parent_value) -> float:
        p_uniform = 1.0 / self._domain_sizes[feature]
        if parent is not None and parent_value is not None and not is_null(parent_value):
            table = self._pair.get(feature, {})
            counter = table.get((c, parent_value))
            if counter is not None:
                joint = counter.get(value, 0)
                conditional_total = sum(counter.values())
                return (joint + self.m * p_uniform) / (conditional_total + self.m)
        per_class = self._single[feature].get(c)
        joint = per_class.get(value, 0) if per_class else 0
        class_total = sum(per_class.values()) if per_class else 0
        return (joint + self.m * p_uniform) / (class_total + self.m)

    def _chow_liu_parents(self, pair_counts) -> dict[str, str | None]:
        """Maximum-spanning-tree feature parents by conditional MI."""
        weights: dict[tuple[str, str], float] = {}
        for pair, by_class in pair_counts.items():
            weights[pair] = self._conditional_mutual_information(pair, by_class)

        parents: dict[str, str | None] = {self._features[0]: None}
        remaining = set(self._features[1:])
        # Prim's algorithm over the complete feature graph.
        while remaining:
            best: tuple[float, str, str] | None = None
            for inside in parents:
                for outside in remaining:
                    pair = (
                        (inside, outside)
                        if (inside, outside) in weights
                        else (outside, inside)
                    )
                    weight = weights.get(pair, 0.0)
                    candidate = (weight, outside, inside)
                    if best is None or candidate[0] > best[0] or (
                        candidate[0] == best[0] and candidate[1:] < best[1:]
                    ):
                        best = candidate
            assert best is not None
            __, child, parent = best
            parents[child] = parent
            remaining.discard(child)
        return parents

    def _conditional_mutual_information(self, pair, by_class) -> float:
        """``I(Xa; Xb | C)`` from the pairwise sufficient statistics."""
        a, b = pair
        total_pairs = sum(sum(counter.values()) for counter in by_class.values())
        if total_pairs == 0:
            return 0.0
        information = 0.0
        for c, counter in by_class.items():
            n_c = sum(counter.values())
            if n_c == 0:
                continue
            marg_a: Counter = Counter()
            marg_b: Counter = Counter()
            for (va, vb), count in counter.items():
                marg_a[va] += count
                marg_b[vb] += count
            p_c = n_c / total_pairs
            for (va, vb), count in counter.items():
                p_ab = count / n_c
                p_a = marg_a[va] / n_c
                p_b = marg_b[vb] / n_c
                information += p_c * p_ab * math.log(p_ab / (p_a * p_b))
        return information
