"""AFD-enhanced classifiers (Sections 5.2–5.3).

AFDs act as feature selectors for the Naive Bayes value-distribution models.
The paper compares four ways to combine them; all four are implemented so
Table 3 can be reproduced:

* :class:`BestAfdClassifier` — features = determining set of the
  highest-confidence (pruned) AFD; falls back to all attributes when the
  attribute has no AFD at all.
* :class:`HybridOneAfdClassifier` — like Best-AFD, but ignores AFDs whose
  confidence is below a threshold (0.5 in the paper) and then uses all other
  attributes.  This is the variant QPIAD ships with.
* :class:`EnsembleAfdClassifier` — one NBC per AFD of the attribute;
  posteriors are combined by confidence-weighted averaging.
* :class:`AllAttributesClassifier` — plain NBC over every other attribute
  (no feature selection).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping, Sequence

from repro.errors import ClassifierError
from repro.mining.afd import Afd
from repro.mining.nbc import NaiveBayesClassifier
from repro.relational.relation import Relation

__all__ = [
    "ValueDistributionClassifier",
    "BestAfdClassifier",
    "HybridOneAfdClassifier",
    "EnsembleAfdClassifier",
    "AllAttributesClassifier",
    "build_classifier",
    "CLASSIFIER_METHODS",
]

HYBRID_CONFIDENCE_FLOOR = 0.5
"""Paper's threshold below which an AFD is not trusted for feature selection."""


def _other_attributes(sample: Relation, attribute: str) -> list[str]:
    return [name for name in sample.schema.names if name != attribute]


class ValueDistributionClassifier(ABC):
    """Common interface: posterior value distributions for one attribute."""

    def __init__(self, attribute: str):
        self.attribute = attribute

    @abstractmethod
    def distribution(self, evidence: Mapping[str, Any]) -> dict[Any, float]:
        """Normalized posterior over completions of :attr:`attribute`."""

    @property
    @abstractmethod
    def feature_attributes(self) -> tuple[str, ...]:
        """The evidence attributes the classifier actually consults."""

    def predict(self, evidence: Mapping[str, Any]) -> tuple[Any, float]:
        """Argmax completion and its probability."""
        posterior = self.distribution(evidence)
        if not posterior:
            raise ClassifierError(f"empty posterior for {self.attribute!r}")
        best = max(posterior, key=lambda value: posterior[value])
        return best, posterior[best]

    def probability(self, value: Any, evidence: Mapping[str, Any]) -> float:
        return self.distribution(evidence).get(value, 0.0)


class _SingleNbcClassifier(ValueDistributionClassifier):
    """Base for variants backed by exactly one NBC."""

    def __init__(self, attribute: str, nbc: NaiveBayesClassifier):
        super().__init__(attribute)
        self._nbc = nbc

    @property
    def feature_attributes(self) -> tuple[str, ...]:
        return self._nbc.features

    def distribution(self, evidence: Mapping[str, Any]) -> dict[Any, float]:
        return self._nbc.distribution(evidence)


class BestAfdClassifier(_SingleNbcClassifier):
    """NBC over the determining set of the best AFD for the attribute."""

    def __init__(
        self,
        sample: Relation,
        attribute: str,
        afds: Sequence[Afd],
        m: float = 1.0,
    ):
        best = _best_afd_for(afds, attribute)
        if best is not None:
            features: Sequence[str] = best.determining
        else:
            features = _other_attributes(sample, attribute)
        self.afd = best
        super().__init__(attribute, NaiveBayesClassifier(sample, attribute, features, m=m))


class HybridOneAfdClassifier(_SingleNbcClassifier):
    """Best-AFD with a confidence floor; the paper's production choice.

    When the best AFD's confidence is below *confidence_floor* the AFD is
    deemed too weak for feature selection and all other attributes are used
    instead (Section 5.3).
    """

    def __init__(
        self,
        sample: Relation,
        attribute: str,
        afds: Sequence[Afd],
        m: float = 1.0,
        confidence_floor: float = HYBRID_CONFIDENCE_FLOOR,
    ):
        best = _best_afd_for(afds, attribute)
        if best is not None and best.confidence >= confidence_floor:
            features: Sequence[str] = best.determining
            self.afd = best
        else:
            features = _other_attributes(sample, attribute)
            self.afd = None
        super().__init__(attribute, NaiveBayesClassifier(sample, attribute, features, m=m))


class AllAttributesClassifier(_SingleNbcClassifier):
    """Plain NBC over every other attribute (no AFD feature selection)."""

    def __init__(self, sample: Relation, attribute: str, m: float = 1.0):
        features = _other_attributes(sample, attribute)
        super().__init__(attribute, NaiveBayesClassifier(sample, attribute, features, m=m))


class EnsembleAfdClassifier(ValueDistributionClassifier):
    """Confidence-weighted ensemble of one NBC per AFD of the attribute.

    Falls back to all-attributes NBC when the attribute has no AFD.
    """

    def __init__(
        self,
        sample: Relation,
        attribute: str,
        afds: Sequence[Afd],
        m: float = 1.0,
    ):
        super().__init__(attribute)
        relevant = [afd for afd in afds if afd.dependent == attribute]
        self._members: list[tuple[float, NaiveBayesClassifier]] = []
        if relevant:
            for afd in relevant:
                nbc = NaiveBayesClassifier(sample, attribute, afd.determining, m=m)
                self._members.append((afd.confidence, nbc))
        else:
            nbc = NaiveBayesClassifier(
                sample, attribute, _other_attributes(sample, attribute), m=m
            )
            self._members.append((1.0, nbc))

    @property
    def feature_attributes(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for __, nbc in self._members:
            for feature in nbc.features:
                seen.setdefault(feature)
        return tuple(seen.keys())

    def distribution(self, evidence: Mapping[str, Any]) -> dict[Any, float]:
        combined: dict[Any, float] = {}
        total_weight = sum(weight for weight, __ in self._members)
        for weight, nbc in self._members:
            for value, probability in nbc.distribution(evidence).items():
                combined[value] = combined.get(value, 0.0) + weight * probability
        if total_weight <= 0:
            raise ClassifierError("ensemble has no positively weighted members")
        return {value: score / total_weight for value, score in combined.items()}


def _best_afd_for(afds: Sequence[Afd], attribute: str) -> Afd | None:
    candidates = [afd for afd in afds if afd.dependent == attribute]
    if not candidates:
        return None
    return min(candidates, key=lambda afd: (-afd.confidence, len(afd.determining)))


CLASSIFIER_METHODS = (
    "best-afd",
    "hybrid-one-afd",
    "ensemble",
    "all-attributes",
    "association-rules",
)
"""Names accepted by :func:`build_classifier`: Table 3's four variants plus
the §6.5 association-rule comparison baseline."""


def build_classifier(
    method: str,
    sample: Relation,
    attribute: str,
    afds: Sequence[Afd],
    m: float = 1.0,
) -> ValueDistributionClassifier:
    """Factory over the Table-3 variants (and the §6.5 baseline) by name."""
    if method == "best-afd":
        return BestAfdClassifier(sample, attribute, afds, m=m)
    if method == "hybrid-one-afd":
        return HybridOneAfdClassifier(sample, attribute, afds, m=m)
    if method == "ensemble":
        return EnsembleAfdClassifier(sample, attribute, afds, m=m)
    if method == "all-attributes":
        return AllAttributesClassifier(sample, attribute, m=m)
    if method == "association-rules":
        from repro.mining.association import AssociationRuleClassifier

        return AssociationRuleClassifier(sample, attribute)
    raise ClassifierError(
        f"unknown classifier method {method!r}; expected one of {CLASSIFIER_METHODS}"
    )
