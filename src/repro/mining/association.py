"""Association-rule imputation — the paper's §6.5 comparison baseline.

The paper compares its AFD-enhanced classifiers against the association-
rule approach of Wu, Wun & Chou (HIS'04) and reports that "association
rules perform poorly as they focus only on attribute-value level
correlations and thus fail to learn from small samples".  This module
implements that baseline so the comparison is reproducible:

* :func:`mine_association_rules` finds value-level rules
  ``{A₁=a₁, ...} ⇒ target=t`` with minimum support and confidence;
* :class:`AssociationRuleClassifier` predicts a missing value from the
  matching rules (confidence-weighted vote), falling back to the class
  prior when no rule fires — which is exactly what happens on small
  samples, and why the approach underperforms schema-level AFDs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Any, Mapping

from repro.errors import ClassifierError, MiningError
from repro.mining.classifiers import ValueDistributionClassifier
from repro.relational.relation import Relation
from repro.relational.values import is_null

__all__ = ["AssociationRule", "mine_association_rules", "AssociationRuleClassifier"]


@dataclass(frozen=True)
class AssociationRule:
    """One value-level rule ``antecedent ⇒ target = value``.

    ``antecedent`` is a sorted tuple of ``(attribute, value)`` pairs;
    ``support`` counts rows matching antecedent *and* consequent;
    ``confidence`` is support over antecedent matches.
    """

    antecedent: tuple[tuple[str, Any], ...]
    target_attribute: str
    target_value: Any
    support: int
    confidence: float

    def fires_on(self, evidence: Mapping[str, Any]) -> bool:
        """Whether every antecedent item is present in *evidence*."""
        return all(
            attribute in evidence and evidence[attribute] == value
            for attribute, value in self.antecedent
        )

    def __str__(self) -> str:
        lhs = " ∧ ".join(f"{a}={v!r}" for a, v in self.antecedent)
        return (
            f"{lhs} => {self.target_attribute}={self.target_value!r} "
            f"(sup={self.support}, conf={self.confidence:.2f})"
        )


def mine_association_rules(
    sample: Relation,
    target_attribute: str,
    min_support: int = 5,
    min_confidence: float = 0.3,
    max_antecedent: int = 2,
) -> list[AssociationRule]:
    """Mine rules predicting *target_attribute*, strongest first.

    Antecedents range over value combinations of the other attributes up to
    *max_antecedent* items; NULL never participates on either side.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be positive, got {min_support}")
    if not 0.0 < min_confidence <= 1.0:
        raise MiningError(f"min_confidence must be in (0, 1], got {min_confidence}")
    if max_antecedent < 1:
        raise MiningError(f"max_antecedent must be positive, got {max_antecedent}")
    schema = sample.schema
    target_index = schema.index_of(target_attribute)
    feature_names = [name for name in schema.names if name != target_attribute]

    antecedent_counts: Counter = Counter()
    joint_counts: Counter = Counter()
    for row in sample:
        target_value = row[target_index]
        items = [
            (name, row[schema.index_of(name)])
            for name in feature_names
            if not is_null(row[schema.index_of(name)])
        ]
        for size in range(1, min(max_antecedent, len(items)) + 1):
            for antecedent in combinations(items, size):
                antecedent_counts[antecedent] += 1
                if not is_null(target_value):
                    joint_counts[(antecedent, target_value)] += 1

    rules: list[AssociationRule] = []
    for (antecedent, target_value), support in joint_counts.items():
        if support < min_support:
            continue
        confidence = support / antecedent_counts[antecedent]
        if confidence < min_confidence:
            continue
        rules.append(
            AssociationRule(
                antecedent=tuple(sorted(antecedent, key=lambda item: item[0])),
                target_attribute=target_attribute,
                target_value=target_value,
                support=support,
                confidence=confidence,
            )
        )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support, repr(rule.antecedent)))
    return rules


class AssociationRuleClassifier(ValueDistributionClassifier):
    """Missing-value prediction by confidence-weighted rule voting.

    Implements the same :class:`ValueDistributionClassifier` interface as
    the AFD-enhanced variants so the mediator can (counterfactually) run on
    top of it.  When no mined rule fires on the evidence, the class prior
    is returned — the small-sample failure mode the paper calls out.
    """

    def __init__(
        self,
        sample: Relation,
        attribute: str,
        min_support: int = 5,
        min_confidence: float = 0.3,
        max_antecedent: int = 2,
    ):
        super().__init__(attribute)
        self._rules = mine_association_rules(
            sample,
            attribute,
            min_support=min_support,
            min_confidence=min_confidence,
            max_antecedent=max_antecedent,
        )
        prior: Counter = Counter(
            value for value in sample.column(attribute) if not is_null(value)
        )
        if not prior:
            raise ClassifierError(
                f"no training rows with a value for {attribute!r}"
            )
        total = sum(prior.values())
        self._prior = {value: count / total for value, count in prior.items()}
        seen: dict[str, None] = {}
        for rule in self._rules:
            for name, __ in rule.antecedent:
                seen.setdefault(name)
        self._features = tuple(seen.keys())

    @property
    def rules(self) -> tuple[AssociationRule, ...]:
        return tuple(self._rules)

    @property
    def feature_attributes(self) -> tuple[str, ...]:
        return self._features

    def distribution(self, evidence: Mapping[str, Any]) -> dict[Any, float]:
        votes: dict[Any, float] = {}
        for rule in self._rules:
            if rule.fires_on(evidence):
                votes[rule.target_value] = votes.get(rule.target_value, 0.0) + rule.confidence
        if not votes:
            return dict(self._prior)
        total = sum(votes.values())
        return {value: weight / total for value, weight in votes.items()}
