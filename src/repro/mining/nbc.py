"""Naive Bayes classification with m-estimate smoothing (Section 5.2).

Given a tuple with a NULL on attribute ``A_m``, QPIAD estimates the
probability of each candidate completion ``v_i`` from the values ``x`` of a
feature set (the AFD's determining set):

    P(A_m = v_i | x) ∝ P(A_m = v_i) · Π_j P(x_j | A_m = v_i)

Likelihoods use the m-estimate of Mitchell (1997):

    P(x_j | v_i) = (n_c + m·p) / (n + m)

with ``p`` the uniform prior ``1/|domain(feature_j)|`` and ``m`` a smoothing
weight.  Features that are NULL in the evidence vector are skipped — the
standard treatment for missing features at prediction time.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping, Sequence

from repro.errors import ClassifierError
from repro.relational.relation import Relation
from repro.relational.values import is_null

__all__ = ["NaiveBayesClassifier"]


class NaiveBayesClassifier:
    """A categorical Naive Bayes model for one class attribute.

    Parameters
    ----------
    sample:
        Training relation; rows with NULL on *class_attribute* are skipped.
    class_attribute:
        The attribute whose missing values will be predicted.
    features:
        Feature attribute names (the AFD determining set, or all other
        attributes).  Rows may have NULL features; those cells simply do not
        contribute counts.
    m:
        The m-estimate smoothing weight (``m = 1`` by default; ``m = 0``
        degenerates to maximum likelihood with zero-probability pitfalls).
    """

    def __init__(
        self,
        sample: Relation,
        class_attribute: str,
        features: Sequence[str],
        m: float = 1.0,
    ):
        if class_attribute in features:
            raise ClassifierError(
                f"class attribute {class_attribute!r} cannot be its own feature"
            )
        if not features:
            raise ClassifierError("a Naive Bayes classifier requires at least one feature")
        if m < 0:
            raise ClassifierError(f"smoothing weight m must be non-negative, got {m}")

        self.class_attribute = class_attribute
        self.features = tuple(features)
        self.m = m

        schema = sample.schema
        class_index = schema.index_of(class_attribute)
        feature_indices = [schema.index_of(name) for name in features]

        class_counts: Counter = Counter()
        # joint_counts[feature][class_value][feature_value]
        joint_counts: dict[str, dict[Any, Counter]] = {name: {} for name in features}
        feature_domains: dict[str, set] = {name: set() for name in features}

        for row in sample:
            class_value = row[class_index]
            if is_null(class_value):
                continue
            class_counts[class_value] += 1
            for name, index in zip(features, feature_indices):
                value = row[index]
                if is_null(value):
                    continue
                feature_domains[name].add(value)
                joint_counts[name].setdefault(class_value, Counter())[value] += 1

        if not class_counts:
            raise ClassifierError(
                f"no training rows with a value for {class_attribute!r}"
            )

        self._class_counts = class_counts
        self._total = sum(class_counts.values())
        self._joint_counts = joint_counts
        self._domain_sizes = {
            name: max(1, len(domain)) for name, domain in feature_domains.items()
        }

    # ------------------------------------------------------------------

    @property
    def classes(self) -> tuple:
        """Candidate class values, most frequent first (ties: stable)."""
        return tuple(value for value, __ in self._class_counts.most_common())

    def prior(self, class_value: Any) -> float:
        """Smoothed prior P(class = value)."""
        count = self._class_counts.get(class_value, 0)
        k = len(self._class_counts)
        return (count + self.m / k) / (self._total + self.m) if k else 0.0

    def likelihood(self, feature: str, value: Any, class_value: Any) -> float:
        """m-estimate of P(feature = value | class = class_value)."""
        if feature not in self._joint_counts:
            raise ClassifierError(f"{feature!r} is not a feature of this classifier")
        per_class = self._joint_counts[feature].get(class_value, ())
        joint = per_class[value] if per_class and value in per_class else 0
        class_total = sum(per_class.values()) if per_class else 0
        p_uniform = 1.0 / self._domain_sizes[feature]
        return (joint + self.m * p_uniform) / (class_total + self.m)

    def distribution(self, evidence: Mapping[str, Any]) -> dict[Any, float]:
        """Normalized posterior over class values given *evidence*.

        *evidence* maps feature names to values; missing or NULL entries are
        skipped.  Extraneous keys are ignored so callers can pass whole
        tuples as dictionaries.
        """
        scores: dict[Any, float] = {}
        for class_value in self._class_counts:
            score = self.prior(class_value)
            for feature in self.features:
                value = evidence.get(feature)
                if value is None or is_null(value):
                    continue
                score *= self.likelihood(feature, value, class_value)
            scores[class_value] = score
        total = sum(scores.values())
        if total <= 0.0:
            # All posteriors vanished (m = 0 with unseen evidence, or long
            # likelihood products that underflowed to zero); fall back to
            # the *smoothed* prior distribution so the degenerate case stays
            # consistent with :meth:`prior`.
            return {value: self.prior(value) for value in scores}
        return {value: score / total for value, score in scores.items()}

    def predict(self, evidence: Mapping[str, Any]) -> tuple[Any, float]:
        """The argmax completion and its posterior probability.

        Ties are broken deterministically: higher posterior, then higher
        smoothed prior, then the lexicographically smallest value — never
        dict insertion order, which would make predictions depend on the
        order training rows happened to arrive in.
        """
        posterior = self.distribution(evidence)
        best_value = min(
            posterior,
            key=lambda value: (-posterior[value], -self.prior(value), str(value)),
        )
        return best_value, posterior[best_value]

    def probability(self, class_value: Any, evidence: Mapping[str, Any]) -> float:
        """Posterior probability of one specific completion (0.0 if unseen)."""
        return self.distribution(evidence).get(class_value, 0.0)
