"""Naive Bayes classification with m-estimate smoothing (Section 5.2).

Given a tuple with a NULL on attribute ``A_m``, QPIAD estimates the
probability of each candidate completion ``v_i`` from the values ``x`` of a
feature set (the AFD's determining set):

    P(A_m = v_i | x) ∝ P(A_m = v_i) · Π_j P(x_j | A_m = v_i)

Likelihoods use the m-estimate of Mitchell (1997):

    P(x_j | v_i) = (n_c + m·p) / (n + m)

with ``p`` the uniform prior ``1/|domain(feature_j)|`` and ``m`` a smoothing
weight.  Features that are NULL in the evidence vector are skipped — the
standard treatment for missing features at prediction time.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.errors import ClassifierError
from repro.relational.columnar import use_columnar
from repro.relational.relation import Relation
from repro.relational.values import is_null

if TYPE_CHECKING:
    from repro.relational.columnar import ColumnStore

__all__ = ["NaiveBayesClassifier"]


class NaiveBayesClassifier:
    """A categorical Naive Bayes model for one class attribute.

    Parameters
    ----------
    sample:
        Training relation; rows with NULL on *class_attribute* are skipped.
    class_attribute:
        The attribute whose missing values will be predicted.
    features:
        Feature attribute names (the AFD determining set, or all other
        attributes).  Rows may have NULL features; those cells simply do not
        contribute counts.
    m:
        The m-estimate smoothing weight (``m = 1`` by default; ``m = 0``
        degenerates to maximum likelihood with zero-probability pitfalls).
    """

    def __init__(
        self,
        sample: Relation,
        class_attribute: str,
        features: Sequence[str],
        m: float = 1.0,
    ):
        if class_attribute in features:
            raise ClassifierError(
                f"class attribute {class_attribute!r} cannot be its own feature"
            )
        if not features:
            raise ClassifierError("a Naive Bayes classifier requires at least one feature")
        if m < 0:
            raise ClassifierError(f"smoothing weight m must be non-negative, got {m}")

        self.class_attribute = class_attribute
        self.features = tuple(features)
        self.m = m

        trained = use_columnar() and self._train_from_store(sample.columnar())
        if not trained:
            self._train_from_rows(sample)

        if not self._class_counts:
            raise ClassifierError(
                f"no training rows with a value for {class_attribute!r}"
            )
        self._total = sum(self._class_counts.values())
        self._domain_sizes = {
            name: max(1, size) for name, size in self._domain_sizes.items()
        }

    def _train_from_rows(self, sample: Relation) -> None:
        """Accumulate counts row by row (the row-plane trainer)."""
        schema = sample.schema
        class_index = schema.index_of(self.class_attribute)
        feature_indices = [schema.index_of(name) for name in self.features]
        features = self.features

        class_counts: Counter = Counter()
        # joint_counts[feature][class_value][feature_value]
        joint_counts: dict[str, dict[Any, Counter]] = {name: {} for name in features}
        feature_domains: dict[str, set] = {name: set() for name in features}

        # Row-plane fallback (and the semantic reference); the columnar
        # plane trains via bincount in _train_from_store.
        # qpiadlint: disable-next-line=row-loop-in-mining
        for row in sample:
            class_value = row[class_index]
            if is_null(class_value):
                continue
            class_counts[class_value] += 1
            for name, index in zip(features, feature_indices):
                value = row[index]
                if is_null(value):
                    continue
                feature_domains[name].add(value)
                joint_counts[name].setdefault(class_value, Counter())[value] += 1

        self._class_counts = class_counts
        self._joint_counts = joint_counts
        self._domain_sizes = {
            name: len(domain) for name, domain in feature_domains.items()
        }

    def _train_from_store(self, store: "ColumnStore") -> bool:
        """Accumulate the same counts via bincount over dictionary codes.

        Returns False when any participating column is opaque (unhashable
        cells), in which case the caller falls back to the row trainer.  The
        resulting counters are *identical* to the row trainer's — including
        insertion order: dictionary codes are minted in first-seen row order
        and every class dictionary entry has a positive count, so rebuilding
        the class counter in code order reproduces the row scan exactly.
        """
        class_column = store.column(self.class_attribute)
        feature_columns = [store.column(name) for name in self.features]
        if class_column.codes is None or any(
            column.codes is None for column in feature_columns
        ):
            return False

        class_codes = class_column.codes
        class_values = class_column.values
        n_classes = len(class_values)
        class_valid = class_codes >= 0

        counts = np.bincount(class_codes[class_valid], minlength=n_classes)
        class_counts: Counter = Counter()
        for code, value in enumerate(class_values):
            class_counts[value] = int(counts[code])

        joint_counts: dict[str, dict[Any, Counter]] = {}
        domain_sizes: dict[str, int] = {}
        for name, column in zip(self.features, feature_columns):
            feature_codes = column.codes
            assert feature_codes is not None
            feature_values = column.values
            n_values = len(feature_values)
            both = class_valid & (feature_codes >= 0)
            if n_values == 0 or not bool(both.any()):
                joint_counts[name] = {}
                domain_sizes[name] = 0
                continue
            pairs = class_codes[both] * n_values + feature_codes[both]
            matrix = np.bincount(pairs, minlength=n_classes * n_values).reshape(
                n_classes, n_values
            )
            domain_sizes[name] = int((matrix.sum(axis=0) > 0).sum())
            per_class: dict[Any, Counter] = {}
            for class_code in range(n_classes):
                row_counts = matrix[class_code]
                nonzero = np.flatnonzero(row_counts)
                if nonzero.shape[0]:
                    per_class[class_values[class_code]] = Counter(
                        {
                            feature_values[position]: int(row_counts[position])
                            for position in nonzero.tolist()
                        }
                    )
            joint_counts[name] = per_class

        self._class_counts = class_counts
        self._joint_counts = joint_counts
        self._domain_sizes = domain_sizes
        return True

    def extended(self, batch: Relation) -> "NaiveBayesClassifier":
        """A new classifier whose counts fold in *batch*'s rows.

        Count matrices are additive, so training on the batch alone (via
        the same bincount/row kernels) and summing counters yields exactly
        the counters a full retrain on training ⊕ batch would produce —
        including insertion order, which :attr:`classes` tie-breaking
        depends on: existing keys keep their first-seen positions and
        batch-new keys append in batch first-seen order, which is the
        union's first-seen order.  This object is not mutated.
        """
        batch.schema.index_of(self.class_attribute)  # validate early
        scratch = NaiveBayesClassifier.__new__(NaiveBayesClassifier)
        scratch.class_attribute = self.class_attribute
        scratch.features = self.features
        scratch.m = self.m
        trained = use_columnar() and scratch._train_from_store(batch.columnar())
        if not trained:
            scratch._train_from_rows(batch)

        merged_class: Counter = Counter()
        for value, count in self._class_counts.items():
            merged_class[value] = count + scratch._class_counts.get(value, 0)
        for value, count in scratch._class_counts.items():
            if value not in merged_class:
                merged_class[value] = count

        merged_joint: dict[str, dict[Any, Counter]] = {}
        domain_sizes: dict[str, int] = {}
        for name in self.features:
            old_per_class = self._joint_counts[name]
            new_per_class = scratch._joint_counts[name]
            per_class: dict[Any, Counter] = {}
            for class_value, old_counter in old_per_class.items():
                addition = new_per_class.get(class_value)
                if addition is None:
                    per_class[class_value] = Counter(old_counter)
                    continue
                counter: Counter = Counter()
                for value, count in old_counter.items():
                    counter[value] = count + addition.get(value, 0)
                for value, count in addition.items():
                    if value not in counter:
                        counter[value] = count
                per_class[class_value] = counter
            for class_value, new_counter in new_per_class.items():
                if class_value not in per_class:
                    per_class[class_value] = Counter(new_counter)
            merged_joint[name] = per_class
            domain: set = set()
            for counter in per_class.values():
                domain.update(counter.keys())
            domain_sizes[name] = max(1, len(domain))

        merged = NaiveBayesClassifier.__new__(NaiveBayesClassifier)
        merged.class_attribute = self.class_attribute
        merged.features = self.features
        merged.m = self.m
        merged._class_counts = merged_class
        merged._joint_counts = merged_joint
        merged._domain_sizes = domain_sizes
        merged._total = sum(merged_class.values())
        return merged

    # ------------------------------------------------------------------

    @property
    def classes(self) -> tuple:
        """Candidate class values, most frequent first (ties: stable)."""
        return tuple(value for value, __ in self._class_counts.most_common())

    def prior(self, class_value: Any) -> float:
        """Smoothed prior P(class = value)."""
        count = self._class_counts.get(class_value, 0)
        k = len(self._class_counts)
        return (count + self.m / k) / (self._total + self.m) if k else 0.0

    def likelihood(self, feature: str, value: Any, class_value: Any) -> float:
        """m-estimate of P(feature = value | class = class_value)."""
        if feature not in self._joint_counts:
            raise ClassifierError(f"{feature!r} is not a feature of this classifier")
        per_class = self._joint_counts[feature].get(class_value, ())
        joint = per_class[value] if per_class and value in per_class else 0
        class_total = sum(per_class.values()) if per_class else 0
        p_uniform = 1.0 / self._domain_sizes[feature]
        return (joint + self.m * p_uniform) / (class_total + self.m)

    def distribution(self, evidence: Mapping[str, Any]) -> dict[Any, float]:
        """Normalized posterior over class values given *evidence*.

        *evidence* maps feature names to values; missing or NULL entries are
        skipped.  Extraneous keys are ignored so callers can pass whole
        tuples as dictionaries.
        """
        scores: dict[Any, float] = {}
        for class_value in self._class_counts:
            score = self.prior(class_value)
            for feature in self.features:
                value = evidence.get(feature)
                if value is None or is_null(value):
                    continue
                score *= self.likelihood(feature, value, class_value)
            scores[class_value] = score
        total = sum(scores.values())
        if total <= 0.0:
            # All posteriors vanished (m = 0 with unseen evidence, or long
            # likelihood products that underflowed to zero); fall back to
            # the *smoothed* prior distribution so the degenerate case stays
            # consistent with :meth:`prior`.
            return {value: self.prior(value) for value in scores}
        return {value: score / total for value, score in scores.items()}

    def distribution_batch(self, relation: Relation) -> list[dict[Any, float]]:
        """Posterior distributions for every row of *relation*, in row order.

        Exactly ``[distribution(evidence_of(row)) for row in relation]`` where
        each row's evidence is its values on this classifier's features
        (features absent from the relation's schema are skipped, as are NULL
        cells).  On the columnar plane the likelihood products run as
        vectorized per-feature gathers — the float operations are performed
        in the same order as the scalar path, so the posteriors are
        bit-identical.
        """
        schema = relation.schema
        present = [name for name in self.features if name in schema.names]
        if use_columnar():
            store = relation.columnar()
            if all(store.column(name).codes is not None for name in present):
                return self._distribution_batch_store(store, present)
        positions = {name: schema.index_of(name) for name in present}
        # Row-plane fallback: per-row scoring through distribution() defines
        # the semantics _distribution_batch_store must reproduce bit-for-bit.
        # qpiadlint: disable-next-line=row-loop-in-mining
        return [
            self.distribution({name: row[index] for name, index in positions.items()})
            for row in relation
        ]

    def _distribution_batch_store(
        self, store: "ColumnStore", present: Sequence[str]
    ) -> list[dict[Any, float]]:
        count = len(store)
        class_values = list(self._class_counts)
        scores = [np.full(count, self.prior(value)) for value in class_values]
        for name in present:
            column = store.column(name)
            codes = column.codes
            assert codes is not None
            if not column.values:
                continue  # every cell NULL: the feature is skipped row-wise
            valid = codes >= 0
            safe = np.where(valid, codes, 0)
            for position, class_value in enumerate(class_values):
                table = np.array(
                    [
                        self.likelihood(name, value, class_value)
                        for value in column.values
                    ],
                    dtype=np.float64,
                )
                # NULL rows skip the feature; multiplying by 1.0 is the
                # bit-identical no-op.
                scores[position] = scores[position] * np.where(
                    valid, table[safe], 1.0
                )
        total = np.zeros(count, dtype=np.float64)
        for score in scores:
            total = total + score
        positive = total > 0.0
        safe_total = np.where(positive, total, 1.0)
        normalized = [
            np.where(positive, score / safe_total, 0.0).tolist() for score in scores
        ]
        priors = {value: self.prior(value) for value in class_values}
        positive_list = positive.tolist()
        results: list[dict[Any, float]] = []
        for row_index in range(count):
            if positive_list[row_index]:
                results.append(
                    {
                        value: normalized[position][row_index]
                        for position, value in enumerate(class_values)
                    }
                )
            else:
                results.append(dict(priors))
        return results

    def predict(self, evidence: Mapping[str, Any]) -> tuple[Any, float]:
        """The argmax completion and its posterior probability.

        Ties are broken deterministically: higher posterior, then higher
        smoothed prior, then the lexicographically smallest value — never
        dict insertion order, which would make predictions depend on the
        order training rows happened to arrive in.
        """
        posterior = self.distribution(evidence)
        best_value = min(
            posterior,
            key=lambda value: (-posterior[value], -self.prior(value), str(value)),
        )
        return best_value, posterior[best_value]

    def probability(self, class_value: Any, evidence: Mapping[str, Any]) -> float:
        """Posterior probability of one specific completion (0.0 if unseen)."""
        return self.distribution(evidence).get(class_value, 0.0)
