"""Saving and loading mined knowledge bases.

Mining is the expensive off-line stage of QPIAD (probing + TANE).  A
production mediator mines once per source and reuses the statistics across
sessions.  These helpers serialize everything a
:class:`~repro.mining.KnowledgeBase` is built from — the sample, the mined
AFDs/AKeys, the discretizer's bin edges, and the configuration — to a JSON
file, and rebuild an identical knowledge base without re-running TANE.

Classifiers are *not* serialized: they train lazily from the stored sample
in milliseconds and would otherwise dominate the file size.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import MiningError
from repro.mining.afd import Afd, AKey
from repro.mining.discretization import Discretizer
from repro.mining.knowledge import KnowledgeBase, KnowledgeLineage, MiningConfig
from repro.mining.selectivity import SelectivityEstimator
from repro.mining.tane import TaneConfig
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.values import NULL, is_null

__all__ = ["save_knowledge", "load_knowledge"]

# Version 2 added the knowledge fingerprint (verified on load so a stale or
# hand-edited file cannot silently serve plans mined from different data).
# Version 3 added generation lineage: the epoch counter plus the fingerprint
# of the epoch-0 base and the digests of every folded batch, so a refreshed
# knowledge base reloads as the same generation (and the lineage's internal
# consistency is verified).  Version-1/2 files load fine — they simply skip
# the checks their format predates and come back as epoch-0 generations.
_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)


def _encode_value(value: Any) -> Any:
    return None if is_null(value) else value


def _encode_relation(relation: Relation) -> dict:
    return {
        "schema": [
            {"name": attribute.name, "type": attribute.type.value}
            for attribute in relation.schema
        ],
        "rows": [[_encode_value(value) for value in row] for row in relation],
    }


def _decode_relation(payload: dict) -> Relation:
    schema = Schema(
        Attribute(column["name"], AttributeType(column["type"]))
        for column in payload["schema"]
    )
    rows = [
        tuple(NULL if value is None else value for value in row)
        for row in payload["rows"]
    ]
    return Relation(schema, rows)


def save_knowledge(knowledge: KnowledgeBase, path: "str | Path") -> None:
    """Serialize *knowledge* to a JSON file at *path*."""
    config = knowledge.config
    discretizer = knowledge._discretizer
    payload = {
        "format_version": _FORMAT_VERSION,
        "fingerprint": knowledge.fingerprint(),
        "epoch": knowledge.epoch,
        "lineage": {
            "base_fingerprint": knowledge.lineage.base_fingerprint,
            "batch_digests": list(knowledge.lineage.batch_digests),
        },
        "database_size": knowledge.database_size,
        "config": {
            "tane": {
                "min_confidence": config.tane.min_confidence,
                "max_determining_size": config.tane.max_determining_size,
                "min_support": config.tane.min_support,
                "attributes": list(config.tane.attributes) if config.tane.attributes else None,
                "expand_near_keys": config.tane.expand_near_keys,
            },
            "pruning_delta": config.pruning_delta,
            "classifier_method": config.classifier_method,
            "smoothing_m": config.smoothing_m,
            "discretize_bins": config.discretize_bins,
            "discretize_strategy": config.discretize_strategy,
        },
        "sample": _encode_relation(knowledge.sample),
        "afds": [
            {
                "determining": list(afd.determining),
                "dependent": afd.dependent,
                "confidence": afd.confidence,
                "support": afd.support,
            }
            for afd in knowledge.all_afds
        ],
        "pruned_afds": [
            {
                "determining": list(afd.determining),
                "dependent": afd.dependent,
                "confidence": afd.confidence,
                "support": afd.support,
            }
            for afd in knowledge.afds
        ],
        "akeys": [
            {
                "attributes": list(key.attributes),
                "confidence": key.confidence,
                "support": key.support,
            }
            for key in knowledge.akeys
        ],
        "discretizer": (
            {
                name: {"edges": list(edges), "low": low, "high": high}
                for name, (edges, low, high) in discretizer.to_bins().items()
            }
            if discretizer is not None
            else None
        ),
    }
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_knowledge(path: "str | Path") -> KnowledgeBase:
    """Rebuild a knowledge base saved by :func:`save_knowledge`.

    The mined statistics are restored verbatim — TANE does not run again.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise MiningError(f"cannot load knowledge base from {path}: {exc}") from exc
    version = payload.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise MiningError(
            f"unsupported knowledge-base format version {version!r} "
            f"(expected one of {_SUPPORTED_VERSIONS})"
        )

    config_payload = payload["config"]
    tane_payload = config_payload["tane"]
    config = MiningConfig(
        tane=TaneConfig(
            min_confidence=tane_payload["min_confidence"],
            max_determining_size=tane_payload["max_determining_size"],
            min_support=tane_payload["min_support"],
            attributes=(
                tuple(tane_payload["attributes"]) if tane_payload["attributes"] else None
            ),
            expand_near_keys=tane_payload["expand_near_keys"],
        ),
        pruning_delta=config_payload["pruning_delta"],
        classifier_method=config_payload["classifier_method"] or "hybrid-one-afd",
        smoothing_m=config_payload["smoothing_m"],
        discretize_bins=config_payload["discretize_bins"],
        discretize_strategy=config_payload.get("discretize_strategy", "width"),
    )

    sample = _decode_relation(payload["sample"])

    if payload["discretizer"] is not None:
        discretizer = Discretizer.from_bins(
            {
                name: (tuple(entry["edges"]), entry["low"], entry["high"])
                for name, entry in payload["discretizer"].items()
            }
        )
        mining_view = discretizer.transform(sample)
    else:
        discretizer = None
        mining_view = sample

    epoch = int(payload.get("epoch", 0))
    lineage_payload = payload.get("lineage") or {}
    lineage = KnowledgeLineage(
        base_fingerprint=lineage_payload.get("base_fingerprint"),
        batch_digests=tuple(lineage_payload.get("batch_digests", ())),
    )
    if version >= 3:
        if len(lineage.batch_digests) != epoch:
            raise MiningError(
                f"knowledge base at {path} has inconsistent lineage: epoch "
                f"{epoch} but {len(lineage.batch_digests)} folded batch digests"
            )
        if (lineage.base_fingerprint is None) != (epoch == 0):
            raise MiningError(
                f"knowledge base at {path} has inconsistent lineage: a base "
                "fingerprint must be recorded exactly when epoch > 0"
            )

    knowledge = KnowledgeBase._from_parts(
        config=config,
        sample=sample,
        database_size=payload["database_size"],
        discretizer=discretizer,
        mining_view=mining_view,
        all_afds=tuple(
            Afd(tuple(a["determining"]), a["dependent"], a["confidence"], a["support"])
            for a in payload["afds"]
        ),
        afds=tuple(
            Afd(tuple(a["determining"]), a["dependent"], a["confidence"], a["support"])
            for a in payload["pruned_afds"]
        ),
        akeys=tuple(
            AKey(tuple(k["attributes"]), k["confidence"], k["support"])
            for k in payload["akeys"]
        ),
        selectivity=SelectivityEstimator.from_sample(
            sample, payload["database_size"]
        ),
        epoch=epoch,
        lineage=lineage,
    )
    stored = payload.get("fingerprint")
    if version >= 2 and stored != knowledge.fingerprint():
        raise MiningError(
            f"knowledge base at {path} failed fingerprint verification: the "
            f"stored digest {stored!r} does not match the rebuilt content "
            f"({knowledge.fingerprint()!r}); the file is stale or corrupted"
        )
    return knowledge
