"""Pruning noisy AFDs (Section 5.1).

High-confidence AFDs whose determining set contains an approximate key are
useless for prediction: if ``VIN`` is a (near-)key, ``VIN ⇝ Model`` holds
trivially yet carries no generalizable signal — no other tuple shares the
VIN.  The paper prunes an AFD when the gap between its confidence and the
confidence of an AKey inside its determining set falls below a threshold δ
(0.3 in the paper).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.mining.afd import Afd, AKey

__all__ = ["prune_noisy_afds", "is_noisy"]

DEFAULT_DELTA = 0.3
"""The paper's experimentally chosen δ."""


def is_noisy(afd: Afd, akeys: Sequence[AKey], delta: float = DEFAULT_DELTA) -> bool:
    """Whether *afd* should be pruned given the discovered *akeys*.

    The AFD is noisy when some AKey's attributes are a subset of the AFD's
    determining set and ``conf(afd) − conf(akey) < δ``: the dependency's
    apparent strength is mostly explained by near-uniqueness of the
    determining values rather than by genuine attribute correlation.
    """
    for akey in akeys:
        if akey.is_subset_of(afd.determining) and afd.confidence - akey.confidence < delta:
            return True
    return False


def prune_noisy_afds(
    afds: Iterable[Afd], akeys: Sequence[AKey], delta: float = DEFAULT_DELTA
) -> list[Afd]:
    """Return the AFDs that survive the AKey-based noise pruning."""
    return [afd for afd in afds if not is_noisy(afd, akeys, delta)]
