"""Approximate functional dependencies and approximate keys.

Definition 3 of the paper: ``X ⇝ A`` is an AFD when it holds on all but a
small fraction of tuples; its *confidence* is ``1 − g3`` (Section 5.1,
following Kivinen & Mannila).  An *AKey* is an attribute set that is a key
on all but a small fraction of tuples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MiningError

__all__ = ["Afd", "AKey"]


def _normalized_attrs(attributes) -> tuple[str, ...]:
    attrs = tuple(attributes)
    if not attrs:
        raise MiningError("an attribute set must be non-empty")
    if len(set(attrs)) != len(attrs):
        raise MiningError(f"duplicate attributes in {attrs!r}")
    return tuple(sorted(attrs))


@dataclass(frozen=True)
class Afd:
    """An approximate functional dependency ``determining ⇝ dependent``.

    Attributes
    ----------
    determining:
        The determining set ``dtrSet(dependent)``, stored sorted for value
        semantics.
    dependent:
        The attribute (approximately) determined.
    confidence:
        ``1 − g3`` over the mining sample, in ``[0, 1]``.
    support:
        Number of sample rows the confidence was computed over (rows
        non-NULL on ``determining ∪ {dependent}``).
    """

    determining: tuple[str, ...]
    dependent: str
    confidence: float
    support: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "determining", _normalized_attrs(self.determining))
        if self.dependent in self.determining:
            raise MiningError(
                f"dependent {self.dependent!r} cannot appear in its determining set"
            )
        if not 0.0 <= self.confidence <= 1.0 + 1e-9:
            raise MiningError(f"confidence out of range: {self.confidence}")

    @property
    def is_exact(self) -> bool:
        """Whether the dependency held on every covered sample row."""
        return self.confidence >= 1.0 - 1e-12

    def __str__(self) -> str:
        lhs = ", ".join(self.determining)
        return f"{{{lhs}}} ~> {self.dependent} (conf={self.confidence:.3f})"


@dataclass(frozen=True)
class AKey:
    """An approximate key with its ``1 − g3`` confidence."""

    attributes: tuple[str, ...]
    confidence: float
    support: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", _normalized_attrs(self.attributes))
        if not 0.0 <= self.confidence <= 1.0 + 1e-9:
            raise MiningError(f"confidence out of range: {self.confidence}")

    def is_subset_of(self, attributes: tuple[str, ...]) -> bool:
        """Whether this key's attributes are all contained in *attributes*."""
        return set(self.attributes) <= set(attributes)

    def __str__(self) -> str:
        return f"AKey{{{', '.join(self.attributes)}}} (conf={self.confidence:.3f})"
