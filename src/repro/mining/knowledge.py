"""The knowledge-mining module of Fig. 1: one facade over all learned statistics.

A :class:`KnowledgeBase` is mined once, off-line, from a (probed) sample of
an autonomous database.  It bundles the three kinds of knowledge QPIAD's
query reformulator consumes:

1. **attribute correlations** — pruned AFDs (and AKeys),
2. **value distributions** — AFD-enhanced Naive Bayes classifiers, and
3. **selectivity estimates** — expected result cardinalities.

Numeric attributes are transparently discretized for mining/classification
while queries and evidence keep raw values; the knowledge base owns the
bucket mapping so callers never see it.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import MiningError
from repro.mining.afd import Afd, AKey
from repro.mining.classifiers import (
    CLASSIFIER_METHODS,
    ValueDistributionClassifier,
    build_classifier,
)
from repro.mining.discretization import Discretizer
from repro.mining.pruning import DEFAULT_DELTA, prune_noisy_afds
from repro.mining.selectivity import SelectivityEstimator
from repro.mining.tane import TaneConfig, mine_dependencies
from repro.relational.relation import Relation, Row
from repro.relational.values import is_null

__all__ = ["MiningConfig", "KnowledgeBase", "KnowledgeLineage"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class KnowledgeLineage:
    """Provenance of a knowledge generation: how its sample was assembled.

    A freshly-mined generation has empty lineage.  Every refresh extends it
    with the digest of the folded batch, keeping the fingerprint of the
    epoch-0 base it all started from — enough to audit (and, with the
    original batches, replay) how the current sample came to be.  Lineage
    deliberately does **not** enter the content fingerprint: a refreshed
    generation and a from-scratch mine of the same union sample are
    content-identical and must fingerprint identically.
    """

    base_fingerprint: str | None = None
    batch_digests: tuple[str, ...] = ()

    def extended(self, batch_digest: str, base_fingerprint: str) -> "KnowledgeLineage":
        """Lineage after folding one more batch into this generation."""
        return KnowledgeLineage(
            self.base_fingerprint or base_fingerprint,
            self.batch_digests + (batch_digest,),
        )


@dataclass(frozen=True)
class MiningConfig:
    """All knobs of the knowledge-mining stage in one value object.

    Parameters
    ----------
    tane:
        Dependency-discovery configuration (β threshold, lattice depth...).
    pruning_delta:
        δ of the AKey-based noisy-AFD pruning (0.3 in the paper).
    classifier_method:
        Default classifier variant; the paper ships ``hybrid-one-afd``.
    smoothing_m:
        m-estimate weight for the Naive Bayes models.
    discretize_bins:
        Buckets per numeric attribute for mining (0 disables discretization).
    discretize_strategy:
        ``"width"`` (equal-width, default) or ``"quantile"`` (equal-mass)
        bucketing for numeric attributes.
    """

    tane: TaneConfig = field(default_factory=TaneConfig)
    pruning_delta: float = DEFAULT_DELTA
    classifier_method: str = "hybrid-one-afd"
    smoothing_m: float = 1.0
    discretize_bins: int = 8
    discretize_strategy: str = "width"

    def __post_init__(self) -> None:
        if self.classifier_method not in CLASSIFIER_METHODS:
            raise MiningError(
                f"unknown classifier method {self.classifier_method!r}; "
                f"expected one of {CLASSIFIER_METHODS}"
            )
        if self.discretize_strategy not in ("width", "quantile"):
            raise MiningError(
                f"unknown discretization strategy {self.discretize_strategy!r}"
            )


class KnowledgeBase:
    """One immutable *generation* of learned statistics.

    A knowledge base is frozen once constructed: the mined payload
    (``afds``, ``akeys``, sample, selectivity...) never changes, which is
    what lets the memoized :meth:`fingerprint` stay valid forever and the
    plan cache trust it as a version key.  Attribute rebinding after
    construction raises; the only mutable state is the internal
    classifier/training-view memo (derived caches whose contents are fully
    determined by the frozen payload, so they cannot affect identity).

    Refreshing knowledge therefore never mutates a generation — a
    :class:`~repro.mining.refresh.KnowledgeRefresher` folds a batch into a
    *new* generation (``epoch`` one higher, lineage extended) and installs
    it atomically in a :class:`~repro.mining.store.KnowledgeStore`.

    Parameters
    ----------
    sample:
        The probed sample (raw values; may contain NULLs).
    database_size:
        Cardinality of the full database (advertised by the source or
        estimated via probing); drives ``SmplRatio``.
    config:
        Mining configuration; defaults match the paper.
    """

    #: Attributes that may be rebound after construction: only the lazy
    #: fingerprint memo, whose value is determined by the frozen payload.
    _MUTABLE_AFTER_FREEZE = frozenset({"_fingerprint"})

    _frozen: bool = False

    def __init__(
        self,
        sample: Relation,
        database_size: int,
        config: MiningConfig | None = None,
    ):
        if not len(sample):
            raise MiningError("cannot mine knowledge from an empty sample")
        self.config = config or MiningConfig()
        self.sample = sample
        self.database_size = database_size

        if self.config.discretize_bins:
            self._discretizer: Discretizer | None = Discretizer(
                sample,
                bins=self.config.discretize_bins,
                strategy=self.config.discretize_strategy,
            )
            self._mining_view = self._discretizer.transform(sample)
        else:
            self._discretizer = None
            self._mining_view = sample

        mined = mine_dependencies(self._mining_view, self.config.tane)
        self.all_afds: tuple[Afd, ...] = tuple(mined.afds)
        self.akeys: tuple[AKey, ...] = tuple(mined.akeys)
        self.afds: tuple[Afd, ...] = tuple(
            prune_noisy_afds(mined.afds, mined.akeys, self.config.pruning_delta)
        )
        self.selectivity = SelectivityEstimator.from_sample(sample, database_size)
        logger.debug(
            "mined %d AFDs (%d after pruning) and %d AKeys from %d sample tuples",
            len(self.all_afds), len(self.afds), len(self.akeys), len(sample),
        )
        self._classifiers: dict[tuple[str, str], ValueDistributionClassifier] = {}
        self._training_views: dict[str, Relation] = {}
        self._fingerprint: str | None = None
        self.epoch: int = 0
        self.lineage: KnowledgeLineage = KnowledgeLineage()
        self._frozen = True

    def __setattr__(self, name: str, value: Any) -> None:
        if self._frozen and name not in self._MUTABLE_AFTER_FREEZE:
            raise MiningError(
                f"KnowledgeBase is frozen; cannot rebind {name!r}. Refresh "
                "produces a new generation instead of mutating this one "
                "(see repro.mining.refresh)."
            )
        super().__setattr__(name, value)

    @classmethod
    def _from_parts(
        cls,
        *,
        config: MiningConfig,
        sample: Relation,
        database_size: int,
        discretizer: Discretizer | None,
        mining_view: Relation,
        all_afds: tuple[Afd, ...],
        afds: tuple[Afd, ...],
        akeys: tuple[AKey, ...],
        selectivity: SelectivityEstimator,
        epoch: int = 0,
        lineage: KnowledgeLineage | None = None,
    ) -> "KnowledgeBase":
        """Assemble a generation from already-mined parts (refresh, load).

        Skips the mining pass entirely; the caller vouches that the parts
        are mutually consistent (i.e. equal to what ``__init__`` would have
        mined from *sample* under *config*).
        """
        knowledge = cls.__new__(cls)
        knowledge.config = config
        knowledge.sample = sample
        knowledge.database_size = database_size
        knowledge._discretizer = discretizer
        knowledge._mining_view = mining_view
        knowledge.all_afds = tuple(all_afds)
        knowledge.akeys = tuple(akeys)
        knowledge.afds = tuple(afds)
        knowledge.selectivity = selectivity
        knowledge._classifiers = {}
        knowledge._training_views = {}
        knowledge._fingerprint = None
        knowledge.epoch = epoch
        knowledge.lineage = lineage or KnowledgeLineage()
        knowledge._frozen = True
        return knowledge

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Deterministic content digest of everything planning reads.

        Hashes the sample (schema + rows, in order), the database size,
        the mining configuration, the mined and pruned AFDs, the AKeys,
        and the discretizer's bin edges — so two knowledge bases share a
        fingerprint exactly when they are content-identical.  A knowledge
        base saved with :func:`~repro.mining.persistence.save_knowledge`
        and loaded back fingerprints identically; re-mining from a
        different sample (or under different knobs) never does.  The plan
        cache keys on this value, which is what makes cached plans expire
        exactly when knowledge changes.

        Computed lazily and memoized: the knowledge base is immutable
        after construction, so the digest never goes stale.
        """
        if self._fingerprint is None:
            from repro.planner.fingerprint import knowledge_fingerprint

            self._fingerprint = knowledge_fingerprint(self)
        return self._fingerprint

    # ------------------------------------------------------------------
    # Attribute correlations
    # ------------------------------------------------------------------

    def afds_for(self, attribute: str) -> list[Afd]:
        """Pruned AFDs determining *attribute*, best first."""
        matches = [afd for afd in self.afds if afd.dependent == attribute]
        return sorted(matches, key=lambda afd: (-afd.confidence, len(afd.determining)))

    def best_afd(self, attribute: str) -> Afd | None:
        """Highest-confidence pruned AFD for *attribute*, or ``None``."""
        candidates = self.afds_for(attribute)
        return candidates[0] if candidates else None

    def determining_set(self, attribute: str) -> tuple[str, ...]:
        """``dtrSet(attribute)`` per the best AFD.

        Raises :class:`MiningError` when the attribute has no usable AFD —
        the caller (rewriting) treats that as "cannot rewrite on this
        attribute".
        """
        best = self.best_afd(attribute)
        if best is None:
            raise MiningError(
                f"no AFD determines {attribute!r}; query rewriting cannot target it"
            )
        return best.determining

    # ------------------------------------------------------------------
    # Value distributions
    # ------------------------------------------------------------------

    def classifier(
        self, attribute: str, method: str | None = None
    ) -> ValueDistributionClassifier:
        """The (cached) value-distribution classifier for *attribute*.

        Trained on a view where the *feature* columns are bucketed (robust
        likelihoods from a small sample) but the class column keeps its raw
        values, so posteriors range over actual domain values — which is
        what equality queries like ``Price = 20000`` need.
        """
        method = method or self.config.classifier_method
        key = (attribute, method)
        if key not in self._classifiers:
            self._classifiers[key] = build_classifier(
                method,
                self._training_view(attribute),
                attribute,
                self.afds,
                m=self.config.smoothing_m,
            )
        return self._classifiers[key]

    def _training_view(self, class_attribute: str) -> Relation:
        if self._discretizer is None:
            return self.sample
        if class_attribute not in self._training_views:
            self._training_views[class_attribute] = self._discretizer.transform(
                self.sample, exclude={class_attribute}
            )
        return self._training_views[class_attribute]

    def value_distribution(
        self, attribute: str, evidence: Mapping[str, Any], method: str | None = None
    ) -> dict[Any, float]:
        """Posterior over completions of *attribute* given raw *evidence*.

        Evidence values are raw (un-bucketed); numeric ones are bucketed
        internally to match the classifier's feature space.  Keys of the
        returned distribution are *raw domain values* — including for
        numeric attributes, whose classifiers keep the class column raw.
        """
        prepared = self._prepare_evidence(evidence)
        return self.classifier(attribute, method).distribution(prepared)

    def estimated_precision(
        self,
        attribute: str,
        value: Any,
        evidence: Mapping[str, Any],
        method: str | None = None,
    ) -> float:
        """``P(attribute = value | evidence)`` — a rewritten query's precision."""
        posterior = self.value_distribution(attribute, evidence, method)
        return posterior.get(value, 0.0)

    def predict_value(
        self, attribute: str, evidence: Mapping[str, Any], method: str | None = None
    ) -> tuple[Any, float]:
        """Most likely completion (a raw domain value) and its probability."""
        posterior = self.value_distribution(attribute, evidence, method)
        if not posterior:
            raise MiningError(f"no distribution available for {attribute!r}")
        label = max(posterior, key=lambda candidate: posterior[candidate])
        return label, posterior[label]

    def mining_label(self, attribute: str, value: Any) -> Any:
        """Map a raw value into mining space (its bucket label if numeric)."""
        return self._bucket(attribute, value)

    def is_discretized(self, attribute: str) -> bool:
        """Whether the attribute is bucketed for mining (numeric + covered)."""
        return self._discretizer is not None and self._discretizer.covers(attribute)

    def bucket_bounds(self, attribute: str, label: Any) -> tuple[float, float]:
        """The numeric interval behind a bucket label (see Discretizer)."""
        if self._discretizer is None:
            raise MiningError("knowledge base was mined without discretization")
        return self._discretizer.bin_bounds(attribute, label)

    def representative_value(self, attribute: str, label: Any) -> Any:
        """Map a mining-space completion label back to a raw value.

        For discretized numeric attributes, bucket labels map to their bin
        midpoint; everything else passes through unchanged.
        """
        if self._discretizer is not None:
            return self._discretizer.representative(attribute, label)
        return label

    def predict_matches(
        self,
        attribute: str,
        value: Any,
        evidence: Mapping[str, Any],
        method: str | None = None,
    ) -> bool:
        """Whether the argmax completion of *attribute* equals *value*.

        This is the aggregate-inclusion test of Section 4.4: a rewritten
        query's aggregate is folded in only when the most likely completion
        matches the original query's constrained value.
        """
        posterior = self.value_distribution(attribute, evidence, method)
        if not posterior:
            return False
        label = max(posterior, key=lambda candidate: posterior[candidate])
        return label == value

    # ------------------------------------------------------------------
    # Evidence helpers
    # ------------------------------------------------------------------

    def evidence_from_row(self, row: Row, relation: Relation) -> dict[str, Any]:
        """Turn a relation row into a raw evidence mapping (NULLs dropped)."""
        return {
            name: value
            for name, value in zip(relation.schema.names, row)
            if not is_null(value)
        }

    def _prepare_evidence(self, evidence: Mapping[str, Any]) -> dict[str, Any]:
        prepared = {k: v for k, v in evidence.items() if not is_null(v)}
        if self._discretizer is not None:
            prepared = self._discretizer.transform_evidence(prepared)
        return prepared

    def _bucket(self, attribute: str, value: Any) -> Any:
        if self._discretizer is not None:
            return self._discretizer.bucket(attribute, value)
        return value

    def __repr__(self) -> str:
        return (
            f"KnowledgeBase({len(self.sample)} sample rows, "
            f"{len(self.afds)}/{len(self.all_afds)} AFDs after pruning, "
            f"{len(self.akeys)} AKeys)"
        )
