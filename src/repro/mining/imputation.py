"""Classical imputation — filling NULLs in a database you *do* control.

The paper's related work contrasts QPIAD with "imputation methods that
attempt to modify the database directly by replacing null values with
likely values", which are "not applicable for autonomous databases".  When
you *own* the data (e.g. cleaning a local copy, or preparing a warehouse
load), the very same mined knowledge supports classical imputation — so the
library ships it:

* every NULL is replaced by the classifier's most likely completion given
  the tuple's present values,
* optionally only when the posterior clears a confidence threshold
  (uncertain cells stay NULL), and
* an :class:`ImputationReport` records exactly what was changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import MiningError, QpiadError
from repro.mining.knowledge import KnowledgeBase
from repro.relational.relation import Relation
from repro.relational.values import is_null

__all__ = ["ImputedCell", "ImputationReport", "impute"]


@dataclass(frozen=True)
class ImputedCell:
    """One filled cell: where, what, and how confident."""

    row_index: int
    attribute: str
    value: Any
    confidence: float


@dataclass
class ImputationReport:
    """Outcome of one imputation pass."""

    relation: Relation
    imputed: tuple[ImputedCell, ...] = ()
    skipped_low_confidence: int = 0
    skipped_unpredictable: int = 0

    @property
    def filled_count(self) -> int:
        return len(self.imputed)


def impute(
    relation: Relation,
    knowledge: KnowledgeBase,
    attributes: Sequence[str] | None = None,
    min_confidence: float = 0.0,
    method: str | None = None,
) -> ImputationReport:
    """Fill NULLs of *relation* using *knowledge*'s classifiers.

    Parameters
    ----------
    relation:
        The incomplete relation (left untouched; a new one is returned).
    knowledge:
        Mined statistics; its classifiers supply the completions.
    attributes:
        Restrict imputation to these attributes (default: all).
    min_confidence:
        Leave a cell NULL when the best completion's posterior probability
        falls below this threshold.
    method:
        Classifier variant (default: the knowledge base's configured one).
    """
    if not 0.0 <= min_confidence <= 1.0:
        raise QpiadError(f"min_confidence must be in [0, 1], got {min_confidence}")
    schema = relation.schema
    targets = list(attributes) if attributes is not None else list(schema.names)
    for name in targets:
        schema.index_of(name)  # validate
    target_set = set(targets)

    rows: list[tuple] = []
    imputed: list[ImputedCell] = []
    skipped_low = 0
    skipped_unpredictable = 0
    for row_index, row in enumerate(relation):
        values = list(row)
        null_attributes = [
            name
            for name in targets
            if is_null(row[schema.index_of(name)])
        ]
        if null_attributes:
            evidence = {
                name: value
                for name, value in zip(schema.names, row)
                if not is_null(value)
            }
            for name in null_attributes:
                try:
                    predicted, confidence = knowledge.predict_value(
                        name, evidence, method
                    )
                except MiningError:
                    skipped_unpredictable += 1
                    continue
                if confidence < min_confidence:
                    skipped_low += 1
                    continue
                values[schema.index_of(name)] = predicted
                imputed.append(ImputedCell(row_index, name, predicted, confidence))
        rows.append(tuple(values))

    return ImputationReport(
        relation=Relation(schema, rows),
        imputed=tuple(imputed),
        skipped_low_confidence=skipped_low,
        skipped_unpredictable=skipped_unpredictable,
    )
