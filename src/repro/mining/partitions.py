"""Equivalence-class partitions for dependency discovery.

TANE-style AFD mining works on *partitions*: the rows of a relation grouped
by their values on an attribute set ``X``.  The ``g3`` error of ``X ⇝ A``
(Kivinen & Mannila) and the key error of ``X`` are both simple functions of
these partitions.

NULL handling: a row with NULL on any attribute of ``X`` carries no evidence
about the dependency, so it is excluded from the partition; error measures
are normalized by the number of rows actually partitioned.  This matters in
QPIAD because the mined sample itself is incomplete.

Two representations coexist behind one :class:`Partition` type.  The
row-oriented constructors group with Python dicts over attribute values; the
columnar kernels (:func:`partition_from_codes`, :meth:`Partition.refine` on a
code array) group dictionary codes with sort-based numpy primitives and keep
the partition as a pair of flat arrays (row order + class sizes), converting
to tuples only if somebody asks for :attr:`Partition.classes`.  Because
dictionary codes are assigned by the same ``dict`` equality used here, both
planes produce the same classes; every error measure below is an
order-insensitive sum, so class *order* (which may differ between planes) is
immaterial.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.relational.relation import Relation
from repro.relational.values import is_null

__all__ = [
    "Partition",
    "partition_by",
    "partition_from_codes",
    "class_counts",
    "code_histogram",
    "code_histogram_items",
    "g3_error",
    "g3_stats",
    "key_error",
]


class Partition:
    """Grouping of row indices by equal values over an attribute set.

    Attributes
    ----------
    classes:
        Tuple of equivalence classes; each class is a tuple of row indices
        (ascending).  Classes cover exactly the rows that are non-NULL on
        every grouping attribute.
    covered:
        Total number of rows partitioned (sum of class sizes).
    """

    __slots__ = ("_classes", "_order", "_sizes", "_covered")

    def __init__(self, classes: Sequence[Sequence[int]]):
        self._classes: "tuple[tuple[int, ...], ...] | None" = tuple(
            tuple(c) for c in classes
        )
        self._order: "NDArray[np.int64] | None" = None
        self._sizes: "NDArray[np.int64] | None" = None
        self._covered = sum(len(c) for c in self._classes)

    @classmethod
    def _from_arrays(
        cls, order: "NDArray[np.int64]", sizes: "NDArray[np.int64]"
    ) -> "Partition":
        """Wrap the flat representation: concatenated class members + sizes."""
        partition = cls.__new__(cls)
        partition._classes = None
        partition._order = order
        partition._sizes = sizes
        partition._covered = int(order.shape[0])
        return partition

    @property
    def classes(self) -> tuple[tuple[int, ...], ...]:
        if self._classes is None:
            assert self._order is not None and self._sizes is not None
            if self._sizes.shape[0] == 0:
                self._classes = ()  # np.split would yield one empty class
            else:
                splits = np.cumsum(self._sizes[:-1])
                self._classes = tuple(
                    tuple(part.tolist()) for part in np.split(self._order, splits)
                )
        return self._classes

    @property
    def covered(self) -> int:
        return self._covered

    def __len__(self) -> int:
        if self._sizes is not None:
            return int(self._sizes.shape[0])
        assert self._classes is not None
        return len(self._classes)

    def _arrays(self) -> "tuple[NDArray[np.int64], NDArray[np.int64]]":
        """The flat representation, derived from tuples on first need."""
        if self._order is None or self._sizes is None:
            assert self._classes is not None
            self._order = np.fromiter(
                (index for cls in self._classes for index in cls),
                dtype=np.int64,
                count=self._covered,
            )
            self._sizes = np.fromiter(
                (len(cls) for cls in self._classes),
                dtype=np.int64,
                count=len(self._classes),
            )
        return self._order, self._sizes

    def refine(self, labels: "Sequence[object] | NDArray[np.int64]") -> "Partition":
        """Refine this partition by an extra attribute's row labels.

        ``labels[i]`` is row ``i``'s value on the extra attribute; rows whose
        label is NULL drop out.  Equivalent to the TANE partition product
        ``Π_X · Π_{A}`` restricted to non-NULL rows.  *labels* may be either
        raw values (NULL-aware) or a dictionary-code array (``-1`` = NULL).
        """
        if isinstance(labels, np.ndarray):
            return self._refine_codes(labels)
        refined: list[tuple[int, ...]] = []
        # Row-plane reference refinement; codes take _refine_codes above.
        # qpiadlint: disable-next-line=row-loop-in-mining
        for cls in self.classes:
            groups: dict[object, list[int]] = {}
            for index in cls:
                label = labels[index]
                if is_null(label):
                    continue
                groups.setdefault(label, []).append(index)
            refined.extend(tuple(group) for group in groups.values())
        return Partition(refined)

    def _refine_codes(self, codes: "NDArray[np.int64]") -> "Partition":
        """Sort-based refinement by a dictionary-code column."""
        order, sizes = self._arrays()
        if order.shape[0] == 0:
            return self
        group_ids = np.repeat(np.arange(sizes.shape[0], dtype=np.int64), sizes)
        labels = codes[order]
        valid = labels >= 0
        order_v = order[valid]
        if order_v.shape[0] == 0:
            return Partition._from_arrays(order_v, np.zeros(0, dtype=np.int64))
        group_v = group_ids[valid]
        labels_v = labels[valid]
        width = int(labels_v.max()) + 1
        combined = group_v * width + labels_v
        sorter = np.argsort(combined, kind="stable")
        sorted_keys = combined[sorter]
        boundary = np.empty(sorted_keys.shape[0], dtype=np.bool_)
        boundary[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        new_sizes = np.diff(np.append(starts, sorted_keys.shape[0]))
        return Partition._from_arrays(order_v[sorter], new_sizes)

    def covered_with(self, labels: "NDArray[np.int64]") -> int:
        """Covered rows that are also non-NULL under a code column."""
        order, _ = self._arrays()
        return int((labels[order] >= 0).sum())

    def extend(
        self, columns: "Sequence[NDArray[np.int64]]", start: int
    ) -> "Partition":
        """Fold rows ``start..`` of *columns* into this partition.

        *columns* are full-length dictionary-code arrays over a grown
        relation whose first ``start`` rows are exactly the rows this
        partition was built over.  Dictionary codes are minted first-seen,
        so growing a relation never re-codes its existing prefix; batch
        rows are partitioned with the same argsort kernels and merged into
        the existing classes by their representative code key.  The result
        has the same classes as ``partition_from_codes(columns)`` over the
        full relation (class order may differ, which no error measure
        depends on; members within a class stay ascending).
        """
        order, sizes = self._arrays()
        batch = partition_from_codes([column[start:] for column in columns])
        b_order, b_sizes = batch._arrays()
        if b_order.shape[0] == 0:
            return Partition._from_arrays(order, sizes)
        k_old = int(sizes.shape[0])
        old_starts = np.cumsum(sizes) - sizes
        b_starts = np.cumsum(b_sizes) - b_sizes
        key_of: dict[tuple[int, ...], int] = {}
        if k_old:
            reps = order[old_starts]
            stacked = np.stack([column[reps] for column in columns], axis=1)
            for position, key in enumerate(stacked.tolist()):
                key_of[tuple(key)] = position
        b_reps = b_order[b_starts] + start
        b_stacked = np.stack([column[b_reps] for column in columns], axis=1)
        added = np.zeros(k_old, dtype=np.int64)
        dest = np.empty(b_sizes.shape[0], dtype=np.int64)
        fresh = k_old
        # Per-class (not per-row) matching of batch classes to old classes.
        for j, key in enumerate(b_stacked.tolist()):
            position = key_of.get(tuple(key))
            if position is None:
                dest[j] = fresh
                fresh += 1
            else:
                dest[j] = position
                added[position] += b_sizes[j]
        merged_sizes = np.empty(fresh, dtype=np.int64)
        merged_sizes[:k_old] = sizes + added
        is_new = dest >= k_old
        merged_sizes[dest[is_new]] = b_sizes[is_new]
        merged_starts = np.cumsum(merged_sizes) - merged_sizes
        merged_order = np.empty(order.shape[0] + b_order.shape[0], dtype=np.int64)
        if order.shape[0]:
            offsets = np.arange(order.shape[0], dtype=np.int64) - np.repeat(
                old_starts, sizes
            )
            merged_order[np.repeat(merged_starts[:k_old], sizes) + offsets] = order
        base = merged_starts[dest]
        base[~is_new] += sizes[dest[~is_new]]
        b_offsets = np.arange(b_order.shape[0], dtype=np.int64) - np.repeat(
            b_starts, b_sizes
        )
        merged_order[np.repeat(base, b_sizes) + b_offsets] = b_order + start
        return Partition._from_arrays(merged_order, merged_sizes)


def partition_by(relation: Relation, attributes: Sequence[str]) -> Partition:
    """Partition *relation*'s row indices by their values on *attributes*."""
    indices = relation.schema.indices_of(attributes)
    groups: dict[tuple, list[int]] = {}
    # This IS the row-plane kernel; the columnar plane routes to
    # partition_from_codes instead.
    # qpiadlint: disable-next-line=row-loop-in-mining
    for row_index, row in enumerate(relation.rows):
        key = tuple(row[i] for i in indices)
        if any(is_null(value) for value in key):
            continue
        groups.setdefault(key, []).append(row_index)
    return Partition(list(groups.values()))


def partition_from_codes(columns: "Sequence[NDArray[np.int64]]") -> Partition:
    """Partition row indices by one or more dictionary-code columns.

    The columnar counterpart of :func:`partition_by`: grouping dictionary
    codes with a stable sort yields exactly the classes dict-grouping of the
    decoded values would, because codes were assigned with the same ``dict``
    equality.  Single-column classes even come out in first-seen value order
    (codes are minted in first-seen order); refinements do not preserve that
    order, which no consumer depends on.
    """
    if not columns:
        raise ValueError("partition_from_codes requires at least one column")
    codes = columns[0]
    valid = np.flatnonzero(codes >= 0)
    if valid.shape[0] == 0:
        partition = Partition._from_arrays(valid, np.zeros(0, dtype=np.int64))
    else:
        labels = codes[valid]
        sorter = np.argsort(labels, kind="stable")
        sorted_labels = labels[sorter]
        boundary = np.empty(sorted_labels.shape[0], dtype=np.bool_)
        boundary[0] = True
        np.not_equal(sorted_labels[1:], sorted_labels[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        sizes = np.diff(np.append(starts, sorted_labels.shape[0]))
        partition = Partition._from_arrays(valid[sorter], sizes)
    for column in columns[1:]:
        partition = partition.refine(column)
    return partition


def g3_stats(
    x_partition: Partition,
    dependent_labels: "Sequence[object] | NDArray[np.int64]",
) -> "tuple[int, int]":
    """The integer pair ``(covered, kept)`` underlying the ``g3`` error.

    ``covered`` is the number of rows measured (non-NULL on ``X`` and on
    ``A``); ``kept`` is the number of rows retained when each X-class keeps
    only its majority A-value.  Both are exact integers, so they can be
    maintained incrementally and re-divided later without drift.
    """
    if isinstance(dependent_labels, np.ndarray):
        return _g3_stats_codes(x_partition, dependent_labels)
    kept = 0
    covered = 0
    # Row-plane reference g3; code arrays take _g3_stats_codes above.
    # qpiadlint: disable-next-line=row-loop-in-mining
    for cls in x_partition.classes:
        counts: Counter = Counter()
        for index in cls:
            label = dependent_labels[index]
            if is_null(label):
                continue
            counts[label] += 1
        if not counts:
            continue
        class_total = sum(counts.values())
        covered += class_total
        kept += max(counts.values())
    return covered, kept


def g3_error(
    x_partition: Partition,
    dependent_labels: "Sequence[object] | NDArray[np.int64]",
) -> float:
    """The ``g3`` error of ``X ⇝ A`` given ``Π_X`` and A's row labels.

    ``g3`` is the minimum fraction of rows that must be removed for the
    dependency to hold exactly: within each X-class, keep the rows of the
    majority A-value and remove the rest.  Rows NULL on A are excluded from
    both numerator and denominator.  Returns 0.0 when no row is covered
    (vacuously exact).  *dependent_labels* may be raw values or a
    dictionary-code array (``-1`` = NULL); both yield the same error.
    """
    covered, kept = g3_stats(x_partition, dependent_labels)
    if covered == 0:
        return 0.0
    return (covered - kept) / covered


def _g3_stats_codes(
    x_partition: Partition, dependent_codes: "NDArray[np.int64]"
) -> "tuple[int, int]":
    """``g3`` stats via (class, code) pair counting; same int arithmetic."""
    order, sizes = x_partition._arrays()
    if order.shape[0] == 0:
        return 0, 0
    group_ids = np.repeat(np.arange(sizes.shape[0], dtype=np.int64), sizes)
    labels = dependent_codes[order]
    valid = labels >= 0
    labels_v = labels[valid]
    covered = int(labels_v.shape[0])
    if covered == 0:
        return 0, 0
    group_v = group_ids[valid]
    width = int(labels_v.max()) + 1
    combined = group_v * width + labels_v
    pairs, counts = np.unique(combined, return_counts=True)
    pair_groups = pairs // width
    boundary = np.empty(pair_groups.shape[0], dtype=np.bool_)
    boundary[0] = True
    np.not_equal(pair_groups[1:], pair_groups[:-1], out=boundary[1:])
    kept = int(np.maximum.reduceat(counts, np.flatnonzero(boundary)).sum())
    return covered, kept


def class_counts(
    partition: Partition, columns: "Sequence[NDArray[np.int64]]"
) -> "dict[tuple[int, ...], int]":
    """Map each class's representative code key to its class size.

    *columns* must be the code arrays *partition* was built over (row
    indices in the partition index into them).  Because all rows of a class
    share the same codes, reading the codes at one representative row per
    class recovers the full value-combination histogram — the sufficient
    statistic incremental mining folds batches into.
    """
    order, sizes = partition._arrays()
    if sizes.shape[0] == 0:
        return {}
    starts = np.cumsum(sizes) - sizes
    reps = order[starts]
    stacked = np.stack([column[reps] for column in columns], axis=1)
    return {
        tuple(key): int(size)
        for key, size in zip(stacked.tolist(), sizes.tolist())
    }


def code_histogram(
    columns: "Sequence[NDArray[np.int64]]",
) -> "dict[tuple[int, ...], int]":
    """The value-combination histogram of one or more code columns.

    Equivalent to ``class_counts(partition_from_codes(columns), columns)``
    — rows NULL (``-1``) on any column drop out, and each surviving code
    combination maps to its row count — but computed with a single
    mixed-radix ``np.unique`` instead of building partition classes.  This
    is the kernel incremental mining folds batches with, where only the
    histogram (never the row classes) is needed.  Falls back to the
    partition route if the radix product would overflow int64.
    """
    return dict(code_histogram_items(columns))


def code_histogram_items(
    columns: "Sequence[NDArray[np.int64]]",
) -> "Iterable[tuple[tuple[int, ...], int]]":
    """:func:`code_histogram` as an iterable of ``(combo, count)`` pairs.

    Saves materializing an intermediate dict when the consumer folds the
    pairs straight into its own accumulator (the incremental mining state).
    """
    if not columns:
        raise ValueError("code_histogram requires at least one column")
    valid = columns[0] >= 0
    for column in columns[1:]:
        valid = valid & (column >= 0)
    rows = np.flatnonzero(valid)
    if rows.shape[0] == 0:
        return ()
    combined = columns[0][rows]
    for column in columns[1:]:
        codes = column[rows]
        width = int(codes.max()) + 1
        if int(combined.max()) > (2**62) // max(width, 1):
            return class_counts(partition_from_codes(columns), columns).items()
        combined = combined * width + codes
    _, first, counts = np.unique(combined, return_index=True, return_counts=True)
    reps = rows[first]
    stacked = np.stack([column[reps] for column in columns], axis=1)
    return zip(map(tuple, stacked.tolist()), map(int, counts.tolist()))


def key_error(x_partition: Partition) -> float:
    """The ``g3`` error of ``X`` as a key: fraction of rows to remove so all
    X-values are unique (one row kept per class)."""
    if x_partition.covered == 0:
        return 0.0
    return (x_partition.covered - len(x_partition)) / x_partition.covered
