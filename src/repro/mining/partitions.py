"""Equivalence-class partitions for dependency discovery.

TANE-style AFD mining works on *partitions*: the rows of a relation grouped
by their values on an attribute set ``X``.  The ``g3`` error of ``X ⇝ A``
(Kivinen & Mannila) and the key error of ``X`` are both simple functions of
these partitions.

NULL handling: a row with NULL on any attribute of ``X`` carries no evidence
about the dependency, so it is excluded from the partition; error measures
are normalized by the number of rows actually partitioned.  This matters in
QPIAD because the mined sample itself is incomplete.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.relational.relation import Relation
from repro.relational.values import is_null

__all__ = ["Partition", "partition_by", "g3_error", "key_error"]


class Partition:
    """Grouping of row indices by equal values over an attribute set.

    Attributes
    ----------
    classes:
        Tuple of equivalence classes; each class is a tuple of row indices
        (ascending).  Classes cover exactly the rows that are non-NULL on
        every grouping attribute.
    covered:
        Total number of rows partitioned (sum of class sizes).
    """

    __slots__ = ("classes", "covered")

    def __init__(self, classes: Sequence[Sequence[int]]):
        self.classes = tuple(tuple(c) for c in classes)
        self.covered = sum(len(c) for c in self.classes)

    def __len__(self) -> int:
        return len(self.classes)

    def refine(self, labels: Sequence[object]) -> "Partition":
        """Refine this partition by an extra attribute's row labels.

        ``labels[i]`` is row ``i``'s value on the extra attribute; rows whose
        label is NULL drop out.  Equivalent to the TANE partition product
        ``Π_X · Π_{A}`` restricted to non-NULL rows.
        """
        refined: list[tuple[int, ...]] = []
        for cls in self.classes:
            groups: dict[object, list[int]] = {}
            for index in cls:
                label = labels[index]
                if is_null(label):
                    continue
                groups.setdefault(label, []).append(index)
            refined.extend(tuple(group) for group in groups.values())
        return Partition(refined)


def partition_by(relation: Relation, attributes: Sequence[str]) -> Partition:
    """Partition *relation*'s row indices by their values on *attributes*."""
    indices = relation.schema.indices_of(attributes)
    groups: dict[tuple, list[int]] = {}
    for row_index, row in enumerate(relation.rows):
        key = tuple(row[i] for i in indices)
        if any(is_null(value) for value in key):
            continue
        groups.setdefault(key, []).append(row_index)
    return Partition(list(groups.values()))


def g3_error(x_partition: Partition, dependent_labels: Sequence[object]) -> float:
    """The ``g3`` error of ``X ⇝ A`` given ``Π_X`` and A's row labels.

    ``g3`` is the minimum fraction of rows that must be removed for the
    dependency to hold exactly: within each X-class, keep the rows of the
    majority A-value and remove the rest.  Rows NULL on A are excluded from
    both numerator and denominator.  Returns 0.0 when no row is covered
    (vacuously exact).
    """
    kept = 0
    covered = 0
    for cls in x_partition.classes:
        counts: Counter = Counter()
        for index in cls:
            label = dependent_labels[index]
            if is_null(label):
                continue
            counts[label] += 1
        if not counts:
            continue
        class_total = sum(counts.values())
        covered += class_total
        kept += max(counts.values())
    if covered == 0:
        return 0.0
    return (covered - kept) / covered


def key_error(x_partition: Partition) -> float:
    """The ``g3`` error of ``X`` as a key: fraction of rows to remove so all
    X-values are unique (one row kept per class)."""
    if x_partition.covered == 0:
        return 0.0
    return (x_partition.covered - len(x_partition)) / x_partition.covered
