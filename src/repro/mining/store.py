"""Atomic holder for the currently-installed knowledge generation.

A mediator stack serving concurrent queries cannot read a bare
:class:`~repro.mining.knowledge.KnowledgeBase` attribute while a refresh
replaces it: a query that picked up the old AFDs must not suddenly see the
new classifiers halfway through planning.  The :class:`KnowledgeStore`
mediates that hand-off.  Refreshers :meth:`install` a *new, frozen*
generation; readers take a per-query snapshot via :attr:`current` and use
that one object for the query's whole lifetime.  Because every generation
carries its own fingerprint and the plan cache keys on it (PR 5),
installing a generation invalidates stale plans by construction — no
explicit cache flush is needed, and no lock is held while planning.

``as_store`` lets every constructor accept either a raw knowledge base
(wrapped into a fresh store — the common single-shot CLI path) or a shared
store (the long-running service path), so call sites stay source-compatible.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.mining.knowledge import KnowledgeBase

__all__ = ["KnowledgeStore", "as_store", "resolve_knowledge"]


class KnowledgeStore:
    """Thread-safe, atomically-swappable reference to a knowledge generation."""

    __slots__ = ("_lock", "_current")

    def __init__(self, knowledge: "KnowledgeBase"):
        self._lock = threading.Lock()
        self._current = knowledge

    @property
    def current(self) -> "KnowledgeBase":
        """Snapshot of the installed generation.

        Callers must hold on to the returned object for the duration of one
        logical operation (a query, a plan, a refresh) rather than re-read
        this property mid-flight — that is what makes swaps atomic from the
        reader's point of view.
        """
        with self._lock:
            return self._current

    def install(self, knowledge: "KnowledgeBase") -> "KnowledgeBase":
        """Atomically publish a new generation; returns the one it replaced.

        In-flight queries keep the snapshot they took; new snapshots see
        the new generation.  The new generation's fingerprint differs from
        the old one's whenever the mined payload changed, so plan-cache
        entries keyed on the old fingerprint can never be served against
        the new knowledge.
        """
        with self._lock:
            previous = self._current
            self._current = knowledge
            return previous

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        current = self.current
        return f"KnowledgeStore(epoch={current.epoch}, id={id(self):#x})"


def as_store(knowledge: "Union[KnowledgeBase, KnowledgeStore]") -> KnowledgeStore:
    """Wrap a bare knowledge base in a store; pass stores through unchanged.

    Passing the store through (rather than re-wrapping) is what lets many
    mediators share one holder: installing a refreshed generation in any of
    them is visible to all.
    """
    if isinstance(knowledge, KnowledgeStore):
        return knowledge
    return KnowledgeStore(knowledge)


def resolve_knowledge(
    knowledge: "Union[KnowledgeBase, KnowledgeStore]",
) -> "KnowledgeBase":
    """Snapshot a generation from either a bare knowledge base or a store."""
    if isinstance(knowledge, KnowledgeStore):
        return knowledge.current
    return knowledge
