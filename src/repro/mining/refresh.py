"""Incremental, versioned refresh of mined knowledge.

QPIAD mines its statistics once, offline; the autonomous sources it
mediates drift underneath.  This module turns the one-shot mining layer
into an incrementally-maintained one:

* :class:`KnowledgeRefresher` folds a fresh sample batch into the current
  knowledge generation — stripped-partition fold-in for TANE (histogram
  statistics + :meth:`Partition.extend`), ``g3`` confidence re-measurement
  from exact integer counts, NBC count-matrix addition over the batch only,
  and exact selectivity updates — and installs the result as a *new*
  generation (epoch + 1, lineage extended) in a
  :class:`~repro.mining.store.KnowledgeStore`.
* :meth:`KnowledgeRefresher.refresh_if_stale` is the drift-triggered
  policy: probe, :func:`~repro.mining.drift.detect_drift`, fold, swap.

The refresh invariant — tested in ``tests/mining/test_refresh.py`` and
benchmarked in ``benchmarks/bench_refresh.py`` — is that folding batches
``B1..Bn`` into a knowledge base mined on ``S`` yields a generation whose
:meth:`fingerprint` equals a full re-mine on ``S ∪ B1..Bn``: every folded
statistic is an exact integer fed through the same float arithmetic as the
one-shot kernels.  Whenever that cannot be guaranteed (bin edges moved,
opaque columns, row plane active), the refresher transparently falls back
to a full re-mine — more expensive, identical result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.errors import MiningError
from repro.mining.discretization import Discretizer
from repro.mining.drift import DriftReport, detect_drift
from repro.mining.knowledge import KnowledgeBase
from repro.mining.pruning import prune_noisy_afds
from repro.mining.store import KnowledgeStore, as_store
from repro.mining.tane import (
    IncrementalMiningUnavailable,
    MiningState,
    TaneResult,
    mine_dependencies_incremental,
)
from repro.relational.columnar import use_columnar
from repro.relational.relation import Relation
from repro.telemetry import SpanKind, Telemetry, maybe_span

__all__ = ["KnowledgeRefresher", "RefreshResult"]


@dataclass(frozen=True)
class RefreshResult:
    """What one refresh attempt did.

    ``mode`` is ``"incremental"`` (statistics folded), ``"full"`` (fell
    back to a complete re-mine of the union sample — same result, higher
    cost), or ``"skipped"`` (:meth:`KnowledgeRefresher.refresh_if_stale`
    found no drift and left the installed generation alone).
    """

    knowledge: KnowledgeBase
    mode: str
    refreshed: bool
    epoch: int
    fingerprint: str
    previous_fingerprint: str
    rows_folded: int
    seconds: float
    drift: "DriftReport | None" = None


class KnowledgeRefresher:
    """Folds sample batches into versioned knowledge generations.

    The refresher owns the mutable side of knowledge maintenance so the
    generations themselves can stay frozen: it keeps the incremental
    mining state (histograms + root partitions) between refreshes, builds
    each new generation, and installs it atomically in the shared
    :class:`KnowledgeStore`.  Mediators and planners that read through the
    same store pick up the new generation at their next per-query
    snapshot; their plan caches miss by construction because the
    fingerprint changed.

    One refresher should drive one store.  If the store is swapped by
    someone else between refreshes, the fingerprint guard notices and the
    mining state is re-seeded rather than silently folded onto the wrong
    base.
    """

    def __init__(
        self,
        knowledge: "KnowledgeBase | KnowledgeStore",
        *,
        telemetry: "Telemetry | None" = None,
    ):
        self._store = as_store(knowledge)
        self._telemetry = telemetry
        self._state: "MiningState | None" = None
        self._state_fingerprint: "str | None" = None

    @property
    def store(self) -> KnowledgeStore:
        """The store refreshed generations are installed into."""
        return self._store

    @property
    def knowledge(self) -> KnowledgeBase:
        """Snapshot of the currently-installed generation."""
        return self._store.current

    # ------------------------------------------------------------------
    # Priming
    # ------------------------------------------------------------------

    def prime(self) -> bool:
        """Pre-build incremental mining state from the current generation.

        Seeding walks the mining lattice once over the current sample to
        populate the fold-in histograms and root partitions; afterwards
        each refresh touches only its batch.  Without priming, the first
        refresh absorbs this cost (it seeds over the union instead).
        Returns False — leaving the refresher unprimed but usable — when
        the current generation cannot be mined incrementally.
        """
        base = self._store.current
        config = base.config
        if not use_columnar():
            return False
        state = MiningState(self._mining_names(base))
        try:
            mine_dependencies_incremental(base._mining_view, config.tane, state)
        except IncrementalMiningUnavailable:
            return False
        self._state = state
        self._state_fingerprint = base.fingerprint()
        return True

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def refresh(
        self, batch: Relation, *, database_size: "int | None" = None
    ) -> RefreshResult:
        """Fold *batch* into the installed generation and swap the result in.

        *batch* must share the sample's schema and be non-empty.  When
        *database_size* is given it replaces the advertised cardinality
        (sources grow along with their distributions); otherwise the base
        generation's size is kept.
        """
        base = self._store.current
        if not len(batch):
            raise MiningError("cannot refresh knowledge from an empty batch")
        if batch.schema != base.sample.schema:
            raise MiningError(
                "refresh batch schema does not match the mined sample's schema"
            )
        size = base.database_size if database_size is None else database_size
        telemetry = self._telemetry
        started = time.perf_counter()
        with maybe_span(
            telemetry, "knowledge refresh", SpanKind.REFRESH, rows=len(batch)
        ) as span:
            sample = base.sample.concat_encoded(batch)
            mode, mined, discretizer, mining_view = self._mine(base, batch, sample)
            afds = tuple(
                prune_noisy_afds(
                    list(mined.afds), list(mined.akeys), base.config.pruning_delta
                )
            )
            selectivity = base.selectivity.extended(batch, size, union=sample)
            from repro.planner.fingerprint import relation_fingerprint

            lineage = base.lineage.extended(
                relation_fingerprint(batch), base.fingerprint()
            )
            refreshed = KnowledgeBase._from_parts(
                config=base.config,
                sample=sample,
                database_size=size,
                discretizer=discretizer,
                mining_view=mining_view,
                all_afds=tuple(mined.afds),
                afds=afds,
                akeys=tuple(mined.akeys),
                selectivity=selectivity,
                epoch=base.epoch + 1,
                lineage=lineage,
            )
            if mode == "incremental":
                self._state_fingerprint = refreshed.fingerprint()
                self._prewarm_classifiers(base, refreshed, batch, discretizer)
            else:
                self._state = None
                self._state_fingerprint = None
            self._store.install(refreshed)
            if span is not None:
                span.set(mode=mode, epoch=refreshed.epoch)
        elapsed = time.perf_counter() - started
        if telemetry is not None:
            telemetry.count("knowledge.refresh_total")
            telemetry.count(f"knowledge.refresh_{mode}")
            telemetry.count("knowledge.refresh_rows_folded", len(batch))
            telemetry.observe("knowledge.refresh_seconds", elapsed)
        return RefreshResult(
            knowledge=refreshed,
            mode=mode,
            refreshed=True,
            epoch=refreshed.epoch,
            fingerprint=refreshed.fingerprint(),
            previous_fingerprint=base.fingerprint(),
            rows_folded=len(batch),
            seconds=elapsed,
        )

    def refresh_if_stale(
        self,
        fresh_sample: Relation,
        *,
        confidence_tolerance: float = 0.15,
        distribution_tolerance: float = 0.25,
        min_support: int = 20,
        database_size: "int | None" = None,
    ) -> RefreshResult:
        """The drift-triggered policy: probe, detect, fold, swap.

        *fresh_sample* is a newly-probed batch from the source.  When
        :func:`detect_drift` finds the installed generation stale against
        it, the batch is folded in via :meth:`refresh`; otherwise nothing
        is installed and the result reports ``mode="skipped"``.  Either
        way the :class:`~repro.mining.drift.DriftReport` rides along.
        """
        base = self._store.current
        report = detect_drift(
            base,
            fresh_sample,
            confidence_tolerance=confidence_tolerance,
            distribution_tolerance=distribution_tolerance,
            min_support=min_support,
        )
        if not report.is_stale:
            if self._telemetry is not None:
                self._telemetry.count("knowledge.refresh_skipped_fresh")
            fingerprint = base.fingerprint()
            return RefreshResult(
                knowledge=base,
                mode="skipped",
                refreshed=False,
                epoch=base.epoch,
                fingerprint=fingerprint,
                previous_fingerprint=fingerprint,
                rows_folded=0,
                seconds=0.0,
                drift=report,
            )
        result = self.refresh(fresh_sample, database_size=database_size)
        return replace(result, drift=report)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _mining_names(base: KnowledgeBase) -> tuple[str, ...]:
        tane = base.config.tane
        return tuple(tane.attributes or base._mining_view.schema.names)

    def _mine(
        self, base: KnowledgeBase, batch: Relation, sample: Relation
    ) -> "tuple[str, TaneResult, Discretizer | None, Relation]":
        """Mine the union sample, incrementally when soundness allows.

        The incremental path requires (a) the columnar plane with fully
        encoded mining columns and (b) the discretizer fitted on the union
        to produce the *same bin edges* as the base's — otherwise the
        historical rows' bucket labels would change and the folded
        histograms would describe a view that no longer exists.  Any
        violation falls back to a full re-mine, which by the equivalence
        invariant produces the identical result.
        """
        config = base.config
        if config.discretize_bins:
            discretizer: "Discretizer | None" = Discretizer(
                sample,
                bins=config.discretize_bins,
                strategy=config.discretize_strategy,
            )
        else:
            discretizer = None
        base_discretizer = base._discretizer
        same_bins = (
            discretizer is None
            and base_discretizer is None
        ) or (
            discretizer is not None
            and base_discretizer is not None
            and discretizer.to_bins() == base_discretizer.to_bins()
        )
        if same_bins and use_columnar():
            if discretizer is not None:
                mining_view = base._mining_view.concat_encoded(
                    discretizer.transform(batch)
                )
            else:
                mining_view = sample
            try:
                mined = self._mine_incremental(base, mining_view)
            except IncrementalMiningUnavailable:
                pass
            else:
                return "incremental", mined, discretizer, mining_view
        fresh = KnowledgeBase(sample, database_size=base.database_size, config=config)
        result = TaneResult(afds=list(fresh.all_afds), akeys=list(fresh.akeys))
        return "full", result, fresh._discretizer, fresh._mining_view

    def _mine_incremental(
        self, base: KnowledgeBase, mining_view: Relation
    ) -> TaneResult:
        state = self._state
        if state is None or self._state_fingerprint != base.fingerprint():
            # First refresh, or the store was swapped underneath us: the
            # saved state describes some other generation's rows.  Re-seed
            # over the union (one lattice walk; subsequent refreshes fold).
            state = MiningState(self._mining_names(base))
        mined = mine_dependencies_incremental(mining_view, base.config.tane, state)
        self._state = state
        return mined

    def _prewarm_classifiers(
        self,
        base: KnowledgeBase,
        refreshed: KnowledgeBase,
        batch: Relation,
        discretizer: "Discretizer | None",
    ) -> None:
        """Carry classifier caches across the swap via count-matrix addition.

        Only single-NBC wrappers whose feature selection is unchanged under
        the refreshed AFDs are carried over (their count matrices extend
        additively, so the result equals a lazy retrain on the union view).
        Everything else is simply dropped — the refreshed generation
        retrains it lazily on first use, which is equivalent by
        construction.  Training-view memos extend the same way.
        """
        from repro.mining.classifiers import (
            HYBRID_CONFIDENCE_FLOOR,
            AllAttributesClassifier,
            BestAfdClassifier,
            HybridOneAfdClassifier,
            _best_afd_for,
            _SingleNbcClassifier,
        )

        if discretizer is not None:
            for attribute, view in base._training_views.items():
                refreshed._training_views[attribute] = view.concat_encoded(
                    discretizer.transform(batch, exclude={attribute})
                )
        for (attribute, method), classifier in base._classifiers.items():
            if not isinstance(classifier, _SingleNbcClassifier):
                continue
            other = [
                name
                for name in refreshed.sample.schema.names
                if name != attribute
            ]
            afd = _best_afd_for(refreshed.afds, attribute)
            if isinstance(classifier, HybridOneAfdClassifier):
                if afd is not None and afd.confidence >= HYBRID_CONFIDENCE_FLOOR:
                    features = list(afd.determining)
                else:
                    afd = None
                    features = other
            elif isinstance(classifier, BestAfdClassifier):
                features = list(afd.determining) if afd is not None else other
            elif isinstance(classifier, AllAttributesClassifier):
                afd = None
                features = other
            else:
                continue
            if tuple(features) != classifier._nbc.features:
                continue  # feature selection moved: let it retrain lazily
            if discretizer is not None:
                batch_view = discretizer.transform(batch, exclude={attribute})
            else:
                batch_view = batch
            clone = object.__new__(type(classifier))
            clone.attribute = attribute
            if isinstance(classifier, (BestAfdClassifier, HybridOneAfdClassifier)):
                clone.afd = afd
            clone._nbc = classifier._nbc.extended(batch_view)
            refreshed._classifiers[(attribute, method)] = clone
