"""Detecting staleness of mined knowledge (statistics drift).

QPIAD mines its statistics once, off-line.  Autonomous web databases keep
changing underneath: inventory turns over, new models appear, correlations
shift.  A production mediator periodically probes a *fresh* sample and asks
whether the knowledge base still describes the source.  This module answers
that with two complementary checks:

* **dependency drift** — re-measure each mined AFD's ``g3`` confidence on
  the fresh sample and flag those whose confidence moved by more than a
  tolerance (or can no longer be measured);
* **distribution drift** — compare each attribute's value distribution via
  total variation distance between the old and fresh samples.

The output is a :class:`DriftReport` with a single ``is_stale`` verdict the
operator can alert on, plus per-finding detail.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import MiningError
from repro.mining.knowledge import KnowledgeBase
from repro.mining.partitions import g3_error, partition_by
from repro.relational.relation import Relation

__all__ = [
    "AfdDrift",
    "DistributionDrift",
    "DriftReport",
    "detect_drift",
    "drift_payload",
    "render_drift_text",
]


@dataclass(frozen=True)
class AfdDrift:
    """One AFD whose confidence moved beyond the tolerance."""

    determining: tuple[str, ...]
    dependent: str
    mined_confidence: float
    fresh_confidence: float | None  # None: not measurable on the fresh sample

    @property
    def shift(self) -> float:
        if self.fresh_confidence is None:
            return self.mined_confidence
        return abs(self.mined_confidence - self.fresh_confidence)


@dataclass(frozen=True)
class DistributionDrift:
    """One attribute whose value distribution moved."""

    attribute: str
    total_variation: float


@dataclass
class DriftReport:
    """Everything the drift check found."""

    afd_drifts: list[AfdDrift] = field(default_factory=list)
    distribution_drifts: list[DistributionDrift] = field(default_factory=list)
    afds_checked: int = 0
    attributes_checked: int = 0

    @property
    def is_stale(self) -> bool:
        return bool(self.afd_drifts or self.distribution_drifts)


def drift_payload(report: DriftReport) -> dict:
    """The report as a JSON-serializable dict (``qpiad drift --json``)."""
    return {
        "is_stale": report.is_stale,
        "afds_checked": report.afds_checked,
        "attributes_checked": report.attributes_checked,
        "afd_drifts": [
            {
                "determining": list(drift.determining),
                "dependent": drift.dependent,
                "mined_confidence": drift.mined_confidence,
                "fresh_confidence": drift.fresh_confidence,
                "shift": drift.shift,
            }
            for drift in report.afd_drifts
        ],
        "distribution_drifts": [
            {"attribute": drift.attribute, "total_variation": drift.total_variation}
            for drift in report.distribution_drifts
        ],
    }


def render_drift_text(report: DriftReport) -> str:
    """Human-readable rendering of a :class:`DriftReport`."""
    verdict = "STALE" if report.is_stale else "fresh"
    lines = [
        f"drift: {verdict} "
        f"({len(report.afd_drifts)} AFD / "
        f"{len(report.distribution_drifts)} distribution finding(s); "
        f"checked {report.afds_checked} AFDs, "
        f"{report.attributes_checked} attributes)"
    ]
    for afd in report.afd_drifts:
        lhs = ", ".join(afd.determining)
        if afd.fresh_confidence is None:
            moved = "unmeasurable on the fresh sample"
        else:
            moved = f"{afd.mined_confidence:.3f} -> {afd.fresh_confidence:.3f}"
        lines.append(f"  AFD {{{lhs}}} -> {afd.dependent}: confidence {moved}")
    for dist in report.distribution_drifts:
        lines.append(
            f"  distribution {dist.attribute}: "
            f"total variation {dist.total_variation:.3f}"
        )
    return "\n".join(lines)


def _total_variation(old: Relation, fresh: Relation, attribute: str) -> float:
    """Total variation distance between two samples' value distributions."""
    old_counts: Counter = old.value_counts(attribute)
    fresh_counts: Counter = fresh.value_counts(attribute)
    old_total = sum(old_counts.values())
    fresh_total = sum(fresh_counts.values())
    if old_total == 0 or fresh_total == 0:
        return 0.0
    values = set(old_counts) | set(fresh_counts)
    return 0.5 * sum(
        abs(old_counts[v] / old_total - fresh_counts[v] / fresh_total)
        for v in values
    )


def detect_drift(
    knowledge: KnowledgeBase,
    fresh_sample: Relation,
    confidence_tolerance: float = 0.15,
    distribution_tolerance: float = 0.25,
    min_support: int = 20,
) -> DriftReport:
    """Compare *knowledge* against a freshly probed sample.

    Parameters
    ----------
    knowledge:
        The (possibly stale) mined statistics.
    fresh_sample:
        A new sample probed from the source, same schema as the original.
    confidence_tolerance:
        Flag an AFD when its confidence moved by more than this.
    distribution_tolerance:
        Flag an attribute when the total variation distance between the old
        and fresh value distributions exceeds this.
    min_support:
        AFDs whose determining set covers fewer fresh rows than this are
        flagged as unmeasurable rather than compared on noise.
    """
    if fresh_sample.schema != knowledge.sample.schema:
        raise MiningError(
            "fresh sample schema differs from the knowledge base's sample; "
            "drift detection compares like with like"
        )
    report = DriftReport()

    # Use the SAME bucketing the knowledge base mined with, so AFD
    # confidences are measured in the same space.
    discretizer = knowledge._discretizer
    fresh_view = (
        discretizer.transform(fresh_sample) if discretizer is not None else fresh_sample
    )

    for afd in knowledge.afds:
        report.afds_checked += 1
        partition = partition_by(fresh_view, list(afd.determining))
        if partition.covered < min_support:
            report.afd_drifts.append(
                AfdDrift(afd.determining, afd.dependent, afd.confidence, None)
            )
            continue
        confidence = 1.0 - g3_error(partition, fresh_view.column(afd.dependent))
        if abs(confidence - afd.confidence) > confidence_tolerance:
            report.afd_drifts.append(
                AfdDrift(afd.determining, afd.dependent, afd.confidence, confidence)
            )

    old_view = knowledge.sample
    mining_old = (
        knowledge._discretizer.transform(old_view)
        if knowledge._discretizer is not None
        else old_view
    )
    for attribute in fresh_sample.schema.names:
        report.attributes_checked += 1
        distance = _total_variation(mining_old, fresh_view, attribute)
        if distance > distribution_tolerance:
            report.distribution_drifts.append(
                DistributionDrift(attribute, distance)
            )
    return report
