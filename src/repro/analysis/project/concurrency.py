"""Interprocedural lock-discipline pass.

PR 4's concurrent executor made a handful of classes shared mutable
state — ``AccessStatistics``, ``MetricsRegistry``, ``Tracer``,
``FaultInjectingSource`` — and established, by hand, the invariant that
every write to their shared attributes happens under the instance lock.
This pass pins that invariant:

1. compute the set of callables that may run on a worker thread
   (:meth:`CallGraph.thread_reachable`);
2. for each class with at least one method reachable that way, collect
   its **guarded attribute paths**: ``self.<path>`` targets assigned (or
   mutated through ``append``/``update``/…) inside a ``with
   self._lock:`` / ``with self._mutex:`` block anywhere in the class;
3. flag every write to a guarded path outside a lock context.

``__init__`` / ``__post_init__`` / ``__new__`` are exempt — the instance
is not yet shared while it is being constructed.  Paths are compared by
prefix in both directions, so replacing a guarded container
(``self._entries = {}``) and writing a field of a guarded object
(``self.statistics.calls``) are both caught.  Writes to *other* objects'
guarded attributes are out of scope (a fresh local is not shared yet);
the pass checks each class against its own discipline.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.framework import Finding, ProjectRule, Severity
from repro.analysis.project.callgraph import CallGraph
from repro.analysis.project.index import ClassInfo, ProjectIndex

__all__ = ["UnguardedSharedWriteRule"]

_LOCK_NAME = re.compile(r"lock|mutex", re.IGNORECASE)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


def _self_path(node: ast.expr) -> "str | None":
    """``"a.b"`` for an attribute chain rooted at ``self``, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


def _is_lock_item(item: ast.withitem) -> bool:
    """Whether a ``with`` item acquires an instance lock (``self.*lock*``)."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):  # e.g. ``with self._lock.acquire_timeout(...)``
        expr = expr.func
    path = _self_path(expr)
    return path is not None and bool(_LOCK_NAME.search(path.split(".")[-1]))


class _Write:
    """One attribute write: its path, node, and lock context."""

    __slots__ = ("path", "node", "under_lock", "method")

    def __init__(self, path: str, node: ast.AST, under_lock: bool, method: str):
        self.path = path
        self.node = node
        self.under_lock = under_lock
        self.method = method


def _collect_writes(cls: ClassInfo) -> "list[_Write]":
    writes: list[_Write] = []
    for name, method in cls.methods.items():
        _walk_body(method.node.body, name, False, writes)
    return writes


def _walk_body(
    statements: "list[ast.stmt]", method: str, under_lock: bool, out: "list[_Write]"
) -> None:
    for statement in statements:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested scopes have their own ``self``
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            locked = under_lock or any(_is_lock_item(item) for item in statement.items)
            _walk_body(statement.body, method, locked, out)
            continue
        if isinstance(statement, ast.Assign):
            _collect_targets(statement.targets, statement, method, under_lock, out)
        elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
            _collect_targets([statement.target], statement, method, under_lock, out)
        # Header expressions (test/iter/value) can carry mutator calls; nested
        # statement bodies are walked separately so their lock context is right.
        for expression in _own_expressions(statement):
            _collect_mutator_calls(expression, method, under_lock, out)
        for body in _sub_bodies(statement):
            _walk_body(body, method, under_lock, out)


def _own_expressions(statement: ast.stmt) -> "Iterator[ast.expr]":
    """The expressions belonging to *statement* itself (not nested bodies)."""
    for name, value in ast.iter_fields(statement):
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for element in value:
                if isinstance(element, ast.expr):
                    yield element


def _sub_bodies(statement: ast.stmt) -> "Iterator[list[ast.stmt]]":
    for attr in ("body", "orelse", "finalbody"):
        body = getattr(statement, attr, None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            yield body
    for handler in getattr(statement, "handlers", ()):
        yield handler.body


def _collect_targets(
    targets: "list[ast.expr]",
    statement: ast.stmt,
    method: str,
    under_lock: bool,
    out: "list[_Write]",
) -> None:
    for target in targets:
        for element in _flatten_target(target):
            store = element
            if isinstance(store, ast.Subscript):  # self.x[k] = v mutates self.x
                store = store.value
            path = _self_path(store)
            if path is not None:
                out.append(_Write(path, element, under_lock, method))


def _collect_mutator_calls(
    expression: ast.expr, method: str, under_lock: bool, out: "list[_Write]"
) -> None:
    """In-place mutator calls: ``self.x.append(...)``, ``self.a.b.update(...)``."""
    for node in ast.walk(expression):
        if isinstance(node, ast.Lambda):
            continue
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            receiver = node.func.value
            if isinstance(receiver, ast.Subscript):
                receiver = receiver.value
            path = _self_path(receiver)
            if path is not None:
                out.append(_Write(path, node, under_lock, method))


def _flatten_target(target: ast.expr) -> "Iterator[ast.expr]":
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_target(element)
    else:
        yield target


def _conflicts(path: str, guarded: "dict[str, tuple[str, int]]") -> "str | None":
    """The guarded path *path* collides with, if any (prefix either way)."""
    for other in guarded:
        if path == other or path.startswith(other + ".") or other.startswith(path + "."):
            return other
    return None


class UnguardedSharedWriteRule(ProjectRule):
    """Flag unlocked writes to lock-guarded attributes of thread-shared classes."""

    id = "unguarded-shared-write"
    severity = Severity.ERROR
    description = (
        "attributes assigned under 'with self._lock:' anywhere in a class whose "
        "instances are reachable from concurrent execution must never be written "
        "without the lock"
    )
    rationale = (
        "The concurrent plan executor runs source calls on worker threads that all "
        "feed shared accounting objects (AccessStatistics, MetricsRegistry, Tracer, "
        "FaultInjectingSource); the chaos suite's exact-accounting assertions hold "
        "only because every one of those writes is serialized behind the instance "
        "lock.  A single unlocked write reintroduces the lost-update races PR 4 "
        "eliminated, and nothing at runtime would notice."
    )

    def check(self, project: ProjectIndex, graph: CallGraph) -> Iterator[Finding]:
        reachable = graph.thread_reachable()
        for qualname in sorted(project.classes):
            cls = project.classes[qualname]
            writes = _collect_writes(cls)
            guarded: dict[str, tuple[str, int]] = {}
            for write in writes:
                if write.under_lock and write.path not in guarded:
                    guarded[write.path] = (
                        write.method,
                        getattr(write.node, "lineno", cls.lineno),
                    )
            if not guarded:
                continue
            if not any(
                method.qualname in reachable for method in cls.methods.values()
            ):
                continue
            path = project.path_of(cls.module)
            if path is None:  # pragma: no cover - modules always carry paths
                continue
            for write in writes:
                if write.under_lock or write.method in _CONSTRUCTORS:
                    continue
                hit = _conflicts(write.path, guarded)
                if hit is None:
                    continue
                guard_method, guard_line = guarded[hit]
                yield self.finding(
                    path,
                    write.node,
                    f"{cls.name}.{write.path} is written without holding the lock "
                    f"that guards {cls.name}.{hit} elsewhere "
                    f"({guard_method}, line {guard_line}); instances of "
                    f"{cls.name} are reachable from concurrent execution",
                )
