"""The whole-program index: every module parsed once, symbols resolved.

A :class:`ProjectIndex` is built from the same :class:`ModuleContext`
objects the per-module rules consume — the tree is parsed exactly once
per lint run — and adds the three things module-local analysis cannot
have:

* a **module registry** mapping dotted names to parsed modules,
* a **symbol table** of every class, function, method and nested
  function, keyed by qualified name (``repro.engine.executor.
  ConcurrentExecutor.map``),
* **name resolution**: per-module import bindings (``import numpy as
  np``, ``from .plan import FaultPlan``) plus re-export chasing, so
  ``np.random.default_rng`` and a symbol imported through a package
  ``__init__`` both resolve to their defining qualified name.

Resolution is deliberately best-effort: anything dynamic (``getattr``,
star imports, reassignment) resolves to ``None`` and downstream passes
treat it conservatively.  The index also infers instance-attribute types
from ``self.x = ClassName(...)`` assignments in ``__init__`` /
``__post_init__`` and from annotated dataclass fields, which is what
lets the concurrency pass follow ``self.statistics.record(...)`` into
:class:`AccessStatistics`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.framework import ModuleContext

__all__ = ["ClassInfo", "FunctionInfo", "ModuleInfo", "ProjectIndex", "dotted_name"]


def dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything richer."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function, method, or nested function."""

    qualname: str
    module: str
    name: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    lineno: int
    class_qualname: "str | None" = None
    params: "tuple[str, ...]" = ()
    defaults: "dict[str, ast.expr]" = field(default_factory=dict)

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None

    def __repr__(self) -> str:
        return f"<FunctionInfo {self.qualname}>"


@dataclass
class ClassInfo:
    """One class: its methods, bases, and inferred attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    lineno: int
    methods: "dict[str, FunctionInfo]" = field(default_factory=dict)
    base_names: "tuple[str, ...]" = ()
    #: ``self.<attr>`` -> qualified class name, inferred from constructor
    #: assignments and annotated class-level fields.
    attr_types: "dict[str, str]" = field(default_factory=dict)
    #: raw ``(attr, dotted constructor / annotation name)`` pairs, resolved
    #: into :attr:`attr_types` once the whole project is indexed.
    _raw_attr_sources: "list[tuple[str, str]]" = field(default_factory=list, repr=False)

    def __repr__(self) -> str:
        return f"<ClassInfo {self.qualname}>"


@dataclass
class ModuleInfo:
    """One parsed module and its local name bindings."""

    name: str
    path: Path
    tree: ast.Module
    #: local name -> qualified target ("np" -> "numpy", "Random" -> "random.Random")
    bindings: "dict[str, str]" = field(default_factory=dict)
    classes: "dict[str, ClassInfo]" = field(default_factory=dict)
    functions: "dict[str, FunctionInfo]" = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<ModuleInfo {self.name}>"


_ATTR_INIT_METHODS = ("__init__", "__post_init__")


class ProjectIndex:
    """Symbol tables and name resolution over one parsed tree."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._paths: dict[str, Path] = {}

    # ------------------------------------------------------------------ #
    # Construction

    @classmethod
    def build(cls, contexts: Iterable[ModuleContext]) -> "ProjectIndex":
        index = cls()
        for context in contexts:
            index._add_module(context)
        index._resolve_attr_types()
        return index

    def _add_module(self, context: ModuleContext) -> None:
        module = ModuleInfo(name=context.module, path=context.path, tree=context.tree)
        self.modules[module.name] = module
        self._paths[module.name] = context.path
        is_init = context.path.name == "__init__.py"
        self._collect_bindings(module, is_init)
        for statement in context.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._register_function(module, statement, parent=module.name)
                module.functions[info.name] = info
            elif isinstance(statement, ast.ClassDef):
                self._register_class(module, statement)

    def _collect_bindings(self, module: ModuleInfo, is_init: bool) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        module.bindings[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        module.bindings[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_import_base(module.name, node, is_init)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    module.bindings[bound] = f"{base}.{alias.name}" if base else alias.name

    @staticmethod
    def _resolve_import_base(
        module_name: str, node: ast.ImportFrom, is_init: bool
    ) -> "str | None":
        if node.level == 0:
            return node.module or ""
        parts = module_name.split(".")
        if not is_init:
            parts = parts[:-1]
        ascend = node.level - 1
        if ascend > len(parts):
            return None
        if ascend:
            parts = parts[:-ascend]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts)

    def _register_function(
        self,
        module: ModuleInfo,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        parent: str,
        class_qualname: "str | None" = None,
    ) -> FunctionInfo:
        qualname = f"{parent}.{node.name}"
        arguments = node.args
        params = tuple(
            arg.arg
            for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs)
        )
        defaults: dict[str, ast.expr] = {}
        positional = [*arguments.posonlyargs, *arguments.args]
        for arg, default in zip(positional[len(positional) - len(arguments.defaults):],
                                arguments.defaults):
            defaults[arg.arg] = default
        for arg, default in zip(arguments.kwonlyargs, arguments.kw_defaults):
            if default is not None:
                defaults[arg.arg] = default
        info = FunctionInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            node=node,
            lineno=node.lineno,
            class_qualname=class_qualname,
            params=params,
            defaults=defaults,
        )
        self.functions[qualname] = info
        if class_qualname is not None:
            self._methods_by_name.setdefault(node.name, []).append(info)
        for nested in ast.walk(node):
            if nested is node:
                continue
            if isinstance(nested, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # One level of nesting is enough for the passes; deeper
                # nesting registers under its textual parent regardless.
                nested_qual = f"{qualname}.{nested.name}"
                if nested_qual not in self.functions:
                    self.functions[nested_qual] = FunctionInfo(
                        qualname=nested_qual,
                        module=module.name,
                        name=nested.name,
                        node=nested,
                        lineno=nested.lineno,
                        params=tuple(
                            arg.arg
                            for arg in (
                                *nested.args.posonlyargs,
                                *nested.args.args,
                                *nested.args.kwonlyargs,
                            )
                        ),
                    )
        return info

    def _register_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        bases = tuple(
            name for name in (dotted_name(base) for base in node.bases) if name
        )
        info = ClassInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            node=node,
            lineno=node.lineno,
            base_names=bases,
        )
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._register_function(
                    module, statement, parent=qualname, class_qualname=qualname
                )
                info.methods[method.name] = method
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                self._note_field_type(info, statement)
        for method_name in _ATTR_INIT_METHODS:
            method = info.methods.get(method_name)
            if method is None:
                continue
            for assign in ast.walk(method.node):
                if not isinstance(assign, ast.Assign) or len(assign.targets) != 1:
                    continue
                target = assign.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(assign.value, ast.Call)
                ):
                    constructor = dotted_name(assign.value.func)
                    if constructor:
                        info._raw_attr_sources.append((target.attr, constructor))
        module.classes[info.name] = info
        self.classes[qualname] = info

    @staticmethod
    def _note_field_type(info: ClassInfo, statement: ast.AnnAssign) -> None:
        """Record a dataclass-style field's type source (annotation or factory)."""
        attr = statement.target.id  # type: ignore[union-attr]
        value = statement.value
        if isinstance(value, ast.Call):
            factory = next(
                (
                    keyword.value
                    for keyword in value.keywords
                    if keyword.arg == "default_factory"
                ),
                None,
            )
            if factory is not None:
                name = dotted_name(factory)
                if name:
                    info._raw_attr_sources.append((attr, name))
                    return
        annotation = dotted_name(statement.annotation)
        if annotation:
            info._raw_attr_sources.append((attr, annotation))

    def _resolve_attr_types(self) -> None:
        for cls in self.classes.values():
            module = self.modules[cls.module]
            for attr, source in cls._raw_attr_sources:
                resolved = self.resolve(module, source)
                if resolved in self.classes:
                    cls.attr_types[attr] = resolved

    # ------------------------------------------------------------------ #
    # Resolution and queries

    def resolve(self, module: "ModuleInfo | str", dotted: str) -> "str | None":
        """The qualified name *dotted* refers to inside *module*, best-effort.

        Local definitions shadow imports; unresolvable heads give ``None``.
        The result is canonicalized through re-export chains, so a symbol
        imported via a package ``__init__`` resolves to where it is defined.
        """
        if isinstance(module, str):
            found = self.modules.get(module)
            if found is None:
                return None
            module = found
        head, _, rest = dotted.partition(".")
        if head in module.classes or head in module.functions:
            target = f"{module.name}.{head}"
        elif head in module.bindings:
            target = module.bindings[head]
        else:
            return None
        if rest:
            target = f"{target}.{rest}"
        return self.canonicalize(target)

    def canonicalize(self, qualified: str) -> str:
        """Chase *qualified* through module re-exports to its definition."""
        for _ in range(8):
            if qualified in self.classes or qualified in self.functions:
                return qualified
            module = self._longest_module_prefix(qualified)
            if module is None:
                return qualified
            remainder = qualified[len(module.name) + 1 :]
            if not remainder:
                return qualified
            head, _, rest = remainder.partition(".")
            if head in module.classes or head in module.functions:
                resolved = f"{module.name}.{head}"
            elif head in module.bindings:
                resolved = module.bindings[head]
            else:
                return qualified
            candidate = f"{resolved}.{rest}" if rest else resolved
            if candidate == qualified:
                return qualified
            qualified = candidate
        return qualified

    def _longest_module_prefix(self, qualified: str) -> "ModuleInfo | None":
        parts = qualified.split(".")
        for cut in range(len(parts), 0, -1):
            module = self.modules.get(".".join(parts[:cut]))
            if module is not None and cut < len(parts):
                return module
        return None

    def methods_named(self, name: str) -> Sequence[FunctionInfo]:
        """Every method in the project with this name (CHA-style fallback)."""
        return tuple(self._methods_by_name.get(name, ()))

    def class_of(self, function: "FunctionInfo | str") -> "ClassInfo | None":
        if isinstance(function, str):
            found = self.functions.get(function)
            if found is None:
                return None
            function = found
        if function.class_qualname is None:
            return None
        return self.classes.get(function.class_qualname)

    def path_of(self, module_name: str) -> "Path | None":
        return self._paths.get(module_name)

    def method_in_hierarchy(self, cls: ClassInfo, name: str) -> "FunctionInfo | None":
        """Resolve *name* on *cls*, walking project-local base classes."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            method = current.methods.get(name)
            if method is not None:
                return method
            module = self.modules.get(current.module)
            for base in current.base_names:
                resolved = self.resolve(module, base) if module else None
                if resolved and resolved in self.classes:
                    stack.append(self.classes[resolved])
        return None

    def __repr__(self) -> str:
        return (
            f"<ProjectIndex {len(self.modules)} modules, "
            f"{len(self.classes)} classes, {len(self.functions)} functions>"
        )
