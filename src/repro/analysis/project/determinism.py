"""Interprocedural seed-provenance pass.

The per-module ``unseeded-rng`` rule catches ``random.Random()`` with no
argument, but it cannot see that ``make_rng(seed=None)`` in a helper
module hands an effectively unseeded generator to a mediator three calls
away.  This pass follows the seed *value* instead of the constructor
syntax:

1. find every RNG construction site in the project
   (``random.Random(x)``, ``numpy.random.default_rng(x)``, …);
2. classify the seed expression: constants are seeded, attribute reads
   (``config.seed``, ``self.seed``) are assumed config-fed, calls to
   wall-clock/entropy sources (``time.time()``, ``os.urandom()``) are
   nondeterministic, and a **parameter** is traced to every call site of
   the enclosing function through the call graph — recursively, so a
   seed default of ``None`` or an omitted argument surfaces at the
   outermost caller that failed to provide one;
3. report the flow only when it is *determinism-relevant*: some frame of
   the traced chain lives in mediator/mining/fault code, or the
   constructing function is reachable from such code.

Constructions guarded by an explicit ``x is None`` check (``None if seed
is None else Random(seed)``) accept ``None`` deliberately and are not
flagged.  Zero-argument constructions are left to the per-module rule so
each defect is reported exactly once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.framework import Finding, ProjectRule, Severity
from repro.analysis.project.callgraph import CallGraph
from repro.analysis.project.index import FunctionInfo, ProjectIndex, dotted_name

__all__ = ["UnseededRngFlowRule"]

#: Qualified RNG constructors whose first argument (or ``seed=``) is the seed.
_RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    }
)

#: Calls whose result is wall-clock / entropy — never a reproducible seed.
_NONDETERMINISTIC = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "os.urandom",
        "os.getpid",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
    }
)

#: Module-name components marking determinism-sensitive code: the mediators
#: (every reproduced figure flows through them), knowledge mining (mined
#: AFDs/NBC feed the rewrite ranking), and fault schedules (chaos replays).
_SENSITIVE_COMPONENTS = frozenset({"core", "mediator", "mediators", "mining", "faults"})

_MAX_TRACE_DEPTH = 10


def _module_is_sensitive(module_name: str) -> bool:
    return any(part in _SENSITIVE_COMPONENTS for part in module_name.split("."))


@dataclass
class _Site:
    """One RNG construction: where, what, and its seed expression."""

    constructor: str
    node: ast.Call
    scope: str  # qualname of the enclosing function, or the module name
    module: str
    seed: "ast.expr | None"
    nonnull: frozenset[str]  # names proven non-None at this point


@dataclass
class _Evidence:
    """An unseeded flow: the terminal frame plus a readable chain."""

    node: ast.AST
    module: str
    chain: "tuple[str, ...]"
    reason: str


class _SiteCollector:
    """Finds RNG construction sites with ``is None``-guard context."""

    def __init__(self, index: ProjectIndex, module_name: str):
        self.index = index
        self.module = module_name
        self.sites: list[_Site] = []

    def collect(self) -> "list[_Site]":
        module = self.index.modules[self.module]
        self._visit_body(module.tree.body, self.module, frozenset())
        return self.sites

    def _visit_body(
        self, statements: "list[ast.stmt]", scope: str, nonnull: frozenset[str]
    ) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = self._function_qualname(scope, statement)
                self._visit_body(statement.body, qualname, frozenset())
                continue
            if isinstance(statement, ast.ClassDef):
                self._visit_body(
                    statement.body, f"{scope}.{statement.name}", frozenset()
                )
                continue
            if isinstance(statement, ast.If):
                name, positive = self._none_test(statement.test)
                if name is not None:
                    in_body = nonnull | {name} if positive else nonnull
                    in_else = nonnull if positive else nonnull | {name}
                    self._scan_expressions(statement.test, scope, nonnull)
                    self._visit_body(statement.body, scope, in_body)
                    self._visit_body(statement.orelse, scope, in_else)
                    continue
            for expression in self._statement_expressions(statement):
                self._scan_expressions(expression, scope, nonnull)
            for body in self._statement_bodies(statement):
                self._visit_body(body, scope, nonnull)

    def _function_qualname(
        self, scope: str, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> str:
        return f"{scope}.{node.name}"

    @staticmethod
    def _statement_expressions(statement: ast.stmt) -> "Iterator[ast.expr]":
        for _, value in ast.iter_fields(statement):
            if isinstance(value, ast.expr):
                yield value
            elif isinstance(value, list):
                for element in value:
                    if isinstance(element, ast.expr):
                        yield element
                    elif isinstance(element, ast.withitem):
                        yield element.context_expr

    @staticmethod
    def _statement_bodies(statement: ast.stmt) -> "Iterator[list[ast.stmt]]":
        for attr in ("body", "orelse", "finalbody"):
            body = getattr(statement, attr, None)
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                yield body
        for handler in getattr(statement, "handlers", ()):
            yield handler.body

    @staticmethod
    def _none_test(test: ast.expr) -> "tuple[str | None, bool]":
        """``(name, True)`` for ``name is not None``, ``(name, False)`` for
        ``name is None``, ``(None, ...)`` otherwise."""
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and isinstance(test.left, ast.Name)
        ):
            if isinstance(test.ops[0], ast.IsNot):
                return test.left.id, True
            if isinstance(test.ops[0], ast.Is):
                return test.left.id, False
        return None, True

    def _scan_expressions(
        self, expression: ast.expr, scope: str, nonnull: frozenset[str]
    ) -> None:
        """Find RNG calls in *expression*, tracking ``IfExp`` None-guards."""
        if isinstance(expression, ast.IfExp):
            name, positive = self._none_test(expression.test)
            if name is not None:
                in_body = nonnull | {name} if positive else nonnull
                in_else = nonnull if positive else nonnull | {name}
                self._scan_expressions(expression.body, scope, in_body)
                self._scan_expressions(expression.orelse, scope, in_else)
                self._scan_expressions(expression.test, scope, nonnull)
                return
        if isinstance(expression, (ast.Lambda, ast.FunctionDef)):
            return
        if isinstance(expression, ast.Call):
            self._note_call(expression, scope, nonnull)
        for child in ast.iter_child_nodes(expression):
            if isinstance(child, ast.expr):
                self._scan_expressions(child, scope, nonnull)
            elif isinstance(child, ast.keyword):
                self._scan_expressions(child.value, scope, nonnull)

    def _note_call(self, node: ast.Call, scope: str, nonnull: frozenset[str]) -> None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        resolved = self.index.resolve(self.module, dotted)
        if resolved not in _RNG_CONSTRUCTORS:
            return
        seed: "ast.expr | None" = node.args[0] if node.args else None
        if seed is None:
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed = keyword.value
                    break
        if seed is None:
            return  # zero-argument construction: the per-module rule owns it
        self.sites.append(
            _Site(
                constructor=resolved,
                node=node,
                scope=scope,
                module=self.module,
                seed=seed,
                nonnull=nonnull,
            )
        )


class _SeedTracer:
    """Classifies seed expressions, ascending through call sites."""

    def __init__(self, index: ProjectIndex, graph: CallGraph):
        self.index = index
        self.graph = graph
        self.evidence: list[_Evidence] = []

    # The classifier returns True when the expression is provably fed by a
    # deterministic value on every path it could take; False means at least
    # one unseeded flow was recorded in ``self.evidence``.

    def trace(self, site: _Site) -> None:
        chain = (f"{site.constructor} at {_frame_label(site)}",)
        self._classify(
            site.seed, site.scope, site.module, site.nonnull, chain, depth=0,
            anchor=site.node, visited=frozenset(),
        )

    def _classify(
        self,
        expr: "ast.expr | None",
        scope: str,
        module: str,
        nonnull: frozenset[str],
        chain: "tuple[str, ...]",
        depth: int,
        anchor: ast.AST,
        visited: "frozenset[tuple[str, str]]",
    ) -> None:
        if depth > _MAX_TRACE_DEPTH or expr is None:
            return
        if isinstance(expr, ast.Constant):
            if expr.value is None:
                self.evidence.append(
                    _Evidence(anchor, module, chain, "the seed is literally None")
                )
            return
        if isinstance(expr, ast.Name):
            if expr.id in nonnull:
                return
            self._classify_name(
                expr, scope, module, chain, depth, anchor, visited
            )
            return
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            resolved = self.index.resolve(module, dotted) if dotted else None
            if resolved in _NONDETERMINISTIC or (
                dotted is not None and dotted in _NONDETERMINISTIC
            ):
                self.evidence.append(
                    _Evidence(
                        anchor,
                        module,
                        chain,
                        f"the seed comes from nondeterministic {dotted}()",
                    )
                )
            return
        if isinstance(expr, ast.BinOp):
            self._classify(
                expr.left, scope, module, nonnull, chain, depth, anchor, visited
            )
            self._classify(
                expr.right, scope, module, nonnull, chain, depth, anchor, visited
            )
            return
        if isinstance(expr, ast.IfExp):
            self._classify(
                expr.body, scope, module, nonnull, chain, depth, anchor, visited
            )
            self._classify(
                expr.orelse, scope, module, nonnull, chain, depth, anchor, visited
            )
            return
        # Attributes (config.seed, self.seed), f-strings over them, tuples,
        # etc.: assumed config-fed.  Best-effort means no false positives here.

    def _classify_name(
        self,
        expr: ast.Name,
        scope: str,
        module: str,
        chain: "tuple[str, ...]",
        depth: int,
        anchor: ast.AST,
        visited: "frozenset[tuple[str, str]]",
    ) -> None:
        function = self.index.functions.get(scope)
        if function is None:
            return  # module-level name: out of best-effort scope
        name = expr.id
        if name in function.params:
            key = (scope, name)
            if key in visited:
                return
            self._trace_parameter(
                function, name, chain, depth, visited | {key}
            )
            return
        assigned = _local_assignment(function, name)
        if assigned is not None:
            self._classify(
                assigned, scope, module, frozenset(), chain, depth, anchor, visited
            )

    def _trace_parameter(
        self,
        function: FunctionInfo,
        param: str,
        chain: "tuple[str, ...]",
        depth: int,
        visited: "frozenset[tuple[str, str]]",
    ) -> None:
        call_sites = self.graph.call_sites_of(function.qualname)
        for call_site in call_sites:
            passed = _argument_for(function, param, call_site.node, call_site.via_instance)
            caller_module = call_site.module
            frame = f"{call_site.caller} at {caller_module}:{call_site.node.lineno}"
            next_chain = (*chain, f"called from {frame}")
            if passed is _OMITTED:
                default = function.defaults.get(param)
                if (
                    isinstance(default, ast.Constant)
                    and default.value is None
                ):
                    self.evidence.append(
                        _Evidence(
                            call_site.node,
                            caller_module,
                            next_chain,
                            f"no seed is passed for {function.name}()'s "
                            f"'{param}' (default None)",
                        )
                    )
                continue
            if passed is _UNKNOWN:
                continue
            self._classify(
                passed,  # type: ignore[arg-type]
                call_site.caller,
                caller_module,
                frozenset(),
                next_chain,
                depth + 1,
                call_site.node,
                visited,
            )
        # A function nobody visibly calls proves nothing; stay silent.


class _Sentinel:
    pass


_OMITTED = _Sentinel()
_UNKNOWN = _Sentinel()


def _argument_for(
    function: FunctionInfo, param: str, call: ast.Call, via_instance: bool
) -> "ast.expr | _Sentinel":
    """The expression passed for *param* at *call*, best-effort."""
    if any(isinstance(argument, ast.Starred) for argument in call.args) or any(
        keyword.arg is None for keyword in call.keywords
    ):
        return _UNKNOWN
    params = list(function.params)
    if via_instance and params and params[0] in ("self", "cls"):
        params = params[1:]
    for index, argument in enumerate(call.args):
        if index < len(params) and params[index] == param:
            return argument
    for keyword in call.keywords:
        if keyword.arg == param:
            return keyword.value
    return _OMITTED


def _local_assignment(function: FunctionInfo, name: str) -> "ast.expr | None":
    """The last simple ``name = <expr>`` in *function*, if any."""
    found: "ast.expr | None" = None
    for node in ast.walk(function.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
        ):
            found = node.value
    return found


def _frame_label(site: _Site) -> str:
    return f"{site.module}:{site.node.lineno}"


class UnseededRngFlowRule(ProjectRule):
    """Flag RNGs whose seed provably fails to flow from config/constants."""

    id = "unseeded-rng-flow"
    severity = Severity.ERROR
    description = (
        "an RNG reaching mediator/mining/fault code must receive a seed that "
        "flows from configuration — a None default, an omitted argument, or a "
        "wall-clock seed anywhere along the call chain breaks reproducibility"
    )
    rationale = (
        "The per-module unseeded-rng rule sees one file at a time, so "
        "random.Random(seed) looks fine even when every caller leaves seed=None.  "
        "Reproduced figures are only as deterministic as the furthest call site: "
        "this pass walks seed values across module boundaries the same way the "
        "planner certifies rewrite precision without issuing source calls — "
        "statically, before anything runs."
    )

    def check(self, project: ProjectIndex, graph: CallGraph) -> Iterator[Finding]:
        tracer = _SeedTracer(project, graph)
        for module_name in sorted(project.modules):
            for site in _SiteCollector(project, module_name).collect():
                tracer.trace(site)
        if not tracer.evidence:
            return
        sensitive_functions = {
            qualname
            for qualname, function in project.functions.items()
            if _module_is_sensitive(function.module)
        }
        fed_by_sensitive = graph.reachable(sensitive_functions)
        seen: set[tuple[str, int, str]] = set()
        for item in tracer.evidence:
            if not self._relevant(item, fed_by_sensitive):
                continue
            path = project.path_of(item.module)
            if path is None:  # pragma: no cover - modules always carry paths
                continue
            message = (
                f"unseeded RNG flow: {item.reason}; "
                f"flow: {' -> '.join(item.chain)}"
            )
            key = (str(path), getattr(item.node, "lineno", 1), message)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(path, item.node, message)

    @staticmethod
    def _relevant(item: _Evidence, fed_by_sensitive: "set[str]") -> bool:
        if _module_is_sensitive(item.module):
            return True
        # chain frames: "constructor at module:line" / "called from fn at module:line"
        for frame in item.chain:
            location = frame.rsplit(" at ", 1)[-1]
            module = location.split(":", 1)[0]
            if _module_is_sensitive(module):
                return True
        construction = item.chain[0]
        # "random.Random at module:line" — relevance via reachability from
        # sensitive code is keyed on the constructing scope's module.
        location = construction.rsplit(" at ", 1)[-1]
        module = location.split(":", 1)[0]
        return any(fn.startswith(module + ".") for fn in fed_by_sensitive)
