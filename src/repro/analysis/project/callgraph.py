"""Best-effort call graph with thread-reachability queries.

Edges come from one intraprocedural pass per function:

* direct calls to resolvable names (module functions, imported symbols),
* ``self.method()`` within a class (following project-local bases),
* calls on locals whose type was inferred from a constructor assignment
  (``stats = AccessStatistics(); stats.record(...)``),
* calls on ``self.<attr>`` using the index's inferred attribute types.

Unresolvable attribute calls (``source.execute()`` where ``source`` is a
parameter) degrade to **dynamic edges** keyed by method name, resolved
CHA-style against every project class during reachability queries — an
over-approximation that is exactly right for deciding *which classes the
concurrency pass must hold to lock discipline*.

Thread reachability starts from **thread roots**: callables handed to
``pool.submit(...)`` / ``Thread(target=...)``, plus — whenever the
project contains any thread machinery at all — every callable whose
reference *escapes* (is passed, returned, or stored rather than called).
Once a callable escapes, static analysis cannot bound which execution
context invokes it; in a codebase with a thread pool the safe assumption
is a worker thread.  Lambdas are pseudo-nodes (``parent.<lambda:LINE>``)
and always count as escaped, which is how ``lambda: self._issue(step)``
thunks built by the engine reach the executor's pool.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.project.index import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    dotted_name,
)

__all__ = ["CallGraph", "CallSite", "build_call_graph"]

#: Qualified callables that put their argument on another thread.
_THREAD_CONSTRUCTORS = frozenset({"threading.Thread", "threading.Timer"})
_POOL_CONSTRUCTORS = frozenset(
    {"concurrent.futures.ThreadPoolExecutor", "concurrent.futures.ProcessPoolExecutor"}
)


@dataclass
class CallSite:
    """One resolved call: who called what, where, and how."""

    caller: str
    callee: str
    node: ast.Call
    module: str
    #: True when the callee was invoked through an instance (``x.m()``),
    #: i.e. its ``self`` parameter is bound implicitly.
    via_instance: bool = False


@dataclass
class _FunctionFacts:
    edges: set[str] = field(default_factory=set)
    dynamic: set[str] = field(default_factory=set)
    instantiates: set[str] = field(default_factory=set)


class CallGraph:
    """Call edges over a :class:`ProjectIndex`, plus reachability."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self._facts: dict[str, _FunctionFacts] = {}
        self._call_sites: dict[str, list[CallSite]] = {}
        self.escaped: set[str] = set()
        self.thread_roots: set[str] = set()
        self.has_thread_machinery = False
        #: lambda pseudo-nodes created during the build, by qualname.
        self.lambdas: dict[str, ast.Lambda] = {}

    # ------------------------------------------------------------------ #
    # Queries

    def callees(self, caller: str) -> frozenset[str]:
        facts = self._facts.get(caller)
        return frozenset(facts.edges) if facts else frozenset()

    def dynamic_names(self, caller: str) -> frozenset[str]:
        facts = self._facts.get(caller)
        return frozenset(facts.dynamic) if facts else frozenset()

    def instantiated_in(self, caller: str) -> frozenset[str]:
        facts = self._facts.get(caller)
        return frozenset(facts.instantiates) if facts else frozenset()

    def call_sites_of(self, callee: str) -> "tuple[CallSite, ...]":
        return tuple(self._call_sites.get(callee, ()))

    def reachable(self, roots: "set[str] | frozenset[str]", *, dynamic: bool = True) -> set[str]:
        """Transitive closure of call edges from *roots*.

        With ``dynamic`` (the default), unresolved ``x.name()`` calls fan
        out to every project method called ``name`` — the conservative
        reading suited to safety passes.
        """
        seen: set[str] = set()
        stack = [root for root in roots]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            facts = self._facts.get(current)
            if facts is None:
                continue
            stack.extend(callee for callee in facts.edges if callee not in seen)
            if dynamic:
                for name in facts.dynamic:
                    for method in self.index.methods_named(name):
                        if method.qualname not in seen:
                            stack.append(method.qualname)
        return seen

    def thread_entry_points(self) -> set[str]:
        """Callables that may run on a worker thread (see module docstring)."""
        roots = set(self.thread_roots)
        if self.has_thread_machinery:
            roots |= self.escaped
        return roots

    def thread_reachable(self) -> set[str]:
        """Everything reachable from a possible worker-thread entry point."""
        return self.reachable(self.thread_entry_points())

    # ------------------------------------------------------------------ #
    # Construction

    def _facts_for(self, caller: str) -> _FunctionFacts:
        facts = self._facts.get(caller)
        if facts is None:
            facts = self._facts[caller] = _FunctionFacts()
        return facts

    def _add_edge(
        self,
        caller: str,
        callee: str,
        node: ast.Call,
        module: str,
        via_instance: bool,
    ) -> None:
        self._facts_for(caller).edges.add(callee)
        self._call_sites.setdefault(callee, []).append(
            CallSite(caller, callee, node, module, via_instance)
        )


def build_call_graph(index: ProjectIndex) -> CallGraph:
    graph = CallGraph(index)
    for module in index.modules.values():
        _ModuleWalker(graph, module).run()
    return graph


class _ModuleWalker:
    """Builds edges for one module, scope by scope."""

    def __init__(self, graph: CallGraph, module: ModuleInfo):
        self.graph = graph
        self.index = graph.index
        self.module = module

    def run(self) -> None:
        # Module-level code is a caller in its own right (dataset builders,
        # registry tables); it is never a thread root itself.
        self._process_scope(
            self.module.name, self.module.tree, cls=None, function=None
        )
        for cls in self.module.classes.values():
            for method in cls.methods.values():
                self._process_scope(method.qualname, method.node, cls=cls, function=method)
        for function in self.module.functions.values():
            self._process_scope(function.qualname, function.node, cls=None, function=function)
            self._process_nested(function, cls=None)
        for cls in self.module.classes.values():
            for method in cls.methods.values():
                self._process_nested(method, cls=cls)

    def _process_nested(self, parent: FunctionInfo, cls: "ClassInfo | None") -> None:
        for nested in ast.walk(parent.node):
            if nested is parent.node or not isinstance(
                nested, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            qualname = f"{parent.qualname}.{nested.name}"
            info = self.index.functions.get(qualname)
            if info is not None:
                self._process_scope(qualname, nested, cls=cls, function=info)

    # ------------------------------------------------------------------ #

    def _process_scope(
        self,
        caller: str,
        scope: ast.AST,
        cls: "ClassInfo | None",
        function: "FunctionInfo | None",
    ) -> None:
        local_types = self._infer_local_types(scope, cls)
        call_funcs: set[int] = set()
        for node in self._scope_walk(scope, caller, cls, local_types):
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
                self._process_call(caller, node, cls, local_types)
        # Second pass: callable references that appear as values (escapes).
        for node in self._scope_walk(scope, caller, cls, local_types):
            if id(node) in call_funcs:
                continue
            target = self._resolve_callable_ref(node, cls, local_types)
            if target is not None:
                self.graph.escaped.add(target)

    def _scope_walk(
        self,
        scope: ast.AST,
        caller: str,
        cls: "ClassInfo | None",
        local_types: dict[str, str],
    ) -> Iterator[ast.AST]:
        """Walk *scope* without entering nested functions or classes.

        Lambdas become pseudo-scopes processed on first encounter; their
        bodies are not re-walked here.
        """
        stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, ast.Lambda):
                qualname = f"{caller}.<lambda:{node.lineno}>"
                if qualname not in self.graph.lambdas:
                    self.graph.lambdas[qualname] = node
                    self.graph.escaped.add(qualname)
                    self._process_lambda(qualname, node, cls, dict(local_types))
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _process_lambda(
        self,
        qualname: str,
        node: ast.Lambda,
        cls: "ClassInfo | None",
        local_types: dict[str, str],
    ) -> None:
        call_funcs: set[int] = set()
        for child in self._scope_walk(node, qualname, cls, local_types):
            if isinstance(child, ast.Call):
                call_funcs.add(id(child.func))
                self._process_call(qualname, child, cls, local_types)
        for child in self._scope_walk(node, qualname, cls, local_types):
            if id(child) in call_funcs:
                continue
            target = self._resolve_callable_ref(child, cls, local_types)
            if target is not None:
                self.graph.escaped.add(target)

    # ------------------------------------------------------------------ #

    def _infer_local_types(
        self, scope: ast.AST, cls: "ClassInfo | None"
    ) -> dict[str, str]:
        """``x -> class qualname`` for ``x = ClassName(...)`` assignments."""
        types: dict[str, str] = {}
        for node in ast.walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not scope:
                continue
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Call):
                constructor = dotted_name(value.func)
                if constructor:
                    resolved = self.index.resolve(self.module, constructor)
                    if resolved and resolved in self.index.classes:
                        types[target.id] = resolved
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and cls is not None
            ):
                inferred = cls.attr_types.get(value.attr)
                if inferred:
                    types[target.id] = inferred
        return types

    def _process_call(
        self,
        caller: str,
        node: ast.Call,
        cls: "ClassInfo | None",
        local_types: dict[str, str],
    ) -> None:
        func = node.func
        resolved = self._resolve_call_target(func, cls, local_types)
        if resolved is not None:
            qualified, via_instance = resolved
            self._note_thread_machinery(qualified)
            if qualified in self.index.classes:
                facts = self.graph._facts_for(caller)
                facts.instantiates.add(qualified)
                init = self.index.classes[qualified].methods.get("__init__")
                if init is not None:
                    self.graph._add_edge(caller, init.qualname, node, self.module.name, True)
                self._check_thread_site(qualified, node, cls, local_types)
                return
            if qualified in self.index.functions:
                self.graph._add_edge(
                    caller, qualified, node, self.module.name, via_instance
                )
                return
            self._check_thread_site(qualified, node, cls, local_types)
            return
        if isinstance(func, ast.Attribute):
            # Unresolvable receiver: degrade to a dynamic (by-name) edge.
            self.graph._facts_for(caller).dynamic.add(func.attr)
            if func.attr in ("submit", "apply_async", "map_async"):
                self.graph.has_thread_machinery = True
                for argument in node.args[:1]:
                    target = self._resolve_callable_ref(argument, cls, local_types)
                    if target is not None:
                        self.graph.thread_roots.add(target)

    def _note_thread_machinery(self, qualified: str) -> None:
        if qualified in _POOL_CONSTRUCTORS or qualified in _THREAD_CONSTRUCTORS:
            self.graph.has_thread_machinery = True

    def _check_thread_site(
        self,
        qualified: str,
        node: ast.Call,
        cls: "ClassInfo | None",
        local_types: dict[str, str],
    ) -> None:
        if qualified not in _THREAD_CONSTRUCTORS:
            return
        for keyword in node.keywords:
            if keyword.arg == "target":
                target = self._resolve_callable_ref(keyword.value, cls, local_types)
                if target is not None:
                    self.graph.thread_roots.add(target)

    def _resolve_call_target(
        self,
        func: ast.expr,
        cls: "ClassInfo | None",
        local_types: dict[str, str],
    ) -> "tuple[str, bool] | None":
        """Resolve a call's target to ``(qualified, via_instance)``."""
        if isinstance(func, ast.Name):
            resolved = self.index.resolve(self.module, func.id)
            if resolved is not None:
                return resolved, False
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self" and cls is not None:
                method = self.index.method_in_hierarchy(cls, func.attr)
                if method is not None:
                    return method.qualname, True
                return None
            inferred = local_types.get(base.id)
            if inferred is not None:
                owner = self.index.classes.get(inferred)
                if owner is not None:
                    method = self.index.method_in_hierarchy(owner, func.attr)
                    if method is not None:
                        return method.qualname, True
                return None
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and cls is not None
        ):
            inferred = cls.attr_types.get(base.attr)
            if inferred is not None:
                owner = self.index.classes.get(inferred)
                if owner is not None:
                    method = self.index.method_in_hierarchy(owner, func.attr)
                    if method is not None:
                        return method.qualname, True
                return None
        dotted = dotted_name(func)
        if dotted is None:
            return None
        resolved = self.index.resolve(self.module, dotted)
        if resolved is not None:
            return resolved, False
        return None

    def _resolve_callable_ref(
        self,
        node: ast.AST,
        cls: "ClassInfo | None",
        local_types: dict[str, str],
    ) -> "str | None":
        """A function/method qualname when *node* is a reference to one."""
        if isinstance(node, ast.Name):
            resolved = self.index.resolve(self.module, node.id)
            if resolved is not None and resolved in self.index.functions:
                return resolved
            return None
        if isinstance(node, ast.Attribute):
            target = self._resolve_call_target(node, cls, local_types)
            if target is not None and target[0] in self.index.functions:
                return target[0]
        return None
