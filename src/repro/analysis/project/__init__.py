"""Whole-program analysis layer for qpiadlint.

Per-module rules see one file at a time; the passes in this package see
the project: a :class:`ProjectIndex` (modules, symbols, name resolution)
and a :class:`CallGraph` (best-effort call edges with thread-reachability
queries), both built from the same parsed trees the module rules consume.
Passes are :class:`~repro.analysis.framework.ProjectRule` subclasses and
run once per lint, after every module has been parsed.
"""

from repro.analysis.project.callgraph import CallGraph, CallSite, build_call_graph
from repro.analysis.project.concurrency import UnguardedSharedWriteRule
from repro.analysis.project.determinism import UnseededRngFlowRule
from repro.analysis.project.index import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    dotted_name,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "UnguardedSharedWriteRule",
    "UnseededRngFlowRule",
    "build_call_graph",
    "dotted_name",
]
