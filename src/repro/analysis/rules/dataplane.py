"""Rule keeping the mining hot paths on the columnar data plane (PR 9).

The columnar refactor moved TANE partitioning, ``g3`` computation and NBC
count accumulation onto numpy kernels (:mod:`repro.relational.columnar`)
precisely because per-tuple Python loops over mining inputs were the
system's dominant cost at realistic sizes.  A new ``for row in sample:``
creeping back into those modules silently re-introduces the O(rows)
interpreter loop the refactor removed — and, worse, creates a *third*
semantics (besides the row-plane reference and the vectorized kernel) that
the bit-parity benchmark does not watch.

The row-plane reference implementations themselves are legitimate — they
define the semantics the kernels must reproduce and serve opaque-column
fallback — so each carries a rule suppression with a justification, keeping
every per-tuple loop in the mining hot paths a reviewed exemption.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, Severity

__all__ = ["RowLoopInMiningRule"]

#: The mining modules whose per-tuple loops the columnar plane replaced.
MINING_HOT_MODULES = (
    "repro.mining.partitions",
    "repro.mining.tane",
    "repro.mining.nbc",
    "repro.mining.selectivity",
)

#: Attributes whose iteration walks tuple-granular storage.
_PER_TUPLE_ATTRIBUTES = frozenset({"rows", "classes"})

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


class RowLoopInMiningRule(Rule):
    """Flag per-tuple Python loops in the mining hot paths."""

    id = "row-loop-in-mining"
    severity = Severity.WARNING
    description = (
        "mining hot paths must aggregate via the columnar kernels, not "
        "iterate relations, .rows, or partition .classes tuple-by-tuple"
    )
    rationale = (
        "TANE partitioning and NBC counting were vectorized because per-tuple "
        "Python loops dominated mining cost at scale (BENCH_8).  A new row "
        "loop in repro.mining re-grows the O(rows) interpreter cost and adds "
        "an unbenchmarked third semantics beside the row-plane reference and "
        "the kernel.  Row-plane fallbacks are exempt — with a justification."
    )

    def __init__(self, modules: "tuple[str, ...]" = MINING_HOT_MODULES):
        self.modules = modules

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.in_package(*self.modules):
            return
        relation_params = self._relation_params(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.For):
                iterables = [node.iter]
            elif isinstance(node, _COMPREHENSIONS):
                iterables = [generator.iter for generator in node.generators]
            else:
                continue
            for iterable in iterables:
                reason = self._per_tuple_reason(iterable, relation_params)
                if reason:
                    yield self.finding(
                        context,
                        node,
                        f"{reason}; aggregate on the columnar plane, or "
                        "suppress with a justification if this is the "
                        "row-plane fallback",
                    )

    @staticmethod
    def _relation_params(tree: ast.Module) -> frozenset[str]:
        """Parameter names annotated as ``Relation`` anywhere in the module."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = node.args
                for arg in (
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                ):
                    if _is_relation_annotation(arg.annotation):
                        names.add(arg.arg)
        return frozenset(names)

    def _per_tuple_reason(
        self, iterable: ast.AST, relation_params: frozenset[str]
    ) -> "str | None":
        if (
            isinstance(iterable, ast.Attribute)
            and iterable.attr in _PER_TUPLE_ATTRIBUTES
        ):
            return f"iterates .{iterable.attr} tuple-by-tuple in a mining hot path"
        if isinstance(iterable, ast.Name) and iterable.id in relation_params:
            return (
                f"iterates Relation parameter {iterable.id!r} row-by-row "
                "in a mining hot path"
            )
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "enumerate"
            and iterable.args
        ):
            return self._per_tuple_reason(iterable.args[0], relation_params)
        return None


def _is_relation_annotation(annotation: "ast.expr | None") -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "Relation"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "Relation"
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip('"').split(".")[-1] == "Relation"
    return False
