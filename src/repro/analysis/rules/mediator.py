"""Rule enforcing the mediator's autonomy discipline (paper §1, Fig. 1).

QPIAD is *non-intrusive*: the mediator may never modify — or even directly
read — an autonomous source's base data.  In this codebase the only
sanctioned gateway is :class:`repro.sources.AutonomousSource`, which
enforces web-form capabilities, query budgets and result caps.  Mediator
layers (``repro.core``, ``repro.query``, ``repro.rewriting``) that
construct :class:`Relation` objects from raw rows, reach into a relation's
``.rows`` storage, or read base data straight off disk are bypassing that
gateway, and with it every constraint the paper is built around.

Result-set *assembly* (building a relation to hand answers back to the
caller) is legitimate; such sites carry a rule-specific suppression with a
justification, keeping every exemption reviewable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, Severity

__all__ = ["RawRelationAccessRule", "RawRewriteCallRule", "RawSourceCallRule"]

#: Dotted package prefixes that constitute "mediator-side" code.
MEDIATOR_PACKAGES = ("repro.core", "repro.query", "repro.rewriting")

#: Loader callables that read base data from outside any source gateway.
_DIRECT_LOADERS = frozenset({"read_csv"})


class RawRelationAccessRule(Rule):
    """Flag mediator-layer code touching base relations behind the source's back."""

    id = "raw-relation-access"
    severity = Severity.ERROR
    description = (
        "mediator layers must reach data through AutonomousSource, not by "
        "constructing Relations, reading .rows, or loading CSVs directly"
    )
    rationale = (
        "The autonomy constraint (paper §1): sources cannot be modified and are "
        "reachable only through their restricted web-form interface.  Direct "
        "Relation access in rewriting/mediation code silently skips capability "
        "checks, query budgets and access statistics."
    )

    def __init__(self, packages: "tuple[str, ...]" = MEDIATOR_PACKAGES):
        self.packages = packages

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.in_package(*self.packages):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                name = self._callable_name(node.func)
                if name == "Relation":
                    yield self.finding(
                        context,
                        node,
                        "constructs a Relation directly in a mediator layer; go "
                        "through AutonomousSource (or suppress for result assembly)",
                    )
                elif name in _DIRECT_LOADERS:
                    yield self.finding(
                        context,
                        node,
                        f"{name}() loads base data from disk, bypassing the "
                        "source gateway and its capability checks",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "rows":
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    continue  # an object's own attribute, not a Relation bypass
                yield self.finding(
                    context,
                    node,
                    "reads .rows storage directly; iterate the relation or use "
                    "its public accessors so access stays observable",
                )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.startswith("repro.relational"):
                    for alias in node.names:
                        if alias.name in _DIRECT_LOADERS:
                            yield self.finding(
                                context,
                                node,
                                f"imports {alias.name} into a mediator layer; "
                                "base data must arrive via AutonomousSource",
                            )

    @staticmethod
    def _callable_name(func: ast.AST) -> "str | None":
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None


#: The source-surface methods that constitute one billable call.
_SOURCE_CALL_METHODS = frozenset(
    {"execute", "execute_null_binding", "execute_certain_or_possible", "scan"}
)


class RawSourceCallRule(Rule):
    """Flag ``repro.core`` code calling the source surface outside the engine."""

    id = "raw-source-call-in-core"
    severity = Severity.ERROR
    description = (
        "core mediators must issue source calls through the retrieval engine "
        "(repro.engine), not by calling execute()/scan() on a source directly"
    )
    rationale = (
        "The engine is the one place that bills issuance before the call, "
        "enforces failure budgets and deadlines, and emits telemetry spans.  "
        "A direct source call in repro.core silently escapes the accounting "
        "invariant (stats.queries_issued == the source's own call log) and "
        "every policy the executor split centralised.  Deliberate bypasses "
        "(counterfactual baselines, pipelines not yet ported) carry a "
        "suppression with a justification."
    )

    def __init__(self, packages: "tuple[str, ...]" = ("repro.core",)):
        self.packages = packages

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.in_package(*self.packages):
            return
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SOURCE_CALL_METHODS
            ):
                yield self.finding(
                    context,
                    node,
                    f".{node.func.attr}() called on a source directly; route "
                    "the call through RetrievalEngine so it is billed, "
                    "policy-checked, and traced (or suppress with a reason)",
                )


#: The rewrite-pipeline stage functions mediators must reach via the planner.
_REWRITE_STAGE_CALLS = frozenset(
    {
        "generate_rewritten_queries",
        "order_rewritten_queries",
        "score_rewritten_queries",
    }
)

#: Modules that legitimately *implement* the rewrite pipeline and so may
#: name its stage functions: the stage implementations themselves and the
#: compatibility shim that re-exports the moved ranking functions.
_REWRITE_PIPELINE_MODULES = ("repro.core.rewriting", "repro.core.ranking")


class RawRewriteCallRule(Rule):
    """Flag ``repro.core`` code invoking rewrite-pipeline stages directly."""

    id = "raw-rewrite-call-in-core"
    severity = Severity.ERROR
    description = (
        "core mediators must plan rewritten queries through "
        "repro.planner.QueryPlanner, not by calling the generation/ranking "
        "stage functions directly"
    )
    rationale = (
        "The planner facade is the one place candidate generation, F-measure "
        "ranking and gating compose in a fixed order — it is what makes "
        "every mediator rank identically, keeps skip accounting attached to "
        "the plan, and makes the result cacheable under the knowledge "
        "fingerprint.  A mediator calling generate_rewritten_queries() or "
        "order_rewritten_queries() by hand re-creates the copy-paste "
        "divergence (tie-break drift between qpiad/joins/correlated) the "
        "planner extraction removed."
    )

    def __init__(self, packages: "tuple[str, ...]" = ("repro.core",)):
        self.packages = packages

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.in_package(*self.packages):
            return
        if context.in_package(*_REWRITE_PIPELINE_MODULES):
            return  # the pipeline's own implementation and its shim
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                name = _attr_or_name(node.func)
                if name in _REWRITE_STAGE_CALLS:
                    yield self.finding(
                        context,
                        node,
                        f"{name}() called directly in a core mediator; plan "
                        "through repro.planner.QueryPlanner so ranking, "
                        "gating and caching stay unified",
                    )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.startswith("repro"):
                    for alias in node.names:
                        if alias.name in _REWRITE_STAGE_CALLS:
                            yield self.finding(
                                context,
                                node,
                                f"imports {alias.name} into a core mediator; "
                                "rewrite planning belongs to "
                                "repro.planner.QueryPlanner",
                            )


def _attr_or_name(func: ast.AST) -> "str | None":
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
