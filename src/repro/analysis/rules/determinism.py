"""Rule enforcing reproducible randomness.

Every figure in the reproduction is regenerated from code; a single
unseeded RNG turns "reproduction" into "anecdote".  The repo-wide
convention is a dedicated, explicitly seeded generator per component
(``rng = random.Random(seed)``), threaded through call chains — never the
process-global RNG, whose state any import can perturb.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, Severity

__all__ = ["UnseededRngRule"]

#: numpy constructors that are fine *when given an explicit seed argument*.
_SEEDABLE_CONSTRUCTORS = frozenset({"default_rng", "RandomState", "Generator", "Random"})


class UnseededRngRule(Rule):
    """Flag unseeded or process-global random number generation."""

    id = "unseeded-rng"
    severity = Severity.ERROR
    description = (
        "randomness must come from an explicitly seeded generator "
        "(random.Random(seed) / default_rng(seed)), never the global RNG"
    )
    rationale = (
        "The paper's experiments (GD→ED masking, probing samples, workloads) are "
        "reproduced bit-for-bit only if every random draw is derived from an "
        "explicit seed; module-level random.* and np.random.* share mutable "
        "global state that import order silently perturbs."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        random_aliases, numpy_aliases, nprandom_aliases, bare_functions = (
            self._collect_imports(context.tree)
        )
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in bare_functions:
                    yield from self._check_bare_call(context, node, func.id)
                continue
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # random.<fn>(...) on the random module itself
            if isinstance(base, ast.Name) and base.id in random_aliases:
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            context, node,
                            "random.Random() without a seed; pass an explicit seed",
                        )
                elif func.attr != "SystemRandom":
                    yield self.finding(
                        context, node,
                        f"random.{func.attr}() uses the process-global RNG; use a "
                        "dedicated random.Random(seed)",
                    )
                continue
            # np.random.<fn>(...) / numpy_random.<fn>(...)
            np_random = (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in numpy_aliases
            ) or (isinstance(base, ast.Name) and base.id in nprandom_aliases)
            if np_random:
                if func.attr in _SEEDABLE_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            context, node,
                            f"np.random.{func.attr}() without a seed; pass an "
                            "explicit seed for reproducibility",
                        )
                else:
                    yield self.finding(
                        context, node,
                        f"np.random.{func.attr}() draws from numpy's global RNG; "
                        "use np.random.default_rng(seed)",
                    )

    def _check_bare_call(
        self, context: ModuleContext, node: ast.Call, name: str
    ) -> Iterator[Finding]:
        if name in _SEEDABLE_CONSTRUCTORS:
            if not node.args and not node.keywords:
                yield self.finding(
                    context, node,
                    f"{name}() without a seed; pass an explicit seed",
                )
        else:
            yield self.finding(
                context, node,
                f"{name}() was imported from a random module and uses global "
                "RNG state; use a dedicated seeded generator",
            )

    @staticmethod
    def _collect_imports(
        tree: ast.Module,
    ) -> tuple[set[str], set[str], set[str], set[str]]:
        """Aliases of the random module, numpy, numpy.random, and bare imports."""
        random_aliases: set[str] = set()
        numpy_aliases: set[str] = set()
        nprandom_aliases: set[str] = set()
        bare_functions: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name == "random":
                        random_aliases.add(bound)
                    elif alias.name == "numpy":
                        numpy_aliases.add(bound)
                    elif alias.name == "numpy.random" and alias.asname:
                        nprandom_aliases.add(alias.asname)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    bare_functions.update(a.asname or a.name for a in node.names)
                elif node.module == "numpy.random":
                    bare_functions.update(a.asname or a.name for a in node.names)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            nprandom_aliases.add(alias.asname or "random")
        return random_aliases, numpy_aliases, nprandom_aliases, bare_functions
