"""Rules enforcing the repo's SQL NULL semantics (paper §2, Definition 2).

Database NULLs are modelled by the :data:`repro.relational.values.NULL`
singleton precisely so that ``NULL == NULL`` is false.  Code that compares
tuple-sourced values with ``==``/``!=`` against ``NULL``, or with
``is None`` (a database NULL is *never* ``None`` — ingestion coerces), is
either dead or silently treating missing values as present.  These rules
catch both shapes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, Severity

__all__ = ["NullCompareRule", "NullInPredicateLiteralRule"]

#: Variable base names treated as "a tuple read out of a relation".
_ROWISH_NAMES = frozenset({"row", "rows", "tup", "tuple_", "record", "values"})

#: Predicate constructors whose *value* operands bind against source data.
_PREDICATE_CALLS = frozenset({"Equals", "NotEquals", "Between", "Comparison", "OneOf"})


def _is_null_name(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == "NULL"


def _is_none_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _is_rowish_name(name: str) -> bool:
    lowered = name.lower()
    return lowered in _ROWISH_NAMES or lowered.endswith("_row") or lowered.startswith("row_")


def _is_rowish_subscript(node: ast.AST) -> bool:
    """``row[i]`` / ``left_row[idx]`` — an indexed read out of a tuple."""
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and _is_rowish_name(node.value.id)
    )


def _scopes(tree: ast.Module) -> "list[ast.AST]":
    """Every binding scope: the module plus each (async) function."""
    return [
        tree,
        *[
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ],
    ]


def _local_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes belonging to *scope* without descending into nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _row_bound_names(scope: ast.AST) -> "set[str]":
    """Names assigned from row subscripts (``value = row[i]``) within *scope*."""
    bound: set[str] = set()
    for node in _local_nodes(scope):
        if isinstance(node, ast.Assign) and _is_rowish_subscript(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


class NullCompareRule(Rule):
    """Flag equality tests that can never (or wrongly) match a database NULL."""

    id = "null-compare"
    severity = Severity.ERROR
    description = (
        "tuple values must be tested with is_null(), never ==/!= NULL or 'is None'"
    )
    rationale = (
        "NULL == NULL is false under SQL three-valued semantics (paper §2), so an "
        "==/!= comparison against NULL is dead code; and database NULLs are the "
        "NULL singleton, never None, so 'is None' on a tuple-sourced value always "
        "misses real missing values."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for scope in _scopes(context.tree):
            bound = _row_bound_names(scope)
            for node in _local_nodes(scope):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left, *node.comparators]
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if isinstance(op, (ast.Eq, ast.NotEq)) and (
                        _is_null_name(left) or _is_null_name(right)
                    ):
                        yield self.finding(
                            context,
                            node,
                            "comparison against NULL with ==/!= is always false "
                            "(SQL semantics); use is_null(value)",
                        )
                        continue
                    if not isinstance(op, (ast.Is, ast.IsNot, ast.Eq, ast.NotEq)):
                        continue
                    if _is_none_constant(right):
                        tested = left
                    elif _is_none_constant(left):
                        tested = right
                    else:
                        continue
                    if _is_rowish_subscript(tested) or (
                        isinstance(tested, ast.Name) and tested.id in bound
                    ):
                        yield self.finding(
                            context,
                            node,
                            "tuple-sourced value tested with None; database NULLs "
                            "are the NULL singleton — use is_null(value)",
                        )


class NullInPredicateLiteralRule(Rule):
    """Flag query predicates constructed with a literal NULL/None bound value."""

    id = "null-in-predicate-literal"
    severity = Severity.ERROR
    description = "query predicates must not bind a NULL/None literal"
    rationale = (
        "Autonomous web sources cannot bind NULL in a query (paper §1); a "
        "predicate built over a NULL literal is unissuable and QPIAD exists "
        "precisely to avoid needing it — retrieve possible answers via "
        "rewriting instead."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._callable_name(node.func)
            if name not in _PREDICATE_CALLS and name != "equals":
                continue
            for argument in [*node.args, *[kw.value for kw in node.keywords]]:
                if self._contains_null_literal(argument):
                    yield self.finding(
                        context,
                        node,
                        f"{name}(...) built with a NULL/None literal; autonomous "
                        "sources cannot bind NULL — use possible-answer retrieval",
                    )
                    break

    @staticmethod
    def _callable_name(func: ast.AST) -> "str | None":
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    @staticmethod
    def _contains_null_literal(node: ast.AST) -> bool:
        if _is_none_constant(node) or _is_null_name(node):
            return True
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return any(
                _is_none_constant(element) or _is_null_name(element)
                for element in node.elts
            )
        return False
