"""General code-hygiene rules with QPIAD-specific rationales.

These are the checks whose violations historically produce the subtlest
reproduction bugs: a dependency that smuggles in different NULL handling,
a mutable default that leaks state between queries, a swallowed exception
that hides a budget violation, a float equality that makes a paper metric
flap across platforms.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, Severity

__all__ = [
    "BannedImportRule",
    "MutableDefaultArgRule",
    "BareExceptRule",
    "NaiveFloatEqualityRule",
]

#: Top-level distributions DESIGN.md's from-scratch constraint forbids.
BANNED_MODULES = frozenset({"pandas", "sklearn", "scipy"})

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "Counter", "defaultdict", "deque"})

#: Module-name fragments that mark metrics / estimator code.
_METRIC_MODULE_HINTS = ("evaluation", "metrics", "selectivity", "stats", "estimat")


class BannedImportRule(Rule):
    """Flag imports of pandas / sklearn / scipy."""

    id = "banned-import"
    severity = Severity.ERROR
    description = "pandas/sklearn/scipy are banned (from-scratch constraint)"
    rationale = (
        "DESIGN.md §1: everything is implemented from scratch (numpy only where "
        "it genuinely helps).  Heavy frameworks bring their own NaN/NULL "
        "semantics, which would silently diverge from the paper's Definition 2."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in BANNED_MODULES:
                        yield self.finding(
                            context, node,
                            f"import of banned dependency {root!r}; this repo is "
                            "from-scratch by design (see DESIGN.md)",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".", 1)[0]
                if root in BANNED_MODULES:
                    yield self.finding(
                        context, node,
                        f"import from banned dependency {root!r}; this repo is "
                        "from-scratch by design (see DESIGN.md)",
                    )


class MutableDefaultArgRule(Rule):
    """Flag mutable default argument values."""

    id = "mutable-default-arg"
    severity = Severity.WARNING
    description = "default argument values must be immutable"
    rationale = (
        "A mutable default is shared across every call; in a long-lived "
        "mediator serving many queries, state leaking between requests "
        "corrupts rankings non-deterministically."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for default in [*node.args.defaults, *node.args.kw_defaults]:
                if default is None:
                    continue
                if self._is_mutable_literal(default):
                    yield self.finding(
                        context, default,
                        f"mutable default argument in {node.name}(); use None "
                        "and create the value inside the function",
                    )

    @staticmethod
    def _is_mutable_literal(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                             ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )


class BareExceptRule(Rule):
    """Flag bare ``except:`` and silently swallowed broad exceptions."""

    id = "bare-except"
    severity = Severity.WARNING
    description = "no bare except; no 'except Exception: pass'"
    rationale = (
        "The error taxonomy (QueryBudgetExceededError, NullBindingError, ...) "
        "encodes source-autonomy violations; swallowing them broadly hides "
        "exactly the failures the capability model exists to surface."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    context, node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt too; "
                    "name the exception (see repro.errors)",
                )
                continue
            broad = (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException")
            )
            swallows = len(node.body) == 1 and isinstance(
                node.body[0], (ast.Pass, ast.Continue)
            )
            if broad and swallows:
                yield self.finding(
                    context, node,
                    f"'except {node.type.id}' that silently swallows; catch the "
                    "specific repro.errors type or handle the failure",
                )


class NaiveFloatEqualityRule(Rule):
    """Flag ==/!= against float literals in metrics / estimator code."""

    id = "naive-float-equality"
    severity = Severity.WARNING
    description = "metrics/estimator code must not compare floats with ==/!="
    rationale = (
        "Precision, recall, F-measure and selectivity values are accumulated "
        "floating point; exact comparison makes the reproduced figures "
        "platform- and summation-order-dependent.  Use math.isclose or an "
        "explicit tolerance."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not self._in_scope(context.module):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_literal(left) or self._is_float_literal(right):
                    yield self.finding(
                        context, node,
                        "float literal compared with ==/!= in metrics code; use "
                        "math.isclose or an explicit tolerance",
                    )

    @staticmethod
    def _in_scope(module: str) -> bool:
        return any(hint in module for hint in _METRIC_MODULE_HINTS)

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)
