"""The qpiadlint rule registry.

Rules are registered here in the order reports list them.  Adding a rule:
implement it in a module under this package, import it, append the class
to :data:`ALL_RULES` (per-module rules) or :data:`ALL_PROJECT_RULES`
(whole-program passes), and document it in ``docs/linting.md`` — the
``--list-rules`` table and the docs are generated from this registry.
"""

from __future__ import annotations

from repro.analysis.framework import LintConfigError, ProjectRule, Rule
from repro.analysis.project.concurrency import UnguardedSharedWriteRule
from repro.analysis.project.determinism import UnseededRngFlowRule
from repro.analysis.rules.dataplane import RowLoopInMiningRule
from repro.analysis.rules.determinism import UnseededRngRule
from repro.analysis.rules.freshness import StaleKnowledgeCaptureRule
from repro.analysis.rules.hygiene import (
    BannedImportRule,
    BareExceptRule,
    MutableDefaultArgRule,
    NaiveFloatEqualityRule,
)
from repro.analysis.rules.mediator import (
    RawRelationAccessRule,
    RawRewriteCallRule,
    RawSourceCallRule,
)
from repro.analysis.rules.null_semantics import (
    NullCompareRule,
    NullInPredicateLiteralRule,
)

__all__ = [
    "ALL_RULES",
    "ALL_PROJECT_RULES",
    "default_rules",
    "default_project_rules",
    "rule_ids",
    "project_rule_ids",
    "select_rules",
    "select_project_rules",
    "NullCompareRule",
    "NullInPredicateLiteralRule",
    "RawRelationAccessRule",
    "RawRewriteCallRule",
    "RawSourceCallRule",
    "UnseededRngRule",
    "BannedImportRule",
    "MutableDefaultArgRule",
    "BareExceptRule",
    "NaiveFloatEqualityRule",
    "RowLoopInMiningRule",
    "StaleKnowledgeCaptureRule",
    "UnguardedSharedWriteRule",
    "UnseededRngFlowRule",
]

#: Every registered rule class, in reporting order.
ALL_RULES: "tuple[type[Rule], ...]" = (
    NullCompareRule,
    NullInPredicateLiteralRule,
    RawRelationAccessRule,
    RawSourceCallRule,
    RawRewriteCallRule,
    UnseededRngRule,
    BannedImportRule,
    MutableDefaultArgRule,
    BareExceptRule,
    NaiveFloatEqualityRule,
    RowLoopInMiningRule,
    StaleKnowledgeCaptureRule,
)

#: Every registered whole-program pass, in reporting order.
ALL_PROJECT_RULES: "tuple[type[ProjectRule], ...]" = (
    UnguardedSharedWriteRule,
    UnseededRngFlowRule,
)


def default_rules() -> "list[Rule]":
    """One instance of every registered per-module rule."""
    return [rule() for rule in ALL_RULES]


def default_project_rules() -> "list[ProjectRule]":
    """One instance of every registered whole-program pass."""
    return [rule() for rule in ALL_PROJECT_RULES]


def rule_ids() -> "tuple[str, ...]":
    return tuple(rule.id for rule in ALL_RULES)


def project_rule_ids() -> "tuple[str, ...]":
    return tuple(rule.id for rule in ALL_PROJECT_RULES)


def _validate_names(
    select: "tuple[str, ...] | None", ignore: "tuple[str, ...] | None"
) -> None:
    """Reject ids registered nowhere — typos cannot silently disable a check.

    ``--select``/``--ignore`` name rules from *either* registry; each
    selector then filters its own kind, so selecting a project rule simply
    leaves the module-rule list empty and vice versa.
    """
    known = set(rule_ids()) | set(project_rule_ids())
    for name in (*(select or ()), *(ignore or ())):
        if name not in known:
            raise LintConfigError(
                f"unknown rule {name!r}; known rules: {', '.join(sorted(known))}"
            )


def select_rules(
    select: "tuple[str, ...] | None" = None,
    ignore: "tuple[str, ...] | None" = None,
) -> "list[Rule]":
    """Instantiate the registered per-module rules, filtered by id.

    ``select`` keeps only the named rules; ``ignore`` drops the named ones.
    Unknown ids raise :class:`LintConfigError`.
    """
    _validate_names(select, ignore)
    rules = default_rules()
    if select:
        rules = [rule for rule in rules if rule.id in select]
    if ignore:
        rules = [rule for rule in rules if rule.id not in ignore]
    return rules


def select_project_rules(
    select: "tuple[str, ...] | None" = None,
    ignore: "tuple[str, ...] | None" = None,
) -> "list[ProjectRule]":
    """Instantiate the registered whole-program passes, filtered by id."""
    _validate_names(select, ignore)
    rules = default_project_rules()
    if select:
        rules = [rule for rule in rules if rule.id in select]
    if ignore:
        rules = [rule for rule in rules if rule.id not in ignore]
    return rules
