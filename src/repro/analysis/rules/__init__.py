"""The qpiadlint rule registry.

Rules are registered here in the order reports list them.  Adding a rule:
implement it in a module under this package, import it, append the class
to :data:`ALL_RULES`, and document it in ``docs/linting.md``.
"""

from __future__ import annotations

from repro.analysis.framework import LintConfigError, Rule
from repro.analysis.rules.determinism import UnseededRngRule
from repro.analysis.rules.hygiene import (
    BannedImportRule,
    BareExceptRule,
    MutableDefaultArgRule,
    NaiveFloatEqualityRule,
)
from repro.analysis.rules.mediator import (
    RawRelationAccessRule,
    RawRewriteCallRule,
    RawSourceCallRule,
)
from repro.analysis.rules.null_semantics import (
    NullCompareRule,
    NullInPredicateLiteralRule,
)

__all__ = [
    "ALL_RULES",
    "default_rules",
    "rule_ids",
    "select_rules",
    "NullCompareRule",
    "NullInPredicateLiteralRule",
    "RawRelationAccessRule",
    "RawRewriteCallRule",
    "RawSourceCallRule",
    "UnseededRngRule",
    "BannedImportRule",
    "MutableDefaultArgRule",
    "BareExceptRule",
    "NaiveFloatEqualityRule",
]

#: Every registered rule class, in reporting order.
ALL_RULES: "tuple[type[Rule], ...]" = (
    NullCompareRule,
    NullInPredicateLiteralRule,
    RawRelationAccessRule,
    RawSourceCallRule,
    RawRewriteCallRule,
    UnseededRngRule,
    BannedImportRule,
    MutableDefaultArgRule,
    BareExceptRule,
    NaiveFloatEqualityRule,
)


def default_rules() -> "list[Rule]":
    """One instance of every registered rule."""
    return [rule() for rule in ALL_RULES]


def rule_ids() -> "tuple[str, ...]":
    return tuple(rule.id for rule in ALL_RULES)


def select_rules(
    select: "tuple[str, ...] | None" = None,
    ignore: "tuple[str, ...] | None" = None,
) -> "list[Rule]":
    """Instantiate the registered rules, filtered by id.

    ``select`` keeps only the named rules; ``ignore`` drops the named ones.
    Unknown ids raise :class:`LintConfigError` so typos cannot silently
    disable a check.
    """
    known = set(rule_ids())
    for name in (*(select or ()), *(ignore or ())):
        if name not in known:
            raise LintConfigError(
                f"unknown rule {name!r}; known rules: {', '.join(sorted(known))}"
            )
    rules = default_rules()
    if select:
        rules = [rule for rule in rules if rule.id in select]
    if ignore:
        rules = [rule for rule in rules if rule.id not in ignore]
    return rules
