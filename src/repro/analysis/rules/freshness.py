"""Rule keeping long-lived mediator state on :class:`KnowledgeStore` (PR 10).

The refresh subsystem swaps knowledge generations atomically through a
:class:`~repro.mining.store.KnowledgeStore`; mediators and planners that
hold the store (and snapshot ``store.current`` once per query) pick a new
generation up on their next retrieval, and the plan cache misses by
construction because its keys carry the generation fingerprint.  A
constructor that instead captures the bare :class:`KnowledgeBase` pins one
generation forever — the component keeps planning on statistics every
refresh has already replaced, which is exactly the stale-knowledge hazard
the store indirection exists to remove.

Single-query snapshots are legitimate — a planner's per-call generators
*must* hold one generation so a retrieval never mixes statistics mid-query
— so those few dataclass fields carry a rule suppression with a
justification, keeping every pinned generation a reviewed exemption.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, Severity

__all__ = ["StaleKnowledgeCaptureRule"]

#: The packages whose components must read through the store.
KNOWLEDGE_CONSUMER_PACKAGES = (
    "repro.core",
    "repro.planner",
)


def _annotation_text(annotation: "ast.expr | None") -> str:
    if annotation is None:
        return ""
    return ast.unparse(annotation)


def _pins_generation(annotation: "ast.expr | None") -> bool:
    """Whether *annotation* admits only a bare, unswappable KnowledgeBase."""
    text = _annotation_text(annotation)
    return "KnowledgeBase" in text and "KnowledgeStore" not in text


class StaleKnowledgeCaptureRule(Rule):
    """Flag core/planner state that pins one knowledge generation."""

    id = "stale-knowledge-capture"
    severity = Severity.WARNING
    description = (
        "core/planner components must read mined statistics through a "
        "KnowledgeStore (as_store + per-query snapshot), not capture a "
        "bare KnowledgeBase in long-lived state"
    )
    rationale = (
        "knowledge refresh installs new generations atomically through the "
        "KnowledgeStore; a constructor or class field that stores the bare "
        "KnowledgeBase pins the generation it was built with, so every "
        "refresh silently bypasses that component and it keeps planning on "
        "replaced statistics.  Single-query snapshot fields are exempt — "
        "with a justification."
    )

    def __init__(self, packages: "tuple[str, ...]" = KNOWLEDGE_CONSUMER_PACKAGES):
        self.packages = packages

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.in_package(*self.packages):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            yield from self._class_fields(context, node)
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                    yield from self._init_captures(context, item)

    def _class_fields(self, context: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        """Dataclass-style fields annotated as a bare KnowledgeBase."""
        for item in cls.body:
            if isinstance(item, ast.AnnAssign) and _pins_generation(item.annotation):
                target = (
                    item.target.id if isinstance(item.target, ast.Name) else "field"
                )
                yield self.finding(
                    context,
                    item,
                    f"{cls.name}.{target} pins one KnowledgeBase generation; "
                    "widen to 'KnowledgeBase | KnowledgeStore' and resolve per "
                    "use, or suppress with a justification if a single-query "
                    "snapshot is the point",
                )

    def _init_captures(
        self, context: ModuleContext, init: ast.FunctionDef
    ) -> Iterator[Finding]:
        """``self.x = knowledge`` where the parameter can be a KnowledgeBase."""
        arguments = init.args
        knowledge_params = {
            arg.arg
            for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs)
            if "KnowledgeBase" in _annotation_text(arg.annotation)
        }
        if not knowledge_params:
            return
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Name)
                and node.value.id in knowledge_params
            ):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield self.finding(
                        context,
                        node,
                        f"__init__ stores knowledge parameter "
                        f"{node.value.id!r} verbatim on self.{target.attr}; "
                        "wrap it in as_store(...) and snapshot .current once "
                        "per query so refresh swaps reach this component",
                    )
                    break
