"""The qpiadlint rule framework: findings, suppressions, module contexts.

QPIAD's correctness rests on invariants the Python type system cannot
express — SQL NULL comparison semantics, the mediator's autonomy
constraint, seeded randomness for reproducible paper figures.  This module
provides the substrate for checking them *statically*, in the spirit of
treating completeness/correctness reasoning as a property decidable before
execution rather than discovered at runtime:

* :class:`Rule` — a named, documented check over one module's AST,
* :class:`Finding` — one violation, with a stable sort order,
* :class:`Severity` — error / warning / info,
* :class:`ModuleContext` — a parsed module plus its dotted name,
* :class:`SuppressionIndex` — ``# qpiadlint: disable=...`` comment handling.

Suppression grammar (comments are extracted with :mod:`tokenize`, so
string literals that merely *look* like directives are ignored):

* ``# qpiadlint: disable=rule-a,rule-b`` — trailing a code line, suppresses
  those rules on that line only;
* ``# qpiadlint: disable-next-line=rule-a`` — suppresses on the following
  line;
* ``# qpiadlint: disable-file=rule-a`` — anywhere in the file, suppresses
  for the whole module (conventionally placed right under the docstring
  with a justification);
* ``# qpiadlint: disable-package=rule-a`` — in a package's ``__init__.py``,
  suppresses for every module under that package.  In any other module the
  directive is *ignored* and reported as a ``misplaced-directive`` finding
  (it used to silently act as ``disable-file``, which contradicted this
  grammar).

``disable=all`` is deliberately rejected: suppressions must name the rule
they silence so every exemption stays searchable and reviewable.

Alongside the per-module :class:`Rule`, :class:`ProjectRule` is the
whole-program pass kind: it checks a parsed
:class:`~repro.analysis.project.ProjectIndex` (plus its call graph) rather
than one module at a time, so invariants that span module boundaries —
lock discipline on state shared across executor threads, seed provenance
across call chains — are checkable too.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import IntEnum
from pathlib import Path
from typing import Any, Iterator

from repro.errors import QpiadError

__all__ = [
    "LintConfigError",
    "Severity",
    "Finding",
    "ModuleContext",
    "Rule",
    "ProjectRule",
    "SuppressionIndex",
    "parse_directives",
]

_DIRECTIVE = re.compile(
    r"#\s*qpiadlint:\s*(?P<kind>disable(?:-next-line|-file|-package)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)


class LintConfigError(QpiadError):
    """A malformed suppression directive or rule selection."""


class Severity(IntEnum):
    """How bad an unsuppressed finding is.  Any finding fails the lint."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise LintConfigError(f"unknown severity {text!r}") from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Field order defines the sort order (path, line, column, rule), which is
    what keeps reporter output byte-stable across runs.
    """

    path: str
    line: int
    column: int
    rule: str
    severity: Severity
    message: str

    def format(self) -> str:
        # ``!s`` matters: pre-3.11 IntEnum formats as its integer value.
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity!s}: [{self.rule}] {self.message}"
        )


@dataclass
class ModuleContext:
    """A module being linted: source text, parsed tree, dotted name."""

    path: Path
    source: str
    tree: ast.Module
    module: str
    suppressions: "SuppressionIndex" = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.suppressions is None:
            # ``disable-package`` is only meaningful in a package __init__.py;
            # elsewhere it is collected as misplaced and never honoured.
            self.suppressions = SuppressionIndex.from_source(
                self.source, allow_package=self.path.name == "__init__.py"
            )

    @classmethod
    def from_source(
        cls, source: str, path: "Path | str" = "<memory>", module: str = "module"
    ) -> "ModuleContext":
        """Build a context from a source string (used heavily by tests)."""
        tree = ast.parse(source)
        return cls(path=Path(path), source=source, tree=tree, module=module)

    @classmethod
    def from_file(cls, path: Path, module: str) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(path=path, source=source, tree=tree, module=module)

    def in_package(self, *prefixes: str) -> bool:
        """Whether the module lives under any of the dotted *prefixes*."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule(ABC):
    """One named invariant check.

    Subclasses set the class attributes and implement :meth:`check`, which
    yields findings for one module.  Rules must be stateless across modules
    (one instance is reused for the whole run).
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    rationale: str = ""

    @abstractmethod
    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in *context*."""

    def finding(self, context: ModuleContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at *node* in *context*."""
        return Finding(
            path=str(context.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )

    def __repr__(self) -> str:
        return f"<Rule {self.id}>"


class ProjectRule(ABC):
    """One whole-program invariant check.

    Where :class:`Rule` sees one module's AST at a time, a project rule
    checks the fully indexed tree — symbol tables, inferred attribute
    types, and the call graph — so it can follow values and control flow
    across module boundaries.  Project rules run once per lint invocation
    (after every module has been parsed) and must likewise be stateless
    across runs.  Findings are anchored in whichever module the evidence
    lives in; the runner routes each finding through that module's
    suppression index exactly as for per-module rules.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    rationale: str = ""

    @abstractmethod
    def check(self, project: "Any", graph: "Any") -> Iterator[Finding]:
        """Yield every violation over *project* (a
        :class:`~repro.analysis.project.ProjectIndex`) and its *graph*
        (a :class:`~repro.analysis.project.CallGraph`)."""

    def finding(self, path: "Path | str", node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at *node* in the module at *path*."""
        return Finding(
            path=str(path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )

    def __repr__(self) -> str:
        return f"<ProjectRule {self.id}>"


def parse_directives(source: str) -> Iterator[tuple[str, int, frozenset[str]]]:
    """Yield ``(kind, line, rules)`` for each suppression comment in *source*.

    Uses the tokenizer so only genuine comments count.  Malformed rule lists
    (empty, or the non-specific ``all``) raise :class:`LintConfigError` —
    a suppression that silences everything is itself a lint violation.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse guard
        return
    for line, text in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        if not rules:
            raise LintConfigError(f"empty qpiadlint directive on line {line}: {text!r}")
        if "all" in rules:
            raise LintConfigError(
                f"line {line}: 'disable=all' is not allowed; name the rules explicitly"
            )
        yield match.group("kind"), line, rules


class SuppressionIndex:
    """Which rules are suppressed at which lines of one module.

    Besides answering :meth:`is_suppressed`, the index remembers every
    directive it was built from (with its line) and which of them actually
    fired, so the runner can report stale suppressions
    (``unused-suppression``) and ``disable-package`` directives declared
    outside a package ``__init__.py`` (``misplaced-directive``).
    """

    def __init__(
        self,
        line_rules: "dict[int, frozenset[str]] | None" = None,
        file_rules: "frozenset[str] | None" = None,
        package_rules: "frozenset[str] | None" = None,
        *,
        directives: "tuple[tuple[str, int, frozenset[str]], ...]" = (),
        misplaced_package_directives: "tuple[tuple[int, frozenset[str]], ...]" = (),
    ):
        self._line_rules: dict[int, set[str]] = {
            line: set(rules) for line, rules in (line_rules or {}).items()
        }
        self.file_rules = frozenset(file_rules or ())
        self.package_rules = frozenset(package_rules or ())
        #: Every parsed directive, as ``(kind, line, rules)``.
        self.directives = directives
        #: ``disable-package`` directives found outside an ``__init__.py``.
        self.misplaced_package_directives = misplaced_package_directives
        self._used: set[str] = set()
        self._used_lines: set[tuple[int, str]] = set()
        self._used_file: set[str] = set()
        self._used_package: set[str] = set()

    @classmethod
    def from_source(cls, source: str, *, allow_package: bool = True) -> "SuppressionIndex":
        line_rules: dict[int, set[str]] = {}
        file_rules: set[str] = set()
        package_rules: set[str] = set()
        directives: list[tuple[str, int, frozenset[str]]] = []
        misplaced: list[tuple[int, frozenset[str]]] = []
        for kind, line, rules in parse_directives(source):
            if kind == "disable":
                line_rules.setdefault(line, set()).update(rules)
            elif kind == "disable-next-line":
                line_rules.setdefault(line + 1, set()).update(rules)
            elif kind == "disable-file":
                file_rules.update(rules)
            elif allow_package:  # disable-package, legitimately in an __init__.py
                package_rules.update(rules)
            else:  # disable-package outside an __init__.py: ignored, reported
                misplaced.append((line, rules))
                continue
            directives.append((kind, line, rules))
        return cls(
            {line: frozenset(rules) for line, rules in line_rules.items()},
            frozenset(file_rules),
            frozenset(package_rules),
            directives=tuple(directives),
            misplaced_package_directives=tuple(misplaced),
        )

    def add_package_rules(self, rules: frozenset[str]) -> None:
        """Fold in suppressions inherited from enclosing packages."""
        self.package_rules = self.package_rules | rules

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_rules:
            self._used.add(finding.rule)
            self._used_file.add(finding.rule)
            return True
        if finding.rule in self.package_rules:
            self._used.add(finding.rule)
            self._used_package.add(finding.rule)
            return True
        rules = self._line_rules.get(finding.line, ())
        if finding.rule in rules:
            self._used.add(finding.rule)
            self._used_lines.add((finding.line, finding.rule))
            return True
        return False

    @property
    def used_rules(self) -> frozenset[str]:
        """Rules that actually suppressed at least one finding."""
        return frozenset(self._used)

    @property
    def used_package_rules(self) -> frozenset[str]:
        """Rules suppressed here *via an inherited package directive*."""
        return frozenset(self._used_package)

    def unused_directives(
        self, active: frozenset[str], known: frozenset[str]
    ) -> "list[tuple[int, str, str]]":
        """Line/file directives that suppressed nothing, as ``(line, rule, why)``.

        Directives naming a *known but inactive* rule (``--select`` narrowed
        the run) are skipped — absence of findings proves nothing there.
        ``disable-package`` directives are excluded too: their usage spans
        modules, so the runner aggregates them package-wide.
        """
        stale: list[tuple[int, str, str]] = []
        for kind, line, rules in self.directives:
            if kind == "disable-package":
                continue
            for rule in sorted(rules):
                if rule not in known:
                    stale.append((line, rule, "unknown rule"))
                    continue
                if rule not in active:
                    continue
                if kind == "disable-file":
                    if rule not in self._used_file:
                        stale.append((line, rule, "suppressed nothing"))
                    continue
                effective_line = line + 1 if kind == "disable-next-line" else line
                if (effective_line, rule) not in self._used_lines:
                    stale.append((line, rule, "suppressed nothing"))
        return stale
