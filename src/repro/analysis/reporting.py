"""Rendering lint reports as human text or machine-stable JSON.

The JSON form is a contract: findings are sorted (path, line, column,
rule), keys are emitted in sorted order, and no timestamps or absolute
machine state leak in — identical trees produce byte-identical output,
so CI can diff reports across runs.
"""

from __future__ import annotations

import json

from repro.analysis.framework import Severity
from repro.analysis.runner import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: LintReport, verbose: bool = False) -> str:
    """A compact, grep-friendly text report."""
    lines = [finding.format() for finding in report.findings]
    errors = report.count(Severity.ERROR)
    warnings = report.count(Severity.WARNING)
    if report.findings:
        lines.append(
            f"{len(report.findings)} finding(s) ({errors} error(s), "
            f"{warnings} warning(s)) in {report.files_checked} file(s); "
            f"{report.suppressed_count} suppressed"
        )
    else:
        lines.append(
            f"clean: {report.files_checked} file(s), "
            f"{report.suppressed_count} finding(s) suppressed"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-readable report; stable across runs on identical input."""
    payload = {
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "rule": finding.rule,
                "severity": str(finding.severity),
                "message": finding.message,
            }
            for finding in sorted(report.findings)
        ],
        "summary": {
            "errors": report.count(Severity.ERROR),
            "warnings": report.count(Severity.WARNING),
            "files_checked": report.files_checked,
            "suppressed": report.suppressed_count,
            "total": len(report.findings),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
