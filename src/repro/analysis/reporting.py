"""Rendering lint reports: human text, machine-stable JSON, and SARIF.

The JSON form is a contract: findings are sorted (path, line, column,
rule), keys are emitted in sorted order, and no timestamps or absolute
machine state leak in — identical trees produce byte-identical output,
so CI can diff reports across runs.  The SARIF form (2.1.0) follows the
same stability rules and is what CI uploads to GitHub code scanning.

This module also renders the rule catalogue itself — the ``--list-rules``
table and the generated rule-reference table in ``docs/linting.md`` both
come from :func:`iter_rule_rows`, so the docs cannot drift from the
registry (a test asserts they agree).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, NamedTuple

from repro.analysis.framework import Severity
from repro.analysis.runner import LintReport

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "render_rule_list",
    "render_rule_reference",
    "iter_rule_rows",
]

#: Findings the runner emits itself; described here so SARIF rule metadata
#: and the catalogue cover every rule id a report can contain.
_PSEUDO_RULES: "dict[str, tuple[Severity, str, str]]" = {
    "parse-error": (
        Severity.ERROR,
        "a linted file failed to parse",
        "an unparseable file would otherwise silently drop out of every check",
    ),
    "misplaced-directive": (
        Severity.WARNING,
        "a disable-package directive outside a package __init__.py (ignored)",
        "package-wide suppressions are declared once, in the package "
        "__init__.py, where review can find them",
    ),
    "unused-suppression": (
        Severity.WARNING,
        "a suppression directive that suppressed nothing, or names an "
        "unknown rule (reported under --strict-suppressions)",
        "stale exemptions hide the rule they once silenced; pruning them "
        "keeps the suppression budget honest",
    ),
}


def render_text(report: LintReport, verbose: bool = False) -> str:
    """A compact, grep-friendly text report."""
    lines = [finding.format() for finding in report.findings]
    errors = report.count(Severity.ERROR)
    warnings = report.count(Severity.WARNING)
    if report.findings:
        lines.append(
            f"{len(report.findings)} finding(s) ({errors} error(s), "
            f"{warnings} warning(s)) in {report.files_checked} file(s); "
            f"{report.suppressed_count} suppressed"
        )
    else:
        lines.append(
            f"clean: {report.files_checked} file(s), "
            f"{report.suppressed_count} finding(s) suppressed"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-readable report; stable across runs on identical input."""
    payload = {
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "rule": finding.rule,
                "severity": str(finding.severity),
                "message": finding.message,
            }
            for finding in sorted(report.findings)
        ],
        "summary": {
            "errors": report.count(Severity.ERROR),
            "warnings": report.count(Severity.WARNING),
            "files_checked": report.files_checked,
            "suppressed": report.suppressed_count,
            "total": len(report.findings),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


class RuleRow(NamedTuple):
    """One catalogue entry, in registry (= reporting) order."""

    id: str
    kind: str  # "module" | "project" | "runner"
    severity: Severity
    description: str
    rationale: str


def iter_rule_rows() -> Iterator[RuleRow]:
    """Every rule id a report can contain, with its registered metadata."""
    from repro.analysis.rules import ALL_PROJECT_RULES, ALL_RULES

    for rule in ALL_RULES:
        yield RuleRow(rule.id, "module", rule.severity, rule.description, rule.rationale)
    for rule in ALL_PROJECT_RULES:
        yield RuleRow(rule.id, "project", rule.severity, rule.description, rule.rationale)
    for rule_id, (severity, description, rationale) in _PSEUDO_RULES.items():
        yield RuleRow(rule_id, "runner", severity, description, rationale)


def render_sarif(report: LintReport) -> str:
    """The report as SARIF 2.1.0; stable across runs on identical input."""
    rules = [
        {
            "id": row.id,
            "shortDescription": {"text": row.description},
            "help": {"text": row.rationale},
            "defaultConfiguration": {"level": _SARIF_LEVELS[row.severity]},
        }
        for row in sorted(iter_rule_rows())
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(finding.path).as_posix(),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column,
                        },
                    }
                }
            ],
        }
        for finding in sorted(report.findings)
    ]
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "qpiadlint",
                        "informationUri": "https://example.invalid/qpiad/docs/linting.md",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` catalogue: one block per rule, registry order."""
    blocks = []
    for row in iter_rule_rows():
        blocks.append(
            f"{row.id}  ({row.kind} rule, {row.severity!s})\n"
            f"    {row.description}\n"
            f"    why: {row.rationale}"
        )
    return "\n".join(blocks)


def render_rule_reference() -> str:
    """The generated markdown rule table embedded in ``docs/linting.md``."""
    lines = [
        "| rule | kind | severity | description |",
        "|---|---|---|---|",
    ]
    for row in iter_rule_rows():
        description = row.description.replace("|", "\\|")
        lines.append(f"| `{row.id}` | {row.kind} | {row.severity!s} | {description} |")
    return "\n".join(lines)
