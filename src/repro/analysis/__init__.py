"""``repro.analysis`` — static analysis of the reproduction's own invariants.

The type system cannot see that ``NULL == NULL`` must be false, that the
mediator must reach base data only through
:class:`~repro.sources.AutonomousSource`, or that every RNG must be
seeded.  This package checks those invariants over the AST, wired up as
``qpiad lint`` (and the ``qpiadlint`` console script), a tier-1 self-lint
test, and a CI job.  Per-module rules live under ``rules/``; the
whole-program layer (project index, call graph, interprocedural passes)
lives under ``project/``.  See ``docs/linting.md`` for the catalogue.
"""

from repro.analysis.framework import (
    Finding,
    LintConfigError,
    ModuleContext,
    ProjectRule,
    Rule,
    Severity,
    SuppressionIndex,
)
from repro.analysis.reporting import render_json, render_sarif, render_text
from repro.analysis.rules import (
    ALL_PROJECT_RULES,
    ALL_RULES,
    default_project_rules,
    default_rules,
    project_rule_ids,
    rule_ids,
    select_project_rules,
    select_rules,
)
from repro.analysis.runner import LintReport, lint_context, lint_paths

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "Finding",
    "LintConfigError",
    "LintReport",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "SuppressionIndex",
    "default_project_rules",
    "default_rules",
    "lint_context",
    "lint_paths",
    "project_rule_ids",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "select_project_rules",
    "select_rules",
]
