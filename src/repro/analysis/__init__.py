"""``repro.analysis`` — static analysis of the reproduction's own invariants.

The type system cannot see that ``NULL == NULL`` must be false, that the
mediator must reach base data only through
:class:`~repro.sources.AutonomousSource`, or that every RNG must be
seeded.  This package checks those invariants over the AST, wired up as
``qpiad lint`` (and the ``qpiadlint`` console script), a tier-1 self-lint
test, and a CI job.  See ``docs/linting.md`` for the rule catalogue.
"""

from repro.analysis.framework import (
    Finding,
    LintConfigError,
    ModuleContext,
    Rule,
    Severity,
    SuppressionIndex,
)
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import ALL_RULES, default_rules, rule_ids, select_rules
from repro.analysis.runner import LintReport, lint_context, lint_paths

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfigError",
    "LintReport",
    "ModuleContext",
    "Rule",
    "Severity",
    "SuppressionIndex",
    "default_rules",
    "lint_context",
    "lint_paths",
    "render_json",
    "render_text",
    "rule_ids",
    "select_rules",
]
