"""The ``qpiad lint`` / ``qpiadlint`` command.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error — the same
contract as the rest of the ``qpiad`` CLI, so CI scripts can chain it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.framework import LintConfigError
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import ALL_RULES, select_rules
from repro.analysis.runner import lint_paths

__all__ = ["main", "run_lint", "add_lint_arguments"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to *parser* (shared with ``qpiad lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src/repro")],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json output is sorted and byte-stable)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def _render_rule_list() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.id} [{rule.severity!s}]")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed *args*."""
    if args.list_rules:
        print(_render_rule_list())
        return 0
    try:
        rules = select_rules(
            tuple(args.select) if args.select else None,
            tuple(args.ignore) if args.ignore else None,
        )
    except LintConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2
    try:
        report = lint_paths(args.paths, rules)
    except LintConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rendered = render_json(report) if args.format == "json" else render_text(report)
    print(rendered)
    return report.exit_code


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="qpiadlint",
        description="AST-based domain-invariant linter for the QPIAD reproduction",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
