"""The ``qpiad lint`` / ``qpiadlint`` command.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error — the same
contract as the rest of the ``qpiad`` CLI, so CI scripts can chain it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.framework import LintConfigError
from repro.analysis.reporting import (
    render_json,
    render_rule_list,
    render_rule_reference,
    render_sarif,
    render_text,
)
from repro.analysis.rules import select_project_rules, select_rules
from repro.analysis.runner import lint_paths

__all__ = ["main", "run_lint", "add_lint_arguments"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to *parser* (shared with ``qpiad lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src/repro")],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif", "markdown"),
        default="text",
        help=(
            "report format (json and sarif output is sorted and byte-stable; "
            "markdown is only valid with --list-rules and emits the docs "
            "rule-reference table)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only this rule (repeatable; module and project rules alike)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip this rule (repeatable; module and project rules alike)",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help=(
            "skip the whole-program passes (project index + call graph); "
            "they otherwise run whenever the linted set contains a package"
        ),
    )
    parser.add_argument(
        "--strict-suppressions",
        action="store_true",
        help=(
            "report suppression directives that suppressed nothing as "
            "unused-suppression findings (on in CI)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed *args*."""
    if args.list_rules:
        if args.format == "markdown":
            print(render_rule_reference())
        else:
            print(render_rule_list())
        return 0
    if args.format == "markdown":
        print("error: --format markdown is only valid with --list-rules", file=sys.stderr)
        return 2
    select = tuple(args.select) if args.select else None
    ignore = tuple(args.ignore) if args.ignore else None
    try:
        rules = select_rules(select, ignore)
        project_rules = select_project_rules(select, ignore)
    except LintConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2
    try:
        report = lint_paths(
            args.paths,
            rules,
            project_rules=project_rules,
            include_project=not args.no_project,
            strict_suppressions=args.strict_suppressions,
        )
    except LintConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = render_text(report)
    print(rendered)
    return report.exit_code


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="qpiadlint",
        description="AST-based domain-invariant linter for the QPIAD reproduction",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
