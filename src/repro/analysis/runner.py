"""Discovering, parsing and linting modules; aggregating a report.

The runner maps files to dotted module names by walking up through
``__init__.py``-bearing directories, so package-scoped rules (e.g.
``raw-relation-access`` over ``repro.core``) see the same names imports
use.  Package-level suppressions declared in an ``__init__.py`` apply to
every module beneath it.

Each file is parsed exactly once: the resulting :class:`ModuleContext`
objects feed the per-module rules *and* — when the linted set contains a
package — the whole-program passes
(:class:`~repro.analysis.framework.ProjectRule`), whose findings are
routed back through the owning module's suppression index.

Beyond rule findings, the runner emits three pseudo-rules of its own:

* ``parse-error`` — a file failed to parse (always on; one broken file
  cannot mask findings in the rest of the tree);
* ``misplaced-directive`` — a ``disable-package`` directive outside a
  package ``__init__.py`` (always on; the directive is ignored there);
* ``unused-suppression`` — a directive that suppressed nothing, or names
  an unknown rule (only with ``strict_suppressions``; package directives
  are aggregated across every module they cover before being judged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.framework import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    Severity,
    parse_directives,
)

__all__ = [
    "LintReport",
    "lint_paths",
    "lint_context",
    "iter_python_files",
    "module_name_for",
    "PSEUDO_RULE_IDS",
]

_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "build", "dist"})

#: Findings the runner itself may emit, valid in ``--select`` / directives.
PSEUDO_RULE_IDS = ("parse-error", "misplaced-directive", "unused-suppression")


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: "list[Finding]" = field(default_factory=list)
    suppressed_count: int = 0
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def count(self, severity: Severity) -> int:
        return sum(1 for finding in self.findings if finding.severity is severity)

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed_count += other.suppressed_count
        self.files_checked += other.files_checked

    def sort(self) -> None:
        self.findings.sort()


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths*, deterministically ordered."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIPPED_DIRS for part in candidate.parts):
                yield candidate


def module_name_for(path: Path) -> str:
    """The dotted module name of *path*, derived from the package tree."""
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if path.name == "__init__.py":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


def _package_declarations(
    directory: Path, cache: "dict[Path, dict[str, int]]"
) -> "dict[str, int]":
    """``rule -> declaring line`` from *directory*'s ``__init__.py``, cached."""
    if directory not in cache:
        declared: dict[str, int] = {}
        source = (directory / "__init__.py").read_text(encoding="utf-8")
        for kind, line, names in parse_directives(source):
            if kind == "disable-package":
                for name in names:
                    declared.setdefault(name, line)
        cache[directory] = declared
    return cache[directory]


def _package_suppressions(
    path: Path, cache: "dict[Path, dict[str, int]]"
) -> frozenset[str]:
    """Union of disable-package rules from every enclosing ``__init__.py``."""
    rules: set[str] = set()
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        rules.update(_package_declarations(parent, cache))
        parent = parent.parent
    return frozenset(rules)


def _misplaced_directive_findings(context: ModuleContext) -> "list[Finding]":
    findings: list[Finding] = []
    for line, rules in context.suppressions.misplaced_package_directives:
        findings.append(
            Finding(
                path=str(context.path),
                line=line,
                column=1,
                rule="misplaced-directive",
                severity=Severity.WARNING,
                message=(
                    f"disable-package={','.join(sorted(rules))} is only honoured "
                    "in a package __init__.py and is ignored here; use "
                    "disable-file, or move the directive into the package "
                    "__init__.py"
                ),
            )
        )
    return findings


def lint_context(context: ModuleContext, rules: Iterable[Rule]) -> LintReport:
    """Run *rules* over one parsed module, honouring its suppressions."""
    report = LintReport(files_checked=1)
    for rule in rules:
        for finding in rule.check(context):
            if context.suppressions.is_suppressed(finding):
                report.suppressed_count += 1
            else:
                report.findings.append(finding)
    for finding in _misplaced_directive_findings(context):
        if context.suppressions.is_suppressed(finding):
            report.suppressed_count += 1
        else:
            report.findings.append(finding)
    report.sort()
    return report


def _run_project_rules(
    contexts: Sequence[ModuleContext],
    project_rules: Sequence[ProjectRule],
    report: LintReport,
) -> None:
    from repro.analysis.project import ProjectIndex, build_call_graph

    index = ProjectIndex.build(contexts)
    graph = build_call_graph(index)
    by_path = {str(context.path): context for context in contexts}
    for rule in project_rules:
        for finding in rule.check(index, graph):
            owner = by_path.get(finding.path)
            if owner is not None and owner.suppressions.is_suppressed(finding):
                report.suppressed_count += 1
            else:
                report.findings.append(finding)


def _mark_package_usage(
    contexts: Sequence[ModuleContext],
    cache: "dict[Path, dict[str, int]]",
) -> "set[tuple[Path, str]]":
    """``(package dir, rule)`` pairs whose directive suppressed something."""
    used: set[tuple[Path, str]] = set()
    for context in contexts:
        fired = context.suppressions.used_package_rules
        if not fired:
            continue
        parent = context.path.resolve().parent
        while (parent / "__init__.py").exists():
            declared = cache.get(parent, {})
            used.update((parent, rule) for rule in fired if rule in declared)
            parent = parent.parent
    return used


def _unused_suppression_findings(
    contexts: Sequence[ModuleContext],
    active: frozenset[str],
    known: frozenset[str],
    cache: "dict[Path, dict[str, int]]",
) -> "list[Finding]":
    findings: list[Finding] = []
    for context in contexts:
        for line, rule, why in context.suppressions.unused_directives(active, known):
            findings.append(
                Finding(
                    path=str(context.path),
                    line=line,
                    column=1,
                    rule="unused-suppression",
                    severity=Severity.WARNING,
                    message=f"suppression of '{rule}' is stale: {why}",
                )
            )
    used_pairs = _mark_package_usage(contexts, cache)
    for context in contexts:
        if context.path.name != "__init__.py":
            continue
        directory = context.path.resolve().parent
        for rule, line in sorted(cache.get(directory, {}).items()):
            if rule in known:
                if rule not in active or (directory, rule) in used_pairs:
                    continue
                why = "it suppressed nothing anywhere in the package"
            else:
                why = "unknown rule"
            findings.append(
                Finding(
                    path=str(context.path),
                    line=line,
                    column=1,
                    rule="unused-suppression",
                    severity=Severity.WARNING,
                    message=f"disable-package of '{rule}' is stale: {why}",
                )
            )
    return findings


def lint_paths(
    paths: Sequence["Path | str"],
    rules: "Iterable[Rule] | None" = None,
    *,
    project_rules: "Iterable[ProjectRule] | None" = None,
    include_project: bool = True,
    strict_suppressions: bool = False,
) -> LintReport:
    """Lint every Python file under *paths* and return the merged report.

    Files that fail to parse contribute a ``parse-error`` finding rather
    than aborting the run, so one broken file cannot mask findings in the
    rest of the tree.  Whole-program passes run when the linted set
    contains at least one package ``__init__.py`` (there is no "project"
    to analyse in a bag of loose scripts); ``include_project=False``
    (the CLI's ``--no-project``) skips them outright.  With
    ``strict_suppressions``, directives that suppressed nothing become
    ``unused-suppression`` findings.
    """
    from repro.analysis.rules import default_project_rules, default_rules

    active = list(rules) if rules is not None else default_rules()
    project_active: "list[ProjectRule]" = []
    if include_project:
        project_active = (
            list(project_rules) if project_rules is not None else default_project_rules()
        )
    report = LintReport()
    package_cache: "dict[Path, dict[str, int]]" = {}
    contexts: list[ModuleContext] = []
    has_package = False
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            context = ModuleContext.from_file(file_path, module_name_for(file_path))
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    path=str(file_path),
                    line=exc.lineno or 1,
                    column=(exc.offset or 0) + 1,
                    rule="parse-error",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            report.files_checked += 1
            continue
        if file_path.name == "__init__.py":
            has_package = True
        context.suppressions.add_package_rules(
            _package_suppressions(file_path, package_cache)
        )
        contexts.append(context)
        report.merge(lint_context(context, active))
    ran_project = bool(project_active) and has_package and bool(contexts)
    if ran_project:
        _run_project_rules(contexts, project_active, report)
    if strict_suppressions:
        from repro.analysis.rules import project_rule_ids, rule_ids

        active_ids = frozenset(rule.id for rule in active) | frozenset(
            rule.id for rule in (project_active if ran_project else ())
        )
        known_ids = (
            frozenset(rule_ids())
            | frozenset(project_rule_ids())
            | frozenset(PSEUDO_RULE_IDS)
            | active_ids
        )
        report.findings.extend(
            _unused_suppression_findings(contexts, active_ids, known_ids, package_cache)
        )
    report.sort()
    return report
