"""Discovering, parsing and linting modules; aggregating a report.

The runner maps files to dotted module names by walking up through
``__init__.py``-bearing directories, so package-scoped rules (e.g.
``raw-relation-access`` over ``repro.core``) see the same names imports
use.  Package-level suppressions declared in an ``__init__.py`` apply to
every module beneath it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.framework import (
    Finding,
    ModuleContext,
    Rule,
    Severity,
    parse_directives,
)

__all__ = ["LintReport", "lint_paths", "lint_context", "iter_python_files", "module_name_for"]

_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "build", "dist"})


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: "list[Finding]" = field(default_factory=list)
    suppressed_count: int = 0
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def count(self, severity: Severity) -> int:
        return sum(1 for finding in self.findings if finding.severity is severity)

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed_count += other.suppressed_count
        self.files_checked += other.files_checked

    def sort(self) -> None:
        self.findings.sort()


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths*, deterministically ordered."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIPPED_DIRS for part in candidate.parts):
                yield candidate


def module_name_for(path: Path) -> str:
    """The dotted module name of *path*, derived from the package tree."""
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if path.name == "__init__.py":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


def _package_suppressions(path: Path, cache: "dict[Path, frozenset[str]]") -> frozenset[str]:
    """Union of disable-package rules from every enclosing ``__init__.py``."""
    rules: set[str] = set()
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        if parent not in cache:
            collected: set[str] = set()
            source = (parent / "__init__.py").read_text(encoding="utf-8")
            for kind, __, names in parse_directives(source):
                if kind == "disable-package":
                    collected.update(names)
            cache[parent] = frozenset(collected)
        rules.update(cache[parent])
        parent = parent.parent
    return frozenset(rules)


def lint_context(context: ModuleContext, rules: Iterable[Rule]) -> LintReport:
    """Run *rules* over one parsed module, honouring its suppressions."""
    report = LintReport(files_checked=1)
    for rule in rules:
        for finding in rule.check(context):
            if context.suppressions.is_suppressed(finding):
                report.suppressed_count += 1
            else:
                report.findings.append(finding)
    report.sort()
    return report


def lint_paths(
    paths: Sequence["Path | str"], rules: "Iterable[Rule] | None" = None
) -> LintReport:
    """Lint every Python file under *paths* and return the merged report.

    Files that fail to parse contribute a ``parse-error`` finding rather
    than aborting the run, so one broken file cannot mask findings in the
    rest of the tree.
    """
    from repro.analysis.rules import default_rules

    active = list(rules) if rules is not None else default_rules()
    report = LintReport()
    package_cache: "dict[Path, frozenset[str]]" = {}
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            context = ModuleContext.from_file(file_path, module_name_for(file_path))
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    path=str(file_path),
                    line=exc.lineno or 1,
                    column=(exc.offset or 0) + 1,
                    rule="parse-error",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            report.files_checked += 1
            continue
        context.suppressions.add_package_rules(
            _package_suppressions(file_path, package_cache)
        )
        report.merge(lint_context(context, active))
    report.sort()
    return report
