"""The paper's comparison baselines: AllReturned and AllRanked (Section 1, 6.2).

Both baselines require the (counterfactual) ability to bind NULL values in
queries, which real web databases lack — that is exactly the gap QPIAD's
rewriting closes.  They are implemented against sources configured with
``allows_null_binding=True`` so the paper's quality/efficiency comparisons
can be reproduced:

* **AllReturned** — return the certain answers plus *every* tuple with a
  NULL on a constrained attribute, unranked (high recall, poor precision).
* **AllRanked** — retrieve the same set, then rank the possible answers by
  the classifier's assessed relevance (better precision, but it must drag
  the entire NULL-bearing population over the network first — Fig. 8).
"""

from __future__ import annotations

from typing import Callable

from repro.core.results import QueryResult, RankedAnswer, RetrievalStats
from repro.core.rewriting import target_probability
from repro.engine import ExecutionPolicy, RetrievalEngine
from repro.mining.knowledge import KnowledgeBase
from repro.planner import baseline_plan
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation, Row
from repro.relational.values import is_null
from repro.sources.autonomous import AutonomousSource

__all__ = ["all_returned", "all_ranked"]


def _retrieve(
    source: AutonomousSource,
    query: SelectionQuery,
    max_nulls: int | None,
) -> tuple[Relation, Relation, RetrievalStats]:
    """Run the two-step counterfactual plan: certain set, then NULL fetch.

    Both calls go through the engine under a strict policy, so issuance is
    billed before each call and spans appear when traced, exactly as for
    the mediated pipelines.  The NULL-binding step is *required*: a source
    that cannot bind NULL fails the baseline loudly — that incapability is
    the entire point of the comparison.
    """
    stats = RetrievalStats()
    engine = RetrievalEngine(
        source,
        ExecutionPolicy.strict(),
        stats,
        label=str(query),
    )
    outcomes: dict[int, Relation] = {}
    for step, retrieved in engine.stream(baseline_plan(query, max_nulls=max_nulls)):
        outcomes[step.rank] = retrieved
    return outcomes[0], outcomes[1], stats


def all_returned(
    source: AutonomousSource,
    query: SelectionQuery,
    max_nulls: int | None = 1,
) -> QueryResult:
    """The A LL R ETURNED baseline: possible answers in database order.

    Possible answers carry confidence 0 (the baseline does not assess
    relevance); order is whatever the source returns.
    """
    certain, possible, stats = _retrieve(source, query, max_nulls)
    result = QueryResult(query=query, certain=certain, stats=stats)
    null_attr = _single_null_attribute(source, query)
    for row in possible:
        result.ranked.append(
            RankedAnswer(
                row=row,
                confidence=0.0,
                retrieved_by=query,
                target_attribute=null_attr(row),
            )
        )
    return result


def all_ranked(
    source: AutonomousSource,
    query: SelectionQuery,
    knowledge: KnowledgeBase,
    max_nulls: int | None = 1,
    method: str | None = None,
) -> QueryResult:
    """The A LL R ANKED baseline: retrieve all possible answers, rank each.

    Every NULL-bearing tuple is shipped to the mediator and ranked by the
    classifier posterior that its missing value satisfies the query — the
    per-tuple analogue of QPIAD's per-query precision.
    """
    certain, possible, stats = _retrieve(source, query, max_nulls)
    result = QueryResult(query=query, certain=certain, stats=stats)
    schema = source.schema
    null_attr = _single_null_attribute(source, query)

    answers: list[RankedAnswer] = []
    for row in possible:
        attribute = null_attr(row)
        evidence = {
            name: value
            for name, value in zip(schema.names, row)
            if not is_null(value) and name != attribute
        }
        confidence = target_probability(
            knowledge, attribute, query.conjuncts_on(attribute), evidence, method
        )
        answers.append(
            RankedAnswer(
                row=row,
                confidence=confidence,
                retrieved_by=query,
                target_attribute=attribute,
            )
        )
    answers.sort(key=lambda answer: -answer.confidence)
    result.ranked = answers
    return result


def _single_null_attribute(
    source: AutonomousSource, query: SelectionQuery
) -> "Callable[[Row], str]":
    """Helper returning the (first) constrained attribute NULL in a row."""
    schema = source.schema
    constrained = query.constrained_attributes

    def pick(row: Row) -> str:
        for name in constrained:
            if is_null(row[schema.index_of(name)]):
                return name
        return constrained[0]

    return pick
