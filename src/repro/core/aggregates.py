"""Aggregate queries over incomplete autonomous databases (Section 4.4).

Ignoring incomplete tuples skews Sum/Count aggregates low.  QPIAD improves
accuracy by also issuing the rewritten queries and folding a rewritten
query's aggregate into the total *only when* the most likely completion of
the missing attribute (given the query's determining-set evidence) equals
the original constrained value — the paper found this all-or-nothing rule
more accurate than weighting every query by its precision (footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import RetrievalStats
from repro.engine import (
    ExecutionPolicy,
    PlanExecutor,
    PlannedQuery,
    QueryKind,
    RetrievalEngine,
)
from repro.errors import QueryError
from repro.mining.knowledge import KnowledgeBase
from repro.mining.store import KnowledgeStore, as_store
from repro.planner import PlanCache, PlannerConfig, QueryPlanner
from repro.query.query import AggregateFunction, AggregateQuery
from repro.relational.relation import Relation
from repro.relational.values import is_null
from repro.sources.autonomous import AutonomousSource
from repro.telemetry import Telemetry

__all__ = ["AggregateResult", "AggregateProcessor"]


@dataclass
class AggregateResult:
    """Certain-only and prediction-augmented values of one aggregate query."""

    query: AggregateQuery
    certain_value: float | None
    predicted_value: float | None
    certain_count: int = 0
    possible_count: int = 0
    included_queries: int = 0
    considered_queries: int = 0
    stats: RetrievalStats = field(default_factory=RetrievalStats)

    @property
    def improvement_available(self) -> bool:
        """Whether prediction changed the aggregate at all."""
        return self.possible_count > 0


@dataclass
class _Accumulator:
    """Combines partial aggregates across the base set and rewritten queries."""

    function: AggregateFunction
    count: float = 0.0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    def add(self, values: list[float], weight: float = 1.0) -> None:
        self.count += weight * len(values)
        self.total += weight * sum(values)
        # Weighting has no sensible semantics for extrema; a value either
        # was observed or not.
        for value in values:
            self.minimum = value if self.minimum is None else min(self.minimum, value)
            self.maximum = value if self.maximum is None else max(self.maximum, value)

    def add_count(self, count: float) -> None:
        self.count += count

    def value(self) -> float | None:
        if self.function is AggregateFunction.COUNT:
            return float(self.count)
        if self.count == 0:
            return None
        if self.function is AggregateFunction.SUM:
            return self.total
        if self.function is AggregateFunction.AVG:
            return self.total / self.count
        if self.function is AggregateFunction.MIN:
            return self.minimum
        return self.maximum


class AggregateProcessor:
    """Executes aggregate queries with and without missing-value prediction.

    Parameters
    ----------
    inclusion_rule:
        How a rewritten query's partial aggregate is folded in:

        * ``"argmax"`` (the paper's choice) — all-or-nothing: include the
          whole partial aggregate iff the most likely completion equals the
          constrained value;
        * ``"fractional"`` (the paper's footnote-4 alternative) — weight the
          partial aggregate by the query's estimated precision.  The paper
          found this *less* accurate because every irrelevant tuple then
          contributes something; the ablation bench quantifies that.
    """

    def __init__(
        self,
        source: AutonomousSource,
        knowledge: "KnowledgeBase | KnowledgeStore",
        k: int | None = 10,
        alpha: float = 1.0,
        classifier_method: str | None = None,
        inclusion_rule: str = "argmax",
        max_concurrency: int = 1,
        telemetry: Telemetry | None = None,
        executor: PlanExecutor | None = None,
        plan_cache: PlanCache | None = None,
    ):
        if inclusion_rule not in ("argmax", "fractional"):
            raise QueryError(
                f"unknown inclusion rule {inclusion_rule!r}; "
                "expected 'argmax' or 'fractional'"
            )
        if max_concurrency < 1:
            raise QueryError(
                f"max_concurrency must be at least 1, got {max_concurrency}"
            )
        self.source = source
        self._store = as_store(knowledge)
        self.k = k
        self.alpha = alpha
        self.classifier_method = classifier_method
        self.inclusion_rule = inclusion_rule
        self.max_concurrency = max_concurrency
        self._telemetry = telemetry
        self._executor = executor
        self.planner = QueryPlanner(
            self._store,
            PlannerConfig(
                alpha=alpha,
                k=k,
                classifier_method=classifier_method,
                inclusion_rule=inclusion_rule,
            ),
            cache=plan_cache,
            telemetry=telemetry,
        )

    @property
    def store(self) -> KnowledgeStore:
        """The knowledge store this processor reads through."""
        return self._store

    @property
    def knowledge(self) -> KnowledgeBase:
        """Snapshot of the current knowledge generation."""
        return self._store.current

    def query(self, aggregate: AggregateQuery) -> AggregateResult:
        """Process *aggregate*, returning certain and predicted values.

        All source calls run through the retrieval engine under a strict
        policy: aggregates are numbers, not answer lists, so there is no
        sensible partial result to degrade to and any failure propagates.
        """
        selection = aggregate.selection
        # One generation snapshot serves the whole aggregate: planning and
        # every per-row prediction read the same statistics even if a
        # refresh swaps the store mid-query.
        knowledge = self._store.current
        stats = RetrievalStats()
        engine = RetrievalEngine(
            self.source,
            ExecutionPolicy.strict(max_concurrency=self.max_concurrency),
            stats,
            executor=self._executor,
            telemetry=self._telemetry,
            label=str(aggregate),
        )
        base_set = engine.run_base(
            PlannedQuery(query=selection, kind=QueryKind.BASE, rank=0)
        )

        certain_acc = _Accumulator(aggregate.function)
        self._accumulate(certain_acc, aggregate, base_set, knowledge, predict=False)
        certain_value = certain_acc.value()

        predicted_acc = _Accumulator(aggregate.function)
        self._accumulate(predicted_acc, aggregate, base_set, knowledge, predict=True)

        result = AggregateResult(
            query=aggregate,
            certain_value=certain_value,
            predicted_value=None,
            certain_count=len(base_set),
            stats=stats,
        )

        # Inclusion gating happens at plan time — inside the planner: the
        # argmax / fractional rule depends only on mined statistics, never
        # on retrieved rows, so gated-out rewritings cost nothing on the
        # wire and the whole gate result caches with the plan.
        plan = self.planner.plan_aggregate(selection, base_set, knowledge=knowledge)
        stats.rewritten_generated = plan.generated
        stats.rewritten_skipped += plan.skipped
        result.considered_queries = plan.considered
        seen_rows = set(base_set)
        schema = self.source.schema

        for step, retrieved in engine.stream(plan.steps):
            assert step.target_attribute is not None
            target_index = schema.index_of(step.target_attribute)
            rows = [
                row
                for row in retrieved
                if is_null(row[target_index]) and row not in seen_rows
            ]
            if not rows:
                continue
            seen_rows.update(rows)
            result.included_queries += 1
            result.possible_count += len(rows)
            # Re-wrapping rows the source already shipped so the accumulator
            # can reuse the relation API; not a base-data bypass.
            partial = Relation(schema, rows)  # qpiadlint: disable=raw-relation-access
            self._accumulate(
                predicted_acc, aggregate, partial, knowledge, predict=True,
                weight=plan.weights[step.rank],
            )

        result.predicted_value = predicted_acc.value()
        return result

    # ------------------------------------------------------------------

    def _accumulate(
        self,
        accumulator: _Accumulator,
        aggregate: AggregateQuery,
        rows: Relation,
        knowledge: KnowledgeBase,
        predict: bool,
        weight: float = 1.0,
    ) -> None:
        """Fold *rows* into the accumulator, optionally predicting NULLs.

        ``predict=True`` replaces a NULL in the aggregated attribute by the
        classifier's most likely completion, using the tuple's present
        values as evidence.  ``weight`` scales the contribution (the
        footnote-4 fractional rule).
        """
        if aggregate.function is AggregateFunction.COUNT and aggregate.attribute == "*":
            accumulator.add_count(weight * len(rows))
            return
        attribute = aggregate.attribute
        index = rows.schema.index_of(attribute)
        values: list[float] = []
        for row in rows:
            value = row[index]
            if is_null(value):
                if not predict:
                    continue
                evidence = {
                    name: v
                    for name, v in zip(rows.schema.names, row)
                    if not is_null(v) and name != attribute
                }
                predicted, __ = knowledge.predict_value(
                    attribute, evidence, self.classifier_method
                )
                if is_null(predicted) or not isinstance(predicted, (int, float)):
                    continue
                values.append(float(predicted))
            else:
                values.append(float(value))
        accumulator.add(values, weight=weight)
