"""AFD-guided query relaxation (the paper's "ongoing work" direction).

Section 7 points at the dual problem of incompleteness: *query imprecision* —
an over-constrained query returns too few answers even over complete data.
The QUIC follow-up (Kambhampati et al., CIDR'07) handles both with the same
mined statistics.  This module implements the relaxation half:

* conjuncts are relaxed in order of the constrained attribute's *influence*
  — the degree to which it determines other attributes according to the
  mined AFDs (an attribute that determines much carries more of the query's
  intent, so it is relaxed last);
* relaxed queries drop one conjunct at a time (then two, ...) until enough
  answers accumulate;
* answers are ranked by weighted similarity to the original query — the
  influence-weighted fraction of original conjuncts they satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.errors import QpiadError, QueryError
from repro.mining.knowledge import KnowledgeBase
from repro.query.predicates import Predicate
from repro.query.query import SelectionQuery
from repro.relational.relation import Row
from repro.relational.schema import Schema
from repro.sources.autonomous import AutonomousSource

__all__ = ["RelaxedAnswer", "RelaxationPlan", "QueryRelaxer"]


@dataclass(frozen=True)
class RelaxedAnswer:
    """A tuple retrieved by a relaxed query, with its similarity score."""

    row: Row
    similarity: float
    satisfied: tuple[str, ...]
    violated: tuple[str, ...]
    retrieved_by: SelectionQuery


@dataclass(frozen=True)
class RelaxationPlan:
    """The ordered relaxed queries the relaxer would issue."""

    original: SelectionQuery
    queries: tuple[SelectionQuery, ...]
    influence: dict[str, float]


class QueryRelaxer:
    """Relaxes over-constrained queries using mined attribute influence.

    Parameters
    ----------
    source / knowledge:
        The autonomous source and its mined statistics.
    max_dropped:
        Never drop more than this many conjuncts (default: all but one).
    """

    def __init__(
        self,
        source: AutonomousSource,
        knowledge: KnowledgeBase,
        max_dropped: int | None = None,
    ):
        self.source = source
        self.knowledge = knowledge
        self.max_dropped = max_dropped

    # ------------------------------------------------------------------

    def attribute_influence(self, attribute: str) -> float:
        """How strongly *attribute* determines others, per the mined AFDs.

        The sum of confidences of pruned AFDs whose determining set contains
        the attribute.  Attributes that determine nothing score 0 and are
        relaxed first.
        """
        return sum(
            afd.confidence
            for afd in self.knowledge.afds
            if attribute in afd.determining
        )

    def plan(self, query: SelectionQuery) -> RelaxationPlan:
        """The relaxed queries, least-painful first.

        Queries dropping fewer conjuncts come first; among equal counts,
        the dropped set with the smallest total influence comes first.
        """
        conjuncts = query.conjuncts
        if len(conjuncts) < 2:
            raise QueryError(
                "relaxation needs at least two conjuncts; a single-conjunct "
                "query can only be relaxed to a full scan"
            )
        influence = {
            attribute: self.attribute_influence(attribute)
            for attribute in query.constrained_attributes
        }
        limit = self.max_dropped if self.max_dropped is not None else len(conjuncts) - 1
        limit = min(limit, len(conjuncts) - 1)

        relaxed: list[tuple[int, float, SelectionQuery]] = []
        for dropped_count in range(1, limit + 1):
            for dropped in combinations(conjuncts, dropped_count):
                kept = [c for c in conjuncts if c not in dropped]
                if not kept:
                    continue
                pain = sum(
                    influence[a] for c in dropped for a in c.attributes()
                )
                relaxed.append(
                    (dropped_count, pain, SelectionQuery.conjunction(kept, query.relation))
                )
        relaxed.sort(key=lambda item: (item[0], item[1], repr(item[2])))
        return RelaxationPlan(
            original=query,
            queries=tuple(q for __, __, q in relaxed),
            influence=influence,
        )

    def query(self, query: SelectionQuery, target_count: int = 10) -> list[RelaxedAnswer]:
        """Retrieve at least *target_count* answers, relaxing as needed.

        Exact answers (similarity 1.0) come first; relaxed answers are
        ranked by influence-weighted similarity.  Stops issuing relaxed
        queries once the target is met.
        """
        if target_count < 1:
            raise QpiadError(f"target_count must be positive, got {target_count}")
        plan = self.plan(query)
        schema = self.source.schema

        collected: dict[Row, RelaxedAnswer] = {}
        # The relaxer predates the engine and keeps its own early-exit loop
        # (stop as soon as target_count answers are collected); porting it
        # is tracked in the roadmap.
        exact = self.source.execute(query)  # qpiadlint: disable=raw-source-call-in-core
        for row in exact:
            collected[row] = RelaxedAnswer(
                row=row,
                similarity=1.0,
                satisfied=query.constrained_attributes,
                violated=(),
                retrieved_by=query,
            )

        total_influence = sum(plan.influence.values()) or 1.0
        for relaxed_query in plan.queries:
            if len(collected) >= target_count:
                break
            for row in self.source.execute(relaxed_query):  # qpiadlint: disable=raw-source-call-in-core
                if row in collected:
                    continue
                satisfied, violated = self._split(query.conjuncts, row, schema)
                weight = sum(plan.influence[a] for a in satisfied) / total_influence
                plain = len(satisfied) / len(query.constrained_attributes)
                # Blend structural and influence-weighted similarity so
                # zero-influence attributes still count for something.
                similarity = 0.5 * weight + 0.5 * plain
                collected[row] = RelaxedAnswer(
                    row=row,
                    similarity=similarity,
                    satisfied=satisfied,
                    violated=violated,
                    retrieved_by=relaxed_query,
                )

        answers = sorted(collected.values(), key=lambda a: -a.similarity)
        return answers

    # ------------------------------------------------------------------

    def _split(
        self, conjuncts: Sequence[Predicate], row: Row, schema: Schema
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        satisfied: list[str] = []
        violated: list[str] = []
        for conjunct in conjuncts:
            target = satisfied if conjunct.matches(row, schema) else violated
            target.extend(conjunct.attributes())
        return tuple(dict.fromkeys(satisfied)), tuple(dict.fromkeys(violated))
