"""AFD-guided query relaxation (the paper's "ongoing work" direction).

Section 7 points at the dual problem of incompleteness: *query imprecision* —
an over-constrained query returns too few answers even over complete data.
The QUIC follow-up (Kambhampati et al., CIDR'07) handles both with the same
mined statistics.  This module implements the relaxation half:

* conjuncts are relaxed in order of the constrained attribute's *influence*
  — the degree to which it determines other attributes according to the
  mined AFDs (an attribute that determines much carries more of the query's
  intent, so it is relaxed last);
* relaxed queries drop one conjunct at a time (then two, ...) until enough
  answers accumulate;
* answers are ranked by weighted similarity to the original query — the
  influence-weighted fraction of original conjuncts they satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.results import RetrievalStats
from repro.engine import ExecutionPolicy, PlannedQuery, QueryKind, RetrievalEngine
from repro.errors import QpiadError
from repro.mining.knowledge import KnowledgeBase
from repro.mining.store import KnowledgeStore, as_store
from repro.planner import PlanCache, QueryPlanner, attribute_influence
from repro.query.predicates import Predicate
from repro.query.query import SelectionQuery
from repro.relational.relation import Row
from repro.relational.schema import Schema
from repro.sources.autonomous import AutonomousSource
from repro.telemetry import Telemetry

__all__ = ["RelaxedAnswer", "RelaxationPlan", "QueryRelaxer"]


@dataclass(frozen=True)
class RelaxedAnswer:
    """A tuple retrieved by a relaxed query, with its similarity score."""

    row: Row
    similarity: float
    satisfied: tuple[str, ...]
    violated: tuple[str, ...]
    retrieved_by: SelectionQuery


@dataclass(frozen=True)
class RelaxationPlan:
    """The ordered relaxed queries the relaxer would issue."""

    original: SelectionQuery
    queries: tuple[SelectionQuery, ...]
    influence: dict[str, float]


class QueryRelaxer:
    """Relaxes over-constrained queries using mined attribute influence.

    Parameters
    ----------
    source / knowledge:
        The autonomous source and its mined statistics.
    max_dropped:
        Never drop more than this many conjuncts (default: all but one).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hook; every relaxed
        probe becomes a ``relaxed-query`` span and plan builds a ``plan``
        span, matching the other pipelines.
    plan_cache:
        Optional shared :class:`~repro.planner.PlanCache`; relaxation
        plans depend only on the query and the mined AFDs, so they cache
        under the knowledge fingerprint like every other plan.
    """

    def __init__(
        self,
        source: AutonomousSource,
        knowledge: "KnowledgeBase | KnowledgeStore",
        max_dropped: int | None = None,
        telemetry: Telemetry | None = None,
        plan_cache: PlanCache | None = None,
    ):
        self.source = source
        self._store = as_store(knowledge)
        self.max_dropped = max_dropped
        self._telemetry = telemetry
        self.planner = QueryPlanner(
            self._store, cache=plan_cache, telemetry=telemetry
        )

    @property
    def store(self) -> KnowledgeStore:
        """The knowledge store this relaxer reads through."""
        return self._store

    @property
    def knowledge(self) -> KnowledgeBase:
        """Snapshot of the current knowledge generation."""
        return self._store.current

    # ------------------------------------------------------------------

    def attribute_influence(self, attribute: str) -> float:
        """How strongly *attribute* determines others, per the mined AFDs.

        The sum of confidences of pruned AFDs whose determining set contains
        the attribute.  Attributes that determine nothing score 0 and are
        relaxed first.
        """
        return attribute_influence(self.knowledge.afds, attribute)

    def plan(self, query: SelectionQuery) -> RelaxationPlan:
        """The relaxed queries, least-painful first.

        Queries dropping fewer conjuncts come first; among equal counts,
        the dropped set with the smallest total influence comes first.
        (Built by the shared planner; see
        :class:`~repro.planner.RelaxationGenerator`.)
        """
        plan: RelaxationPlan = self.planner.plan_relaxation(query, self.max_dropped)
        return plan

    def query(self, query: SelectionQuery, target_count: int = 10) -> list[RelaxedAnswer]:
        """Retrieve at least *target_count* answers, relaxing as needed.

        Exact answers (similarity 1.0) come first; relaxed answers are
        ranked by influence-weighted similarity.  Stops issuing relaxed
        queries once the target is met.
        """
        if target_count < 1:
            raise QpiadError(f"target_count must be positive, got {target_count}")
        plan = self.plan(query)
        schema = self.source.schema
        stats = RetrievalStats()
        engine = RetrievalEngine(
            self.source,
            ExecutionPolicy.strict(),
            stats,
            telemetry=self._telemetry,
            label=str(query),
        )

        collected: dict[Row, RelaxedAnswer] = {}
        exact = engine.run_base(
            PlannedQuery(query=query, kind=QueryKind.BASE, rank=0)
        )
        for row in exact:
            collected[row] = RelaxedAnswer(
                row=row,
                similarity=1.0,
                satisfied=query.constrained_attributes,
                violated=(),
                retrieved_by=query,
            )

        total_influence = sum(plan.influence.values()) or 1.0
        steps = [
            PlannedQuery(query=relaxed_query, kind=QueryKind.RELAXED, rank=rank)
            for rank, relaxed_query in enumerate(plan.queries)
        ]
        # The serial executor issues lazily, so guarding entry and breaking
        # as soon as the target is met preserves the historical economy:
        # a relaxed query is only put on the wire while answers are short.
        if len(collected) < target_count:
            for step, retrieved in engine.stream(steps):
                for row in retrieved:
                    if row in collected:
                        continue
                    satisfied, violated = self._split(query.conjuncts, row, schema)
                    weight = sum(plan.influence[a] for a in satisfied) / total_influence
                    plain = len(satisfied) / len(query.constrained_attributes)
                    # Blend structural and influence-weighted similarity so
                    # zero-influence attributes still count for something.
                    similarity = 0.5 * weight + 0.5 * plain
                    collected[row] = RelaxedAnswer(
                        row=row,
                        similarity=similarity,
                        satisfied=satisfied,
                        violated=violated,
                        retrieved_by=step.query,
                    )
                if len(collected) >= target_count:
                    break

        answers = sorted(collected.values(), key=lambda a: -a.similarity)
        return answers

    # ------------------------------------------------------------------

    def _split(
        self, conjuncts: Sequence[Predicate], row: Row, schema: Schema
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        satisfied: list[str] = []
        violated: list[str] = []
        for conjunct in conjuncts:
            target = satisfied if conjunct.matches(row, schema) else violated
            target.extend(conjunct.attributes())
        return tuple(dict.fromkeys(satisfied)), tuple(dict.fromkeys(violated))
