"""The QPIAD mediator for selection queries (Sections 3, 4.1, 4.2).

:class:`QpiadMediator` wires the pieces together exactly as Figure 1 shows:
the query reformulator issues the original query for the base result set,
generates rewritten queries from mined AFDs, orders them by F-measure,
issues the top-K in precision order, post-filters, and returns certain
answers plus ranked relevant possible answers.

Since the engine refactor the mediator only *plans* and *post-filters*;
issuing, cost accounting, failure budgets, deadlines, and telemetry spans
live in :class:`~repro.engine.RetrievalEngine`, shared by every mediator.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.results import QueryResult, RankedAnswer, RetrievalStats
from repro.engine import (
    ExecutionPolicy,
    PlanExecutor,
    PlannedQuery,
    QueryKind,
    RetrievalEngine,
)
from repro.errors import QpiadError
from repro.mining.knowledge import KnowledgeBase
from repro.mining.store import KnowledgeStore, as_store
from repro.planner import PlanCache, PlannerConfig, QueryPlanner, SelectionPlan
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation, Row
from repro.relational.values import is_null
from repro.resilience.scheduler import SourceScheduler
from repro.sources.autonomous import AutonomousSource
from repro.telemetry import SpanKind, Telemetry, maybe_span

__all__ = ["QpiadConfig", "QpiadMediator"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class QpiadConfig:
    """Mediator tuning knobs (Section 4.1's α and K, plus extras).

    Parameters
    ----------
    alpha:
        F-measure weight: 0 orders purely by precision; 1 weighs precision
        and recall equally (paper Figure 5 sweeps this).
    k:
        Maximum number of rewritten queries issued per user query
        (``None`` = unlimited).  Models source rate limits.
    classifier_method:
        Which Table-3 classifier variant assesses value distributions.
    retrieve_multi_null:
        When the source (counterfactually) supports NULL binding, also fetch
        tuples with ≥2 NULLs over the constrained attributes and append them
        unranked, per the paper's assumption; ignored for plain web sources,
        which cannot express such a request.
    rank_multi_null:
        With :attr:`retrieve_multi_null`, additionally order the appended
        multi-NULL tuples among themselves by the joint probability that
        *all* their missing constrained values satisfy the query (naive
        product of per-attribute posteriors).  They still sort after every
        single-NULL ranked answer, honouring the paper's assumption that
        such tuples are less relevant.
    min_confidence:
        Drop ranked answers whose confidence falls below this threshold
        (Fig. 9's user-side filter); 0 keeps everything.
    tolerate_budget_exhaustion:
        When the source's query budget runs out mid-retrieval, return the
        answers gathered so far instead of propagating the error.  The base
        query's failure always propagates — without certain answers there
        is nothing to return.
    max_source_failures:
        Failure budget for transient source errors on *rewritten* queries:
        each :class:`~repro.errors.SourceUnavailableError` is recorded in
        the result's failure log and the plan continues with the next
        rewriting, until this many failures have been absorbed — the next
        one propagates.  ``None`` (the default) tolerates any number, so a
        flaky source degrades the answer instead of destroying it; ``0``
        restores strict all-or-nothing behaviour.  The base query is never
        covered by this budget: without certain answers there is nothing to
        degrade *to*.
    deadline_seconds:
        Optional wall-clock budget for one mediated retrieval, measured by
        the mediator's injectable clock.  Checked between source calls (a
        call in flight is never interrupted); once exceeded, no further
        rewritten queries are issued.
    tolerate_deadline_exceeded:
        When the deadline passes mid-plan, return the answers gathered so
        far (flagged degraded) rather than raising
        :class:`~repro.errors.DeadlineExceededError`.
    max_concurrency:
        How many rewritten queries may be in flight at once.  ``1`` (the
        default) runs the plan serially, exactly as the paper's loop; a
        higher value opts in to the thread-pool executor, which issues
        queries in parallel but merges outcomes deterministically in plan
        order — answers, order, and confidences are identical on a
        healthy source (``qpiad query --concurrency N`` on the CLI).
    """

    alpha: float = 0.0
    k: int | None = 10
    classifier_method: str | None = None
    retrieve_multi_null: bool = False
    rank_multi_null: bool = False
    min_confidence: float = 0.0
    tolerate_budget_exhaustion: bool = True
    max_source_failures: int | None = None
    deadline_seconds: float | None = None
    tolerate_deadline_exceeded: bool = True
    max_concurrency: int = 1

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise QpiadError(f"alpha must be non-negative, got {self.alpha}")
        if self.k is not None and self.k < 0:
            raise QpiadError(f"k must be non-negative, got {self.k}")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise QpiadError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )
        if self.max_source_failures is not None and self.max_source_failures < 0:
            raise QpiadError(
                f"max_source_failures must be non-negative, got "
                f"{self.max_source_failures}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise QpiadError(
                f"deadline_seconds must be non-negative, got {self.deadline_seconds}"
            )
        if self.max_concurrency < 1:
            raise QpiadError(
                f"max_concurrency must be at least 1, got {self.max_concurrency}"
            )

    def execution_policy(self) -> ExecutionPolicy:
        """The engine-facing slice of this configuration."""
        return ExecutionPolicy(
            max_source_failures=self.max_source_failures,
            deadline_seconds=self.deadline_seconds,
            tolerate_budget_exhaustion=self.tolerate_budget_exhaustion,
            tolerate_deadline_exceeded=self.tolerate_deadline_exceeded,
            max_concurrency=self.max_concurrency,
        )


class QpiadMediator:
    """Mediates selection queries over one incomplete autonomous source.

    Parameters
    ----------
    source:
        The autonomous database (accessed only through its query interface).
    knowledge:
        Statistics mined off-line from a sample of *source* (or of a
        correlated source — see :mod:`repro.core.correlated`), as a bare
        :class:`~repro.mining.KnowledgeBase` or a
        :class:`~repro.mining.KnowledgeStore`.  The mediator reads through
        a store and snapshots the current generation once per retrieval,
        so a :class:`~repro.mining.KnowledgeRefresher` installing a new
        generation mid-stream never mixes statistics within one query.
    config:
        Mediation parameters.
    clock:
        Injectable monotonic clock backing ``config.deadline_seconds``
        (tests drive it manually; production uses ``time.monotonic``).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hook.  When given,
        every retrieval becomes a span tree (one child span per source
        call, failed calls included) and the registry's ``mediator.*``
        counters track issuance and transfer volume; when ``None`` (the
        default) each emit site costs a single ``None`` check.
    executor:
        Optional explicit :class:`~repro.engine.PlanExecutor`, overriding
        the one ``config.max_concurrency`` would build (tests inject
        instrumented executors this way).
    scheduler:
        Optional :class:`~repro.resilience.SourceScheduler` this
        mediator's source calls are routed through.  When ``None`` (the
        default) the engine falls back to the process-wide scheduler
        installed via :func:`repro.resilience.install_scheduler`, if
        any; with neither, calls go straight to the source stack as
        before.
    plan_cache:
        Optional :class:`~repro.planner.PlanCache` shared across
        retrievals (and, if desired, across mediators).  With a cache,
        repeat plannings over unchanged knowledge and an identical base
        set are served from memory; without one (the default) the planner
        runs the plain pipeline with zero caching overhead.
    """

    def __init__(
        self,
        source: AutonomousSource,
        knowledge: "KnowledgeBase | KnowledgeStore",
        config: QpiadConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        telemetry: Telemetry | None = None,
        executor: PlanExecutor | None = None,
        plan_cache: PlanCache | None = None,
        scheduler: "SourceScheduler | None" = None,
    ):
        self.source = source
        self._store = as_store(knowledge)
        self.config = config or QpiadConfig()
        self._clock = clock
        self._telemetry = telemetry
        self._executor = executor
        self._scheduler = scheduler
        self.planner = QueryPlanner(
            self._store,
            PlannerConfig(
                alpha=self.config.alpha,
                k=self.config.k,
                classifier_method=self.config.classifier_method,
                min_confidence=self.config.min_confidence,
            ),
            cache=plan_cache,
            telemetry=telemetry,
        )
        #: The most recent :class:`~repro.planner.SelectionPlan`, kept for
        #: diagnostics (``qpiad query --explain`` renders it).
        self.last_plan: SelectionPlan | None = None

    @property
    def store(self) -> KnowledgeStore:
        """The knowledge store this mediator reads through."""
        return self._store

    @property
    def knowledge(self) -> KnowledgeBase:
        """Snapshot of the current knowledge generation."""
        return self._store.current

    def _engine(
        self,
        stats: RetrievalStats,
        query: SelectionQuery,
        record_failures: bool = True,
    ) -> RetrievalEngine:
        """A fresh engine for one retrieval over this mediator's source."""
        return RetrievalEngine(
            self.source,
            self.config.execution_policy(),
            stats,
            executor=self._executor,
            telemetry=self._telemetry,
            clock=self._clock,
            record_failures=record_failures,
            label=str(query),
            scheduler=self._scheduler,
        )

    def query(self, query: SelectionQuery) -> QueryResult:
        """Process *query*: certain answers plus ranked possible answers.

        The base query's failure always propagates; failures of individual
        rewritten queries degrade the result instead of aborting it (see
        :class:`QpiadConfig` and :attr:`QueryResult.degraded`).
        """
        telemetry = self._telemetry
        with maybe_span(
            telemetry, f"qpiad.query {query}", SpanKind.RETRIEVAL, query=str(query)
        ) as root:
            result = self._mediate(query)
            if root is not None:
                root.set(
                    certain=len(result.certain),
                    ranked=len(result.ranked),
                    unranked=len(result.unranked),
                    queries_issued=result.stats.queries_issued,
                    degraded=result.degraded,
                )
        if telemetry is not None:
            telemetry.count("mediator.retrievals")
            if result.degraded:
                telemetry.count("mediator.retrievals_degraded")
            telemetry.count("mediator.answers_certain", len(result.certain))
            telemetry.count("mediator.answers_ranked", len(result.ranked))
        return result

    def _plan_rewritten(
        self,
        query: SelectionQuery,
        base_set: Relation,
        stats: RetrievalStats,
    ) -> list[PlannedQuery]:
        """The rewritten-query plan, via the shared :class:`QueryPlanner`.

        Gating happens at plan time — inside the planner — so an
        inexpressible or below-threshold rewriting never spends source
        budget: it lands in ``stats.rewritten_skipped`` instead of being
        retrieved and discarded.  The skip tallies travel *with* the plan,
        which keeps stats and telemetry identical whether the plan was
        freshly built or served from the cache.
        """
        plan = self.planner.plan_selection(query, base_set, source=self.source)
        self.last_plan = plan
        stats.rewritten_generated = plan.generated
        stats.rewritten_skipped += plan.skipped
        telemetry = self._telemetry
        if telemetry is not None:
            if plan.skipped_unanswerable:
                telemetry.count(
                    "mediator.rewritten_unanswerable", plan.skipped_unanswerable
                )
            if plan.skipped_below_confidence:
                telemetry.count(
                    "mediator.rewritten_below_confidence",
                    plan.skipped_below_confidence,
                )
        logger.debug(
            "query %r: %d certain answers, %d rewritten candidates, issuing %d",
            query, len(base_set), plan.generated, len(plan.steps),
        )
        return list(plan.steps)

    def _mediate(self, query: SelectionQuery) -> QueryResult:
        stats = RetrievalStats()
        engine = self._engine(stats, query)

        base_set = engine.run_base(
            PlannedQuery(query=query, kind=QueryKind.BASE, rank=0)
        )
        result = QueryResult(query=query, certain=base_set, stats=stats)
        steps = self._plan_rewritten(query, base_set, stats)
        seen_rows: set[Row] = set(base_set)
        schema = self.source.schema

        for step, retrieved in engine.stream(steps):
            assert step.target_attribute is not None
            target_index = schema.index_of(step.target_attribute)
            for row in retrieved:
                # Post-filtering (step 2e): keep only tuples whose target
                # attribute is actually missing; the rest are certain
                # answers the base set already delivered.
                if not is_null(row[target_index]):
                    continue
                if row in seen_rows:
                    stats.duplicates_discarded += 1
                    continue
                seen_rows.add(row)
                result.ranked.append(
                    RankedAnswer(
                        row=row,
                        confidence=step.estimated_precision,
                        retrieved_by=step.query,
                        target_attribute=step.target_attribute,
                        explanation=step.explanation,
                    )
                )

        constrained = query.constrained_attributes
        if (
            self.config.retrieve_multi_null
            and len(constrained) > 1
            and not engine.deadline_exceeded()
        ):
            result.unranked.extend(
                self._fetch_multi_null(engine, query, seen_rows, rank=len(steps))
            )
        result.degraded = engine.degraded
        return result

    def iter_possible(
        self, query: SelectionQuery, stats: RetrievalStats | None = None
    ) -> Iterator[RankedAnswer]:
        """Lazily yield ranked possible answers, issuing queries on demand.

        The base result set is retrieved eagerly (its tuples seed the
        rewriting), but rewritten queries are only issued as the caller
        consumes the stream — a user who stops after the first few answers
        never spends the rest of the source's query budget.  Answers arrive
        in the same order :meth:`query` would rank them.  (With
        ``config.max_concurrency`` above 1 the engine prefetches a bounded
        window of queries ahead of consumption; the default serial
        executor keeps the strict one-call-per-answer-pulled economy.)

        Degradation matches :meth:`query` — transient failures of single
        rewritten queries are skipped under ``config.max_source_failures``,
        budget exhaustion and deadlines end the stream — but a generator
        has no result object, so nothing is flagged.  Pass a *stats*
        object to collect the same cost accounting :meth:`query` reports
        (issuance is recorded before each call, so spent budget is counted
        even when the call fails); callers needing the failure log itself
        should use :meth:`query`.
        """
        stats = RetrievalStats() if stats is None else stats
        engine = self._engine(stats, query, record_failures=False)
        base_set = engine.run_base(
            PlannedQuery(query=query, kind=QueryKind.BASE, rank=0)
        )
        steps = self._plan_rewritten(query, base_set, stats)
        seen_rows: set[Row] = set(base_set)
        schema = self.source.schema
        for step, retrieved in engine.stream(steps):
            assert step.target_attribute is not None
            target_index = schema.index_of(step.target_attribute)
            for row in retrieved:
                if not is_null(row[target_index]) or row in seen_rows:
                    continue
                seen_rows.add(row)
                yield RankedAnswer(
                    row=row,
                    confidence=step.estimated_precision,
                    retrieved_by=step.query,
                    target_attribute=step.target_attribute,
                    explanation=step.explanation,
                )

    def _fetch_multi_null(
        self,
        engine: RetrievalEngine,
        query: SelectionQuery,
        seen_rows: set[Row],
        rank: int,
    ) -> list[Row]:
        """Tuples with ≥2 NULLs over constrained attributes, unranked.

        Only expressible when the source supports NULL binding; real web
        forms do not, so this quietly returns nothing for them.  The
        attempt is still counted as an issued query — the mediator did put
        a call on the wire, and the source's own log records the
        rejection.  Failures share the retrieval's failure budget with
        the rewritten plan and are recorded with ``query=None`` (the
        fetch is a plan-level step, not a rewriting).
        """
        step = PlannedQuery(query=query, kind=QueryKind.MULTI_NULL, rank=rank)
        rows: list[Row] = []
        schema = self.source.schema
        constrained = query.constrained_attributes
        for __, retrieved in engine.stream([step]):
            for row in retrieved:
                nulls = sum(
                    1 for name in constrained if is_null(row[schema.index_of(name)])
                )
                if nulls >= 2 and row not in seen_rows:
                    seen_rows.add(row)
                    rows.append(row)
        if self.config.rank_multi_null:
            # One generation snapshot ranks the whole batch: a refresh
            # landing mid-sort must not mix posteriors across generations.
            knowledge = self._store.current
            rows.sort(
                key=lambda row: -self._joint_probability(query, row, knowledge)
            )
        return rows

    def _joint_probability(
        self, query: SelectionQuery, row: Row, knowledge: KnowledgeBase
    ) -> float:
        """Naive joint probability that every missing constrained value of
        *row* satisfies its conjuncts (independence assumption)."""
        from repro.core.rewriting import target_probability

        schema = self.source.schema
        evidence = {
            name: value
            for name, value in zip(schema.names, row)
            if not is_null(value)
        }
        probability = 1.0
        for attribute in query.constrained_attributes:
            if not is_null(row[schema.index_of(attribute)]):
                continue
            probability *= target_probability(
                knowledge,
                attribute,
                query.conjuncts_on(attribute),
                evidence,
                self.config.classifier_method,
            )
        return probability
