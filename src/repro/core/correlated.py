"""Retrieving answers from sources that do not support the query attribute
(Section 4.3).

A mediator's global schema often contains attributes some sources lack
(Yahoo! Autos has no ``Body Style``).  A query constraining such an
attribute cannot even be *asked* of that source.  QPIAD's move: find a
*correlated source* that (i) supports the attribute, (ii) has an AFD with
the attribute on the right-hand side, and (iii) whose determining set the
deficient source does support.  The base set and statistics come from the
correlated source; the rewritten queries go to the deficient one.

Answers retrieved this way are inherently possible answers — the deficient
source cannot report the attribute at all — ranked by the correlated
source's classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.results import QueryResult, RankedAnswer, RetrievalStats
from repro.engine import ExecutionPolicy, PlannedQuery, QueryKind, RetrievalEngine
from repro.errors import RewritingError, UnsupportedAttributeError
from repro.mining.knowledge import KnowledgeBase
from repro.mining.store import KnowledgeStore, as_store
from repro.planner import PlanCache, PlannerConfig, QueryPlanner
from repro.query.query import SelectionQuery
from repro.relational.relation import Row
from repro.sources.autonomous import AutonomousSource
from repro.sources.registry import SourceRegistry
from repro.telemetry import Telemetry

__all__ = ["CorrelatedSourceMediator", "find_correlated_source"]


def find_correlated_source(
    attribute: str,
    deficient: AutonomousSource,
    registry: SourceRegistry,
    knowledge_bases: dict[str, KnowledgeBase],
) -> tuple[AutonomousSource, KnowledgeBase] | None:
    """The best correlated source for *attribute* per Definition 4.

    Candidates must support the attribute, have a (pruned) AFD with it on
    the right-hand side whose determining set the deficient source
    supports; among them the one with the highest-confidence AFD wins.
    """
    best: tuple[float, AutonomousSource, KnowledgeBase] | None = None
    for source in registry.supporting(attribute):
        if source.name == deficient.name:
            continue
        knowledge = knowledge_bases.get(source.name)
        if knowledge is None:
            continue
        for afd in knowledge.afds_for(attribute):
            if all(
                deficient.supports(name) and deficient.capabilities.can_bind(name)
                for name in afd.determining
            ):
                if best is None or afd.confidence > best[0]:
                    best = (afd.confidence, source, knowledge)
                break  # afds_for is best-first; first feasible one is the best here
    if best is None:
        return None
    return best[1], best[2]


@dataclass(frozen=True)
class CorrelatedConfig:
    """α/K parameters for cross-source retrieval (same semantics as QPIAD)."""

    alpha: float = 0.0
    k: int | None = 10
    classifier_method: str | None = None
    max_concurrency: int = 1


class CorrelatedSourceMediator:
    """Answers queries on attributes a target source does not support.

    Parameters
    ----------
    registry:
        All sources under the mediator's global schema.
    knowledge_bases:
        Per-source mined statistics, keyed by source name (only sources
        that support the query attribute need one).
    config:
        Retrieval parameters.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hook; every call to
        the correlated and deficient sources becomes a span, so federated
        traces cover the §4.3 path too.
    plan_cache:
        Optional shared :class:`~repro.planner.PlanCache`.  Plans are
        keyed by the correlated knowledge base's fingerprint and the
        target source's capability token, so one cache safely serves
        every (correlated, deficient) pairing.
    """

    def __init__(
        self,
        registry: SourceRegistry,
        knowledge_bases: "dict[str, KnowledgeBase | KnowledgeStore]",
        config: CorrelatedConfig | None = None,
        telemetry: Telemetry | None = None,
        plan_cache: PlanCache | None = None,
    ):
        self.registry = registry
        self._stores = {
            name: as_store(knowledge)
            for name, knowledge in knowledge_bases.items()
        }
        self.config = config or CorrelatedConfig()
        self._telemetry = telemetry
        self._plan_cache = plan_cache

    @property
    def stores(self) -> "dict[str, KnowledgeStore]":
        """The per-source knowledge stores this mediator reads through."""
        return dict(self._stores)

    @property
    def knowledge_bases(self) -> "dict[str, KnowledgeBase]":
        """Snapshots of every source's current knowledge generation."""
        return {name: store.current for name, store in self._stores.items()}

    def _planner(self, knowledge: KnowledgeBase) -> QueryPlanner:
        return QueryPlanner(
            knowledge,
            PlannerConfig(
                alpha=self.config.alpha,
                k=self.config.k,
                classifier_method=self.config.classifier_method,
            ),
            cache=self._plan_cache,
            telemetry=self._telemetry,
        )

    def query(self, query: SelectionQuery, target: AutonomousSource) -> QueryResult:
        """Retrieve relevant possible answers for *query* from *target*.

        *query* must constrain exactly the attributes *target* lacks plus
        (optionally) attributes it supports; the unsupported ones are
        handled via the correlated source, supported conjuncts are passed
        straight through to *target*.
        """
        unsupported = [
            name for name in query.constrained_attributes if not target.supports(name)
        ]
        if not unsupported:
            raise UnsupportedAttributeError(
                f"source {target.name!r} supports every constrained attribute; "
                "use the regular QPIAD mediator instead"
            )
        if len(unsupported) > 1:
            raise UnsupportedAttributeError(
                "correlated-source retrieval handles one unsupported attribute "
                f"per query; got {unsupported}"
            )
        attribute = unsupported[0]

        # One coherent set of generation snapshots serves the whole query:
        # source selection and planning read the same statistics even if a
        # refresh swaps a store mid-retrieval.
        found = find_correlated_source(
            attribute, target, self.registry, self.knowledge_bases
        )
        if found is None:
            raise RewritingError(
                f"no correlated source provides an AFD for {attribute!r} whose "
                f"determining set {target.name!r} supports"
            )
        correlated, knowledge = found

        telemetry = self._telemetry
        stats = RetrievalStats()
        # All engine-side failure handling is strict here: §4.3 retrieval
        # predates graceful degradation, so any source error propagates to
        # the caller (the federated mediator absorbs it per source).
        engine = RetrievalEngine(
            target,
            ExecutionPolicy.strict(max_concurrency=self.config.max_concurrency),
            stats,
            telemetry=telemetry,
            label=str(query),
        )
        # Step 1 (modified): base set from the correlated source.  The
        # engine counts issuance before the call, matching QpiadMediator's
        # accounting.
        base_set = engine.run_base(
            PlannedQuery(
                query=query,
                kind=QueryKind.BASE,
                rank=0,
                source=correlated,
                label="correlated-base",
            )
        )

        from repro.relational.relation import Relation

        result = QueryResult(
            query=query,
            # An empty placeholder result, not base data: the target source
            # cannot answer the query at all (that is the point of §4.3).
            certain=Relation(target.schema, []),  # qpiadlint: disable=raw-relation-access
            stats=stats,
        )

        # The planner gates on what the deficient source can express
        # *before* ranking (§4.3's usable-rewritings filter), forces the
        # unsupported attribute as every step's target, and caches under
        # the target's capability token.  Cached steps carry no source, so
        # the target is attached here at execution time.
        plan = self._planner(knowledge).plan_correlated(
            query, base_set, attribute, target
        )
        stats.rewritten_generated = plan.generated
        steps = [replace(step, source=target) for step in plan.steps]

        seen: set[Row] = set()
        for step, retrieved in engine.stream(steps):
            for row in retrieved:
                # No post-filter on the target attribute: the deficient
                # source does not return it at all, so every tuple is a
                # possible answer.
                if row in seen:
                    stats.duplicates_discarded += 1
                    continue
                seen.add(row)
                result.ranked.append(
                    RankedAnswer(
                        row=row,
                        confidence=step.estimated_precision,
                        retrieved_by=step.query,
                        target_attribute=attribute,
                        explanation=step.explanation,
                    )
                )
        return result
