"""Multi-way joins over incomplete autonomous sources.

The paper presents two-way joins and notes the techniques "are applicable to
cases involving multi-way joins" (footnote 5).  This module provides that
extension as a left-deep fold: each relation's certain *and* relevant
possible answers are retrieved with the regular QPIAD machinery, NULL join
values are filled with the classifiers' most likely completion, and the
running result is hash-joined step by step with confidences multiplying.

The pairwise query-pair scoring of Section 4.5 does not scale past two
relations (the pair lattice is exponential in the number of sources), so
per-source retrieval budgets (``k`` rewritten queries each) play the role
of the pair budget here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.qpiad import QpiadConfig, QpiadMediator
from repro.engine import ExecutionTask, PlanExecutor, build_executor
from repro.errors import MiningError, QpiadError
from repro.mining.knowledge import KnowledgeBase
from repro.planner import PlanCache
from repro.query.query import SelectionQuery
from repro.relational.relation import Row
from repro.relational.values import is_null
from repro.sources.autonomous import AutonomousSource
from repro.telemetry import Telemetry

__all__ = ["MultiJoinStep", "MultiJoinedAnswer", "MultiJoinResult", "MultiJoinProcessor"]


@dataclass(frozen=True)
class MultiJoinStep:
    """One relation of a multi-way join chain.

    Parameters
    ----------
    source / knowledge:
        The autonomous source and its mined statistics.
    query:
        This relation's selection constraints.
    join_attribute:
        The attribute of *this* relation used to join with the running
        result.
    link_attribute:
        The attribute of the *running result's* schema to join against;
        irrelevant (``None``) for the first step.  Running-result attribute
        names are ``step<i>.<name>``.
    """

    source: AutonomousSource
    knowledge: KnowledgeBase
    query: SelectionQuery
    join_attribute: str
    link_attribute: str | None = None


@dataclass(frozen=True)
class MultiJoinedAnswer:
    """One joined tuple across all steps."""

    rows: tuple[Row, ...]
    confidence: float
    certain: bool

    @property
    def row(self) -> Row:
        combined: tuple = ()
        for part in self.rows:
            combined += part
        return combined


@dataclass
class MultiJoinResult:
    answers: list[MultiJoinedAnswer] = field(default_factory=list)
    per_step_retrieved: list[int] = field(default_factory=list)

    @property
    def certain(self) -> list[MultiJoinedAnswer]:
        return [answer for answer in self.answers if answer.certain]

    @property
    def possible(self) -> list[MultiJoinedAnswer]:
        return [answer for answer in self.answers if not answer.certain]


@dataclass(frozen=True)
class _Partial:
    """A partially joined tuple flowing through the fold.

    The per-step tuples live in ``row_chain`` (not ``rows``) to keep the
    name distinct from :attr:`Relation.rows` — partials are mediator-side
    bookkeeping, never relation storage.
    """

    row_chain: tuple[Row, ...]
    confidence: float
    certain: bool
    link_values: dict  # attribute name (step<i>.<name>) -> value


class MultiJoinProcessor:
    """Folds two or more :class:`MultiJoinStep`\\ s into joined answers."""

    def __init__(self, steps: "list[MultiJoinStep] | tuple[MultiJoinStep, ...]",
                 k: int | None = 10, alpha: float = 0.5,
                 max_concurrency: int = 1,
                 telemetry: "Telemetry | None" = None,
                 executor: "PlanExecutor | None" = None,
                 plan_cache: "PlanCache | None" = None):
        steps = list(steps)
        if len(steps) < 2:
            raise QpiadError("a multi-way join needs at least two steps")
        if any(step.link_attribute is None for step in steps[1:]):
            raise QpiadError("every step after the first needs a link_attribute")
        if max_concurrency < 1:
            raise QpiadError(
                f"max_concurrency must be at least 1, got {max_concurrency}"
            )
        self.steps = steps
        self.k = k
        self.alpha = alpha
        self.max_concurrency = max_concurrency
        self._telemetry = telemetry
        self._executor = executor
        # One shared cache across all per-step mediators: keys carry each
        # step's knowledge fingerprint, so chains over different sources
        # coexist in it safely (including under a concurrent executor).
        self._plan_cache = plan_cache

    def query(self) -> MultiJoinResult:
        result = MultiJoinResult()

        retrievals = self._retrieve_all()
        partials = self._initial_partials(self.steps[0], retrievals[0], result)
        for index, step in enumerate(self.steps[1:], start=1):
            partials = self._fold(partials, step, retrievals[index], index, result)

        answers = [
            MultiJoinedAnswer(p.row_chain, 1.0 if p.certain else p.confidence, p.certain)
            for p in partials
        ]
        answers.sort(key=lambda a: (not a.certain, -a.confidence))
        result.answers = answers
        return result

    # ------------------------------------------------------------------

    def _retrieve_all(self) -> list[list[tuple[Row, float, bool]]]:
        """Every step's answers, retrieved through the engine executor.

        Step retrievals are independent, so a concurrent executor runs
        them side by side; outcomes always come back in step order, so
        the fold (and the result) never depends on the interleaving.
        Any step's failure propagates — a multi-way join cannot degrade
        around a missing relation.
        """
        executor = (
            self._executor
            if self._executor is not None
            else build_executor(self.max_concurrency)
        )
        tasks = (
            ExecutionTask(index, self._retriever(step))
            for index, step in enumerate(self.steps)
        )
        retrievals: list[list[tuple[Row, float, bool]]] = []
        for outcome in executor.map(tasks, lambda: False):
            if outcome.error is not None:
                raise outcome.error
            retrievals.append(outcome.value)
        return retrievals

    def _retriever(
        self, step: MultiJoinStep
    ) -> "Callable[[], list[tuple[Row, float, bool]]]":
        """One step's QPIAD retrieval as an executor task."""

        def run() -> list[tuple[Row, float, bool]]:
            mediator = QpiadMediator(
                step.source,
                step.knowledge,
                QpiadConfig(alpha=self.alpha, k=self.k),
                telemetry=self._telemetry,
                plan_cache=self._plan_cache,
            )
            retrieval = mediator.query(step.query)
            answers: list[tuple[Row, float, bool]] = [
                (row, 1.0, True) for row in retrieval.certain
            ]
            answers.extend(
                (answer.row, answer.confidence, False) for answer in retrieval.ranked
            )
            return answers

        return run

    def _join_value(self, step: MultiJoinStep, row: Row) -> tuple[Any, float]:
        """The row's join value (predicted when NULL) and its probability."""
        schema = step.source.schema
        value = row[schema.index_of(step.join_attribute)]
        if not is_null(value):
            return value, 1.0
        evidence = {
            name: v
            for name, v in zip(schema.names, row)
            if not is_null(v) and name != step.join_attribute
        }
        try:
            return step.knowledge.predict_value(step.join_attribute, evidence)
        except MiningError:
            return None, 0.0

    def _initial_partials(
        self,
        step: MultiJoinStep,
        answers: list[tuple[Row, float, bool]],
        result: MultiJoinResult,
    ) -> "list[_Partial]":
        result.per_step_retrieved.append(len(answers))
        partials: "list[_Partial]" = []
        schema = step.source.schema
        for row, confidence, certain in answers:
            link_values = {
                f"step0.{name}": value for name, value in zip(schema.names, row)
            }
            partials.append(_Partial((row,), confidence, certain, link_values))
        return partials

    def _fold(
        self,
        partials: "list[_Partial]",
        step: MultiJoinStep,
        answers: list[tuple[Row, float, bool]],
        index: int,
        result: MultiJoinResult,
    ) -> "list[_Partial]":
        result.per_step_retrieved.append(len(answers))

        buckets: dict[Any, list[tuple[Row, float, bool, float]]] = {}
        for row, confidence, certain in answers:
            value, probability = self._join_value(step, row)
            if value is None:
                continue
            buckets.setdefault(value, []).append((row, confidence, certain, probability))

        schema = step.source.schema
        joined = []
        for partial in partials:
            link_value = partial.link_values.get(step.link_attribute)
            if link_value is None or is_null(link_value):
                continue
            for row, confidence, certain, probability in buckets.get(link_value, ()):
                link_values = dict(partial.link_values)
                link_values.update(
                    {f"step{index}.{name}": value for name, value in zip(schema.names, row)}
                )
                joined.append(
                    _Partial(
                        partial.row_chain + (row,),
                        partial.confidence * confidence * probability,
                        partial.certain and certain and probability == 1.0,
                        link_values,
                    )
                )
        return joined
