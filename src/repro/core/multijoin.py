"""Multi-way joins over incomplete autonomous sources.

The paper presents two-way joins and notes the techniques "are applicable to
cases involving multi-way joins" (footnote 5).  This module provides that
extension as a left-deep chain: each relation's certain *and* relevant
possible answers are retrieved with the regular QPIAD machinery, NULL join
values are filled with the classifiers' most likely completion, and the
chain is evaluated by symmetric-hash operators with confidences
multiplying.

The pairwise query-pair scoring of Section 4.5 does not scale past two
relations (the pair lattice is exponential in the number of sources), so
per-source retrieval budgets (``k`` rewritten queries each) play the role
of the pair budget here.

Execution is streaming: per-step retrievals run through the executor and
their answers are pushed into the operator chain in *completion* order —
a fast source's tuples join the moment their counterparts exist, without
waiting for the slowest relation.  A symmetric-hash chain emits every
combination exactly once whatever the interleaving, so the final answer
set is schedule-independent; :meth:`MultiJoinProcessor.query` ranks it
with a total deterministic order at the edge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.qpiad import QpiadConfig, QpiadMediator
from repro.engine import (
    ExecutionTask,
    Inlet,
    OperatorNode,
    OperatorTree,
    PlanExecutor,
    StreamingProject,
    SymmetricHashJoin,
    build_executor,
)
from repro.errors import MiningError, QpiadError
from repro.mining.knowledge import KnowledgeBase
from repro.mining.store import KnowledgeStore, resolve_knowledge
from repro.planner import PlanCache
from repro.query.query import SelectionQuery
from repro.relational.relation import Row
from repro.relational.values import is_null
from repro.sources.autonomous import AutonomousSource
from repro.telemetry import Telemetry

__all__ = ["MultiJoinStep", "MultiJoinedAnswer", "MultiJoinResult", "MultiJoinProcessor"]


@dataclass(frozen=True)
class MultiJoinStep:
    """One relation of a multi-way join chain.

    Parameters
    ----------
    source / knowledge:
        The autonomous source and its mined statistics — a bare
        :class:`~repro.mining.KnowledgeBase` snapshot or a
        :class:`~repro.mining.KnowledgeStore` whose current generation is
        resolved at each use.
    query:
        This relation's selection constraints.
    join_attribute:
        The attribute of *this* relation used to join with the running
        result.
    link_attribute:
        The attribute of the *running result's* schema to join against;
        irrelevant (``None``) for the first step.  Running-result attribute
        names are ``step<i>.<name>``.
    """

    source: AutonomousSource
    knowledge: "KnowledgeBase | KnowledgeStore"
    query: SelectionQuery
    join_attribute: str
    link_attribute: str | None = None


@dataclass(frozen=True)
class MultiJoinedAnswer:
    """One joined tuple across all steps."""

    rows: tuple[Row, ...]
    confidence: float
    certain: bool

    @property
    def row(self) -> Row:
        combined: tuple = ()
        for part in self.rows:
            combined += part
        return combined


@dataclass
class MultiJoinResult:
    answers: list[MultiJoinedAnswer] = field(default_factory=list)
    per_step_retrieved: list[int] = field(default_factory=list)

    @property
    def certain(self) -> list[MultiJoinedAnswer]:
        return [answer for answer in self.answers if answer.certain]

    @property
    def possible(self) -> list[MultiJoinedAnswer]:
        return [answer for answer in self.answers if not answer.certain]


@dataclass(frozen=True)
class _Partial:
    """A partially joined tuple flowing through the operator chain.

    The per-step tuples live in ``row_chain`` (not ``rows``) to keep the
    name distinct from :attr:`Relation.rows` — partials are mediator-side
    bookkeeping, never relation storage.
    """

    row_chain: tuple[Row, ...]
    confidence: float
    certain: bool
    link_values: dict  # attribute name (step<i>.<name>) -> value


@dataclass(frozen=True)
class _StepItem:
    """One step's retrieved answer, join value resolved, entering a join."""

    row: Row
    confidence: float
    certain: bool
    join_value: Any
    probability: float


def _ranking_key(answer: MultiJoinedAnswer) -> tuple[bool, float, str]:
    """Canonical total order: certain first, then confidence, then a value
    tie-break so the ranking is identical at every executor width."""
    return (not answer.certain, -answer.confidence, repr(answer))


class MultiJoinProcessor:
    """Folds two or more :class:`MultiJoinStep`\\ s into joined answers."""

    def __init__(self, steps: "list[MultiJoinStep] | tuple[MultiJoinStep, ...]",
                 k: int | None = 10, alpha: float = 0.5,
                 max_concurrency: int = 1,
                 telemetry: "Telemetry | None" = None,
                 executor: "PlanExecutor | None" = None,
                 plan_cache: "PlanCache | None" = None):
        steps = list(steps)
        if len(steps) < 2:
            raise QpiadError("a multi-way join needs at least two steps")
        if any(step.link_attribute is None for step in steps[1:]):
            raise QpiadError("every step after the first needs a link_attribute")
        if max_concurrency < 1:
            raise QpiadError(
                f"max_concurrency must be at least 1, got {max_concurrency}"
            )
        # A link attribute that names nothing in the running result's
        # step<i>.<name> namespace used to slip through and silently
        # produce zero answers; fail at construction instead.
        available: set[str] = set()
        for index, step in enumerate(steps):
            if index > 0 and step.link_attribute not in available:
                raise QpiadError(
                    f"step {index} link_attribute {step.link_attribute!r} names "
                    f"nothing in the running result; available link attributes: "
                    f"{', '.join(sorted(available))}"
                )
            available.update(
                f"step{index}.{name}" for name in step.source.schema.names
            )
        self.steps = steps
        self.k = k
        self.alpha = alpha
        self.max_concurrency = max_concurrency
        self._telemetry = telemetry
        self._executor = executor
        # One shared cache across all per-step mediators: keys carry each
        # step's knowledge fingerprint, so chains over different sources
        # coexist in it safely (including under a concurrent executor).
        self._plan_cache = plan_cache

    def query(self) -> MultiJoinResult:
        """Drain the streaming chain and rank at the edge."""
        result = MultiJoinResult()
        answers = list(self.stream_answers(result=result))
        answers.sort(key=_ranking_key)
        result.answers = answers
        return result

    def stream_answers(
        self, result: "MultiJoinResult | None" = None
    ) -> Iterator[MultiJoinedAnswer]:
        """Joined answers in arrival order (streaming interface).

        Each answer surfaces as soon as every step's contributing tuple
        has been retrieved — no ordering is owed; :meth:`query` sorts.
        When *result* is given, ``per_step_retrieved`` fills in as step
        retrievals complete.  The latency to the first answer feeds the
        ``mediator.time_to_first_answer_seconds`` histogram.
        """
        if result is None:
            result = MultiJoinResult()
        started = time.monotonic()
        emitted = False
        for partial in self._stream(result):
            if not emitted:
                emitted = True
                if self._telemetry is not None:
                    self._telemetry.observe(
                        "mediator.time_to_first_answer_seconds",
                        time.monotonic() - started,
                    )
            yield MultiJoinedAnswer(
                partial.row_chain,
                1.0 if partial.certain else partial.confidence,
                partial.certain,
            )

    # ------------------------------------------------------------------

    def _stream(self, result: MultiJoinResult) -> Iterator[_Partial]:
        """Push per-step retrievals through the chain in completion order.

        Step retrievals are independent, so a concurrent executor runs
        them side by side; the symmetric-hash chain absorbs their answers
        in whatever order they land and still emits every combination
        exactly once.  Any step's failure propagates — a multi-way join
        cannot degrade around a missing relation.
        """
        executor = (
            self._executor
            if self._executor is not None
            else build_executor(self.max_concurrency)
        )
        tree = self._build_tree()
        result.per_step_retrieved = [0] * len(self.steps)
        tasks = (
            ExecutionTask(index, self._retriever(step))
            for index, step in enumerate(self.steps)
        )
        outcomes = executor.map_completed(tasks, lambda: False)
        try:
            for outcome in outcomes:
                if outcome.error is not None:
                    raise outcome.error
                answers = outcome.value
                result.per_step_retrieved[outcome.rank] = len(answers)
                inlet = f"step{outcome.rank}"
                for entry in answers:
                    yield from tree.push(inlet, entry)
        finally:
            closer = getattr(outcomes, "close", None)
            if closer is not None:
                closer()
        yield from tree.close()

    def _build_tree(self) -> OperatorTree:
        """The left-deep physical plan over the chain's steps.

        ::

                            join:stepN
                            /       \\
                          ...    project:stepN — Inlet "stepN"
                          /
                     join:step1
                     /       \\
            project:step0   project:step1
                   |             |
            Inlet "step0"  Inlet "step1"

        Projects resolve each answer's join value (predicting NULLs) and,
        for step 0, seed the partial with its ``step0.*`` link namespace;
        each join matches the running partial's link attribute against
        the step's effective join value, multiplying confidences.
        """

        def step_project(index: int, step: MultiJoinStep) -> StreamingProject:
            schema = step.source.schema

            def transform(entry: tuple[Row, float, bool]) -> Any:
                row, confidence, certain = entry
                if index == 0:
                    link_values = {
                        f"step0.{name}": value
                        for name, value in zip(schema.names, row)
                    }
                    return _Partial((row,), confidence, certain, link_values)
                value, probability = self._join_value(step, row)
                if value is None:
                    return None
                return _StepItem(row, confidence, certain, value, probability)

            return StreamingProject(transform)

        def step_join(index: int, step: MultiJoinStep) -> SymmetricHashJoin:
            schema = step.source.schema

            def left_key(partial: _Partial) -> Any:
                value = partial.link_values.get(step.link_attribute)
                if value is None or is_null(value):
                    return None
                return value

            def combine(partial: _Partial, item: _StepItem) -> _Partial:
                link_values = dict(partial.link_values)
                link_values.update(
                    {
                        f"step{index}.{name}": value
                        for name, value in zip(schema.names, item.row)
                    }
                )
                return _Partial(
                    partial.row_chain + (item.row,),
                    partial.confidence * item.confidence * item.probability,
                    partial.certain and item.certain and item.probability == 1.0,
                    link_values,
                )

            return SymmetricHashJoin(
                left_key=left_key,
                right_key=lambda item: item.join_value,
                combine=combine,
            )

        upstream = OperatorNode(
            step_project(0, self.steps[0]), [Inlet("step0")], "project:step0"
        )
        for index, step in enumerate(self.steps[1:], start=1):
            arrival = OperatorNode(
                step_project(index, step),
                [Inlet(f"step{index}")],
                f"project:step{index}",
            )
            upstream = OperatorNode(
                step_join(index, step), [upstream, arrival], f"join:step{index}"
            )
        return OperatorTree(upstream)

    def _retriever(
        self, step: MultiJoinStep
    ) -> "Callable[[], list[tuple[Row, float, bool]]]":
        """One step's QPIAD retrieval as an executor task."""

        def run() -> list[tuple[Row, float, bool]]:
            mediator = QpiadMediator(
                step.source,
                step.knowledge,
                QpiadConfig(alpha=self.alpha, k=self.k),
                telemetry=self._telemetry,
                plan_cache=self._plan_cache,
            )
            retrieval = mediator.query(step.query)
            answers: list[tuple[Row, float, bool]] = [
                (row, 1.0, True) for row in retrieval.certain
            ]
            answers.extend(
                (answer.row, answer.confidence, False) for answer in retrieval.ranked
            )
            return answers

        return run

    def _join_value(self, step: MultiJoinStep, row: Row) -> tuple[Any, float]:
        """The row's join value (predicted when NULL) and its probability."""
        schema = step.source.schema
        value = row[schema.index_of(step.join_attribute)]
        if not is_null(value):
            return value, 1.0
        evidence = {
            name: v
            for name, v in zip(schema.names, row)
            if not is_null(v) and name != step.join_attribute
        }
        try:
            return resolve_knowledge(step.knowledge).predict_value(
                step.join_attribute, evidence
            )
        except MiningError:
            return None, 0.0
