"""F-measure ordering of rewritten queries — now owned by :mod:`repro.planner`.

The implementation moved to :mod:`repro.planner.ranker` as part of the
unified rewrite-planning pipeline; this module re-exports the public
functions so existing imports (``from repro.core.ranking import ...``)
keep working.  New code should import from :mod:`repro.planner` directly.
"""

from __future__ import annotations

from repro.planner.ranker import (
    f_measure,
    order_rewritten_queries,
    score_rewritten_queries,
)

__all__ = ["f_measure", "score_rewritten_queries", "order_rewritten_queries"]
