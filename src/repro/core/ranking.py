"""F-measure ordering and top-K selection of rewritten queries (Section 4.1/4.2).

Two orthogonal quantities rate a rewritten query: its expected *precision*
(probability the retrieved tuples answer the original query) and its
*selectivity* (how many tuples it brings in).  QPIAD trades them off with
the IR F-measure:

    F_α = (1 + α) · P · R / (α · P + R)

where the recall ``R`` of a query is its expected throughput
(precision × selectivity) normalized by the cumulative expected throughput
of all rewritten queries.  ``α = 0`` reduces to precision-only ordering;
larger α weights recall more.

The top-K queries by F-measure are then *issued in order of precision*, so
each returned tuple inherits its retrieving query's precision as its rank —
no per-tuple re-ranking is needed (step 2c).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.rewriting import RewrittenQuery
from repro.errors import QpiadError

__all__ = ["f_measure", "score_rewritten_queries", "order_rewritten_queries"]


def f_measure(precision: float, recall: float, alpha: float) -> float:
    """The weighted harmonic mean used for query ordering.

    Degenerate cases: with ``α = 0`` the measure reduces exactly to the
    precision; when both terms are zero the score is zero.
    """
    if alpha < 0:
        raise QpiadError(f"alpha must be non-negative, got {alpha}")
    if alpha == 0:
        return precision
    denominator = alpha * precision + recall
    if denominator <= 0.0:
        return 0.0
    return (1.0 + alpha) * precision * recall / denominator


def score_rewritten_queries(
    rewritten: Sequence[RewrittenQuery], alpha: float
) -> list[RewrittenQuery]:
    """Attach estimated recall and F-measure to every rewritten query.

    Recall is expected throughput normalized by the cumulative expected
    throughput over *all* candidates (the paper's estimate of the fraction
    of reachable relevant answers each query contributes).
    """
    total_throughput = sum(query.expected_throughput for query in rewritten)
    scored = []
    for query in rewritten:
        if total_throughput > 0:
            recall = query.expected_throughput / total_throughput
        else:
            recall = 0.0
        scored.append(
            query.with_ordering_scores(recall, f_measure(query.estimated_precision, recall, alpha))
        )
    return scored


def order_rewritten_queries(
    rewritten: Sequence[RewrittenQuery],
    alpha: float = 0.0,
    k: int | None = None,
) -> list[RewrittenQuery]:
    """Select and order the rewritten queries to issue.

    1. Score every candidate with the F-measure at the given α.
    2. Keep the top-K by F-measure (``k = None`` keeps all).
    3. Re-order the survivors by estimated precision, descending, so that
       issuing them in order yields answers in rank order (step 2c).

    Ties break on expected throughput, then on the query's repr for
    determinism.
    """
    if k is not None and k < 0:
        raise QpiadError(f"k must be non-negative, got {k}")
    scored = score_rewritten_queries(rewritten, alpha)
    by_f = sorted(
        scored,
        key=lambda q: (-q.f_measure, -q.expected_throughput, repr(q.query)),
    )
    selected = by_f if k is None else by_f[:k]
    return sorted(
        selected,
        key=lambda q: (-q.estimated_precision, -q.expected_throughput, repr(q.query)),
    )
