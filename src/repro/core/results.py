"""Result objects returned by the QPIAD mediator.

The mediator streams answers in three bands, mirroring the paper:

1. **certain answers** — the base result set, exactly matching the query;
2. **ranked possible answers** — tuples with (at most one) NULL on a
   constrained attribute, each carrying a *confidence* equal to the
   estimated precision of the rewritten query that retrieved it, plus an
   explanation (the AFD used) per Section 6.1;
3. **unranked possible answers** — tuples with two or more NULLs over the
   constrained attributes, appended last per the paper's assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.engine.engine import FailureKind
from repro.mining.afd import Afd
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation, Row

__all__ = ["RankedAnswer", "QueryFailure", "RetrievalStats", "QueryResult"]


@dataclass(frozen=True)
class RankedAnswer:
    """One possible answer with its relevance assessment.

    Attributes
    ----------
    row:
        The tuple as returned by the source.
    confidence:
        Estimated probability that the missing value matches the original
        query — the precision of the retrieving rewritten query.
    retrieved_by:
        The rewritten query that fetched this tuple.
    target_attribute:
        The constrained attribute whose value is missing in :attr:`row`.
    explanation:
        The AFD used for the density assessment, if any (Section 6.1's
        "explain" feature).
    """

    row: Row
    confidence: float
    retrieved_by: SelectionQuery
    target_attribute: str
    explanation: Afd | None = None

    def explain(self) -> str:
        """Human-readable justification of the confidence."""
        if self.explanation is None:
            return (
                f"confidence {self.confidence:.3f} for missing "
                f"{self.target_attribute!r} (no AFD; classifier over all attributes)"
            )
        return (
            f"confidence {self.confidence:.3f}: missing {self.target_attribute!r} "
            f"assessed via AFD {self.explanation}"
        )


@dataclass(frozen=True)
class QueryFailure:
    """One retrieval step the mediator absorbed instead of aborting.

    Attributes
    ----------
    query:
        The rewritten query that failed, or ``None`` for plan-level events
        (a wall-clock deadline, budget exhaustion detected between calls).
    kind:
        ``"source-unavailable"``, ``"budget-exhausted"`` or ``"deadline"``.
    message:
        The underlying error text, for logs and reports.
    """

    # Aliases of the engine's failure kinds — the engine is the one place
    # that decides what counts as which failure.
    SOURCE_UNAVAILABLE = FailureKind.SOURCE_UNAVAILABLE
    BUDGET_EXHAUSTED = FailureKind.BUDGET_EXHAUSTED
    DEADLINE = FailureKind.DEADLINE

    query: SelectionQuery | None
    kind: str
    message: str

    def __str__(self) -> str:
        at = f" at {self.query}" if self.query is not None else ""
        return f"[{self.kind}]{at}: {self.message}"


@dataclass
class RetrievalStats:
    """Cost accounting for one mediated query.

    ``queries_issued`` counts every call the mediator put on the wire,
    *whatever its outcome* — answered, rejected, failed transiently, or
    charged-then-lost — so it matches the source's own access log (the
    chaos suite asserts exactly this under fault injection).
    ``rewritten_issued`` counts only rewritten queries that returned a
    result; ``rewritten_skipped`` counts rewritings dropped at plan time
    (inexpressible through the source's interface, or with an estimated
    precision below ``min_confidence``) that therefore cost nothing.
    """

    queries_issued: int = 0
    tuples_retrieved: int = 0
    rewritten_generated: int = 0
    rewritten_issued: int = 0
    rewritten_skipped: int = 0
    duplicates_discarded: int = 0
    failures: list[QueryFailure] = field(default_factory=list)

    def record_failure(
        self, query: SelectionQuery | None, kind: str, message: str
    ) -> QueryFailure:
        failure = QueryFailure(query=query, kind=kind, message=message)
        self.failures.append(failure)
        return failure


@dataclass
class QueryResult:
    """Everything QPIAD returns for one selection query.

    :attr:`degraded` distinguishes *complete* answers from *best-effort*
    ones: it is set whenever the mediator skipped part of its retrieval
    plan (a rewritten query failed, the source budget ran out, a deadline
    passed) instead of aborting.  The certain answers are always complete —
    a failed base query propagates — but a degraded result may be missing
    possible answers; :attr:`RetrievalStats.failures` records exactly what
    was lost and why.
    """

    query: SelectionQuery
    certain: Relation
    ranked: list[RankedAnswer] = field(default_factory=list)
    unranked: list[Row] = field(default_factory=list)
    stats: RetrievalStats = field(default_factory=RetrievalStats)
    degraded: bool = False

    @property
    def possible_rows(self) -> list[Row]:
        """All possible-answer rows, ranked first then unranked."""
        return [answer.row for answer in self.ranked] + list(self.unranked)

    def all_rows(self) -> list[Row]:
        """Certain answers followed by possible answers."""
        return list(self.certain) + self.possible_rows

    def top(self, count: int) -> list[RankedAnswer]:
        """The *count* highest-confidence ranked answers."""
        return self.ranked[:count]

    def above_confidence(self, threshold: float) -> list[RankedAnswer]:
        """Ranked answers whose confidence meets *threshold* (Fig. 9)."""
        return [answer for answer in self.ranked if answer.confidence >= threshold]

    def to_relation(self) -> Relation:
        """All answers as one relation with provenance columns appended.

        Two extra columns: ``answer_kind`` (``certain`` / ``possible`` /
        ``unranked``) and ``confidence`` (1.0 for certain answers, the
        rank's confidence for possible ones, NULL for unranked).  Handy for
        exporting mediated results to CSV or joining them downstream.
        """
        from repro.relational.schema import Attribute, AttributeType, Schema
        from repro.relational.values import NULL

        base = self.certain.schema
        schema = Schema(
            [
                *base.attributes,
                Attribute("answer_kind"),
                Attribute("confidence", AttributeType.NUMERIC),
            ]
        )
        rows = [row + ("certain", 1.0) for row in self.certain]
        rows.extend(
            answer.row + ("possible", answer.confidence) for answer in self.ranked
        )
        rows.extend(row + ("unranked", NULL) for row in self.unranked)
        # Result assembly for the caller, not base-data access: the rows come
        # from relations the source already shipped.
        return Relation(schema, rows)  # qpiadlint: disable=raw-relation-access

    def write_csv(self, path: "Path | str") -> None:
        """Export :meth:`to_relation` to a CSV file."""
        from repro.relational.csvio import write_csv

        write_csv(self.to_relation(), path)

    def __iter__(self) -> Iterator[RankedAnswer]:
        return iter(self.ranked)

    def __repr__(self) -> str:
        suffix = ", degraded" if self.degraded else ""
        return (
            f"QueryResult({self.query!r}: {len(self.certain)} certain, "
            f"{len(self.ranked)} ranked possible, {len(self.unranked)} unranked"
            f"{suffix})"
        )
