"""Join queries over incomplete autonomous sources (Section 4.5).

The mediator decomposes a join query into per-source selections, generates
rewritten queries on both sides, and must then decide which *pairs* of
queries to issue: a pair only produces answers when the two result sets
share join-attribute values, so components are scored jointly —

    EstSel(qp) = Σ_v EstSel(qp₁, v) · EstSel(qp₂, v)

where ``EstSel(qpᵢ, v) = precision · selectivity · P(join = v)`` and the
join-value distribution ``P`` comes from the NBC classifiers (for rewritten
queries) or the observed base set (for the complete queries).  Pairs are
ordered by F-measure, the top-K pairs' component queries are issued (each
component once), and tuples are joined with NULL join values filled in by
the classifiers' most likely completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.results import RetrievalStats
from repro.core.rewriting import RewrittenQuery
from repro.engine import (
    ExecutionPolicy,
    PlanExecutor,
    PlannedQuery,
    QueryKind,
    RetrievalEngine,
)
from repro.errors import MiningError, QpiadError
from repro.mining.afd import Afd
from repro.mining.knowledge import KnowledgeBase
from repro.planner import PlanCache, PlannerConfig, QueryPlanner, Ranker
from repro.query.predicates import Equals
from repro.query.query import JoinQuery, SelectionQuery
from repro.relational.relation import Relation, Row
from repro.relational.values import is_null
from repro.sources.autonomous import AutonomousSource
from repro.telemetry import Telemetry

__all__ = ["JoinConfig", "JoinedAnswer", "JoinResult", "JoinProcessor"]


@dataclass(frozen=True)
class JoinConfig:
    """Knobs of the join processor.

    ``alpha`` deserves a larger default than for selections: the paper
    observes that with α = 0 the pairing over-commits to precision and
    never retrieves incomplete tuples from the side that is harder to
    predict (Section 6.6), so recall stalls.
    """

    alpha: float = 0.5
    k_pairs: int = 10
    classifier_method: str | None = None
    max_concurrency: int = 1

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise QpiadError(f"alpha must be non-negative, got {self.alpha}")
        if self.k_pairs < 1:
            raise QpiadError(f"k_pairs must be positive, got {self.k_pairs}")
        if self.max_concurrency < 1:
            raise QpiadError(
                f"max_concurrency must be at least 1, got {self.max_concurrency}"
            )

    def execution_policy(self) -> ExecutionPolicy:
        """Join processing predates graceful degradation: strict semantics,
        with the configured fan-out width."""
        return ExecutionPolicy.strict(max_concurrency=self.max_concurrency)


@dataclass(frozen=True)
class _Side:
    """One component query of a pair, with its joint-scoring statistics."""

    query: SelectionQuery
    is_rewritten: bool
    precision: float
    selectivity: float
    join_distribution: Mapping[Any, float]
    target_attribute: str | None = None
    afd: Afd | None = None

    def est_sel(self, join_value: Any) -> float:
        return (
            self.precision
            * self.selectivity
            * self.join_distribution.get(join_value, 0.0)
        )


@dataclass(frozen=True)
class _QueryPair:
    left: _Side
    right: _Side

    @property
    def precision(self) -> float:
        return self.left.precision * self.right.precision

    def estimated_selectivity(self) -> float:
        common = set(self.left.join_distribution) & set(self.right.join_distribution)
        return sum(self.left.est_sel(v) * self.right.est_sel(v) for v in common)


@dataclass(frozen=True)
class JoinedAnswer:
    """One joined tuple with its combined relevance assessment."""

    left_row: Row
    right_row: Row
    join_value: Any
    confidence: float
    certain: bool

    @property
    def row(self) -> Row:
        return self.left_row + self.right_row


@dataclass
class JoinResult:
    """Certain and ranked possible answers of a mediated join query."""

    query: JoinQuery
    answers: list[JoinedAnswer] = field(default_factory=list)
    pairs_considered: int = 0
    pairs_issued: int = 0
    component_queries_issued: int = 0
    stats: RetrievalStats = field(default_factory=RetrievalStats)

    @property
    def certain(self) -> list[JoinedAnswer]:
        return [answer for answer in self.answers if answer.certain]

    @property
    def possible(self) -> list[JoinedAnswer]:
        return [answer for answer in self.answers if not answer.certain]


class JoinProcessor:
    """Processes two-way join queries over a pair of autonomous sources."""

    def __init__(
        self,
        left_source: AutonomousSource,
        right_source: AutonomousSource,
        left_knowledge: KnowledgeBase,
        right_knowledge: KnowledgeBase,
        config: JoinConfig | None = None,
        telemetry: Telemetry | None = None,
        executor: PlanExecutor | None = None,
        plan_cache: PlanCache | None = None,
    ):
        self.left_source = left_source
        self.right_source = right_source
        self.left_knowledge = left_knowledge
        self.right_knowledge = right_knowledge
        self.config = config or JoinConfig()
        self._telemetry = telemetry
        self._executor = executor
        # One planner per side: candidates come unlimited (k=None) because
        # the top-K budget applies to *pairs*, not components; the pair
        # ranker below applies it after joint scoring.
        component_config = PlannerConfig(
            alpha=self.config.alpha,
            k=None,
            classifier_method=self.config.classifier_method,
        )
        self._left_planner = QueryPlanner(
            left_knowledge, component_config, cache=plan_cache, telemetry=telemetry
        )
        self._right_planner = QueryPlanner(
            right_knowledge, component_config, cache=plan_cache, telemetry=telemetry
        )
        self._pair_ranker = Ranker(self.config.alpha, self.config.k_pairs)

    def query(self, join: JoinQuery) -> JoinResult:
        """Execute *join*, returning certain + ranked possible joined tuples."""
        result = JoinResult(query=join)
        engine = RetrievalEngine(
            None,  # every planned query carries its own side's source
            self.config.execution_policy(),
            result.stats,
            executor=self._executor,
            telemetry=self._telemetry,
            label=str(join),
        )

        # Both base queries go through the engine too (in parallel when the
        # executor allows); outcomes arrive in plan order, left then right.
        bases: dict[int, Relation] = {}
        for step, retrieved in engine.stream(
            [
                PlannedQuery(
                    query=join.left,
                    kind=QueryKind.BASE,
                    rank=0,
                    source=self.left_source,
                ),
                PlannedQuery(
                    query=join.right,
                    kind=QueryKind.BASE,
                    rank=1,
                    source=self.right_source,
                ),
            ]
        ):
            bases[step.rank] = retrieved
        left_base, right_base = bases[0], bases[1]

        left_sides = self._build_sides(
            join.left, left_base, self._left_planner, self.left_knowledge,
            join.left_join_attribute,
        )
        right_sides = self._build_sides(
            join.right, right_base, self._right_planner, self.right_knowledge,
            join.right_join_attribute,
        )

        pairs = [_QueryPair(l, r) for l in left_sides for r in right_sides]
        result.pairs_considered = len(pairs)

        est_sels = {id(pair): pair.estimated_selectivity() for pair in pairs}
        total = sum(est_sels.values())
        f_scores = {
            id(pair): self._pair_ranker.f_measure(
                pair.precision, est_sels[id(pair)] / total if total > 0 else 0.0
            )
            for pair in pairs
        }
        # Pair selection uses the shared ranker's canonical tie-break
        # (-F, -expected throughput, repr).  This path used to break F ties
        # on bare precision, silently diverging from every other pipeline.
        selected = self._pair_ranker.select_top(
            pairs,
            f=lambda pair: f_scores[id(pair)],
            throughput=lambda pair: pair.precision * est_sels[id(pair)],
            key=lambda pair: repr(pair.left.query) + repr(pair.right.query),
        )
        result.pairs_issued = len(selected)

        left_results, right_results = self._issue_components(
            engine, selected, left_base, right_base
        )
        result.component_queries_issued = result.stats.queries_issued

        seen: set[tuple[Row, Row]] = set()
        for pair in selected:
            left_tuples = left_results[pair.left.query]
            right_tuples = right_results[pair.right.query]
            self._join_pair(
                pair, left_tuples, right_tuples, join, seen, result
            )

        result.answers.sort(key=lambda answer: (not answer.certain, -answer.confidence))
        return result

    # ------------------------------------------------------------------

    def _build_sides(
        self,
        complete_query: SelectionQuery,
        base_set: Relation,
        planner: QueryPlanner,
        knowledge: KnowledgeBase,
        join_attribute: str,
    ) -> list[_Side]:
        """The complete query plus all rewritten queries, as pair components."""
        sides = [
            _Side(
                query=complete_query,
                is_rewritten=False,
                precision=1.0,
                selectivity=float(len(base_set)),
                join_distribution=_empirical_distribution(base_set, join_attribute),
            )
        ]
        rewritten = planner.rewrite_candidates(complete_query, base_set)
        for candidate in rewritten:
            sides.append(
                _Side(
                    query=candidate.query,
                    is_rewritten=True,
                    precision=candidate.estimated_precision,
                    selectivity=candidate.estimated_selectivity,
                    join_distribution=self._join_distribution(
                        candidate, knowledge, join_attribute
                    ),
                    target_attribute=candidate.target_attribute,
                    afd=candidate.afd,
                )
            )
        return sides

    def _join_distribution(
        self, rewritten: RewrittenQuery, knowledge: KnowledgeBase, join_attribute: str
    ) -> Mapping[Any, float]:
        """P(join value | query) for a rewritten query (step 3a).

        When the rewritten query binds the join attribute with an equality,
        the distribution is a point mass; otherwise the NBC posterior given
        the determining-set evidence is used.
        """
        for conjunct in rewritten.query.conjuncts:
            if isinstance(conjunct, Equals) and conjunct.attribute == join_attribute:
                return {conjunct.value: 1.0}
        if join_attribute in rewritten.evidence:
            return {rewritten.evidence[join_attribute]: 1.0}
        return knowledge.value_distribution(
            join_attribute, rewritten.evidence, self.config.classifier_method
        )

    def _issue_components(
        self,
        engine: RetrievalEngine,
        selected: list[_QueryPair],
        left_base: Relation,
        right_base: Relation,
    ) -> tuple[
        dict[SelectionQuery, list[tuple[Row, float]]],
        dict[SelectionQuery, list[tuple[Row, float]]],
    ]:
        """Issue each distinct component query once; post-filter rewritten ones.

        Both sides' components go into one retrieval plan, so a concurrent
        executor fans out across the two sources at once.  Returns, per
        side and per query, the retrieved rows paired with their confidence
        (1.0 for certain answers of the complete query, the rewritten
        query's precision otherwise).
        """
        left_results: dict[SelectionQuery, list[tuple[Row, float]]] = {}
        right_results: dict[SelectionQuery, list[tuple[Row, float]]] = {}
        sides_of = {
            "left": (self.left_source, left_base, left_results),
            "right": (self.right_source, right_base, right_results),
        }
        plan: list[PlannedQuery] = []
        plan_sides: list[tuple[_Side, str]] = []

        def enqueue(side: _Side, which: str) -> None:
            source, base_set, results = sides_of[which]
            if side.query in results:
                return
            if not side.is_rewritten:
                # The complete query's result is the base set, already
                # retrieved — no second call.
                results[side.query] = [(row, 1.0) for row in base_set]
                return
            if any(s.query == side.query and w == which for s, w in plan_sides):
                return
            plan.append(
                PlannedQuery(
                    query=side.query,
                    kind=QueryKind.REWRITTEN,
                    rank=len(plan),
                    estimated_precision=side.precision,
                    target_attribute=side.target_attribute,
                    explanation=side.afd,
                    source=source,
                )
            )
            plan_sides.append((side, which))

        for pair in selected:
            enqueue(pair.left, "left")
            enqueue(pair.right, "right")

        for step, retrieved in engine.stream(plan):
            side, which = plan_sides[step.rank]
            source, base_set, results = sides_of[which]
            base_rows = set(base_set)
            target_index = (
                source.schema.index_of(side.target_attribute)
                if side.target_attribute is not None
                else None
            )
            rows: list[tuple[Row, float]] = []
            for row in retrieved:
                if target_index is not None and not is_null(row[target_index]):
                    continue  # already a certain answer of the complete query
                if row in base_rows:
                    continue
                rows.append((row, side.precision))
            results[side.query] = rows
        return left_results, right_results

    def _join_pair(
        self,
        pair: _QueryPair,
        left_tuples: list[tuple[Row, float]],
        right_tuples: list[tuple[Row, float]],
        join: JoinQuery,
        seen: set[tuple[Row, Row]],
        result: JoinResult,
    ) -> None:
        """Join two component result sets, predicting NULL join values."""
        left_index = self.left_source.schema.index_of(join.left_join_attribute)
        right_index = self.right_source.schema.index_of(join.right_join_attribute)

        prepared_right: dict[Any, list[tuple[Row, float]]] = {}
        for row, confidence in right_tuples:
            value, adjusted = self._effective_join_value(
                row, right_index, self.right_source, self.right_knowledge,
                join.right_join_attribute, confidence,
            )
            if value is None:
                continue
            prepared_right.setdefault(value, []).append((row, adjusted))

        for row, confidence in left_tuples:
            value, adjusted = self._effective_join_value(
                row, left_index, self.left_source, self.left_knowledge,
                join.left_join_attribute, confidence,
            )
            if value is None:
                continue
            for right_row, right_confidence in prepared_right.get(value, ()):
                key = (row, right_row)
                if key in seen:
                    continue
                seen.add(key)
                combined = adjusted * right_confidence
                certain = (
                    not pair.left.is_rewritten
                    and not pair.right.is_rewritten
                    and not is_null(row[left_index])
                    and not is_null(right_row[right_index])
                )
                result.answers.append(
                    JoinedAnswer(
                        left_row=row,
                        right_row=right_row,
                        join_value=value,
                        confidence=1.0 if certain else combined,
                        certain=certain,
                    )
                )

    def _effective_join_value(
        self,
        row: Row,
        join_index: int,
        source: AutonomousSource,
        knowledge: KnowledgeBase,
        join_attribute: str,
        confidence: float,
    ) -> tuple[Any, float]:
        """The row's join value, predicting it when NULL (step 6).

        Returns ``(None, 0)`` when the value is NULL and unpredictable.
        The confidence is discounted by the prediction probability.
        """
        value = row[join_index]
        if not is_null(value):
            return value, confidence
        evidence = {
            name: v
            for name, v in zip(source.schema.names, row)
            if not is_null(v) and name != join_attribute
        }
        try:
            predicted, probability = knowledge.predict_value(
                join_attribute, evidence, self.config.classifier_method
            )
        except MiningError:
            return None, 0.0
        return predicted, confidence * probability


def _empirical_distribution(relation: Relation, attribute: str) -> dict[Any, float]:
    """Observed join-value distribution of a base result set."""
    counts = relation.value_counts(attribute)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {value: count / total for value, count in counts.items()}
