"""Join queries over incomplete autonomous sources (Section 4.5).

The mediator decomposes a join query into per-source selections, generates
rewritten queries on both sides, and must then decide which *pairs* of
queries to issue: a pair only produces answers when the two result sets
share join-attribute values, so components are scored jointly —

    EstSel(qp) = Σ_v EstSel(qp₁, v) · EstSel(qp₂, v)

where ``EstSel(qpᵢ, v) = precision · selectivity · P(join = v)`` and the
join-value distribution ``P`` comes from the NBC classifiers (for rewritten
queries) or the observed base set (for the complete queries).  Pairs are
ordered by F-measure, the top-K pairs' component queries are issued (each
component once), and tuples are joined with NULL join values filled in by
the classifiers' most likely completion.

Execution is *streaming*: component results flow through a symmetric-hash
operator tree (:mod:`repro.engine.operators`) as source calls complete,
so the first joined answer surfaces as soon as both halves of any match
have arrived — the already-retrieved base sets are pushed in first, which
bounds first-answer latency by the base retrievals rather than by the
slowest rewritten component.  Candidates stream in arrival order;
:meth:`JoinProcessor.query` ranks at the edge with a total deterministic
order, so the final answer list is bit-identical at every executor width.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.core.results import RetrievalStats
from repro.core.rewriting import RewrittenQuery
from repro.engine import (
    ExecutionPolicy,
    Inlet,
    OperatorNode,
    OperatorTree,
    PlanExecutor,
    PlannedQuery,
    QueryKind,
    RetrievalEngine,
    StreamingProject,
    SymmetricHashJoin,
)
from repro.errors import MiningError, QpiadError
from repro.mining.afd import Afd
from repro.mining.knowledge import KnowledgeBase
from repro.mining.store import KnowledgeStore, as_store
from repro.planner import PlanCache, PlannerConfig, QueryPlanner, Ranker
from repro.query.predicates import Equals
from repro.query.query import JoinQuery, SelectionQuery
from repro.relational.relation import Relation, Row
from repro.relational.values import is_null
from repro.sources.autonomous import AutonomousSource
from repro.telemetry import Telemetry

__all__ = ["JoinConfig", "JoinedAnswer", "JoinResult", "JoinProcessor"]


@dataclass(frozen=True)
class JoinConfig:
    """Knobs of the join processor.

    ``alpha`` deserves a larger default than for selections: the paper
    observes that with α = 0 the pairing over-commits to precision and
    never retrieves incomplete tuples from the side that is harder to
    predict (Section 6.6), so recall stalls.
    """

    alpha: float = 0.5
    k_pairs: int = 10
    classifier_method: str | None = None
    max_concurrency: int = 1

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise QpiadError(f"alpha must be non-negative, got {self.alpha}")
        if self.k_pairs < 1:
            raise QpiadError(f"k_pairs must be positive, got {self.k_pairs}")
        if self.max_concurrency < 1:
            raise QpiadError(
                f"max_concurrency must be at least 1, got {self.max_concurrency}"
            )

    def execution_policy(self) -> ExecutionPolicy:
        """Join processing predates graceful degradation: strict semantics,
        with the configured fan-out width."""
        return ExecutionPolicy.strict(max_concurrency=self.max_concurrency)


@dataclass(frozen=True)
class _Side:
    """One component query of a pair, with its joint-scoring statistics."""

    query: SelectionQuery
    is_rewritten: bool
    precision: float
    selectivity: float
    join_distribution: Mapping[Any, float]
    target_attribute: str | None = None
    afd: Afd | None = None

    def est_sel(self, join_value: Any) -> float:
        return (
            self.precision
            * self.selectivity
            * self.join_distribution.get(join_value, 0.0)
        )


@dataclass(frozen=True)
class _QueryPair:
    left: _Side
    right: _Side

    @property
    def precision(self) -> float:
        return self.left.precision * self.right.precision

    def estimated_selectivity(self) -> float:
        common = set(self.left.join_distribution) & set(self.right.join_distribution)
        return sum(self.left.est_sel(v) * self.right.est_sel(v) for v in common)


@dataclass(frozen=True)
class JoinedAnswer:
    """One joined tuple with its combined relevance assessment."""

    left_row: Row
    right_row: Row
    join_value: Any
    confidence: float
    certain: bool

    @property
    def row(self) -> Row:
        return self.left_row + self.right_row


@dataclass
class JoinResult:
    """Certain and ranked possible answers of a mediated join query.

    ``base_queries_issued`` counts the two base retrievals (plus any
    hedge backups they spawned); ``component_queries_issued`` counts only
    the rewritten component calls.  The two always sum to
    ``stats.queries_issued`` — the base calls used to be double-counted
    into the component figure.
    """

    query: JoinQuery
    answers: list[JoinedAnswer] = field(default_factory=list)
    pairs_considered: int = 0
    pairs_issued: int = 0
    base_queries_issued: int = 0
    component_queries_issued: int = 0
    stats: RetrievalStats = field(default_factory=RetrievalStats)

    @property
    def certain(self) -> list[JoinedAnswer]:
        return [answer for answer in self.answers if answer.certain]

    @property
    def possible(self) -> list[JoinedAnswer]:
        return [answer for answer in self.answers if not answer.certain]


@dataclass(frozen=True)
class _Arrival:
    """One retrieved row entering the operator tree, tagged with its
    component query's side statistics."""

    side: _Side
    row: Row


@dataclass(frozen=True)
class _JoinItem:
    """A post-filtered row ready for the symmetric hash join.

    ``join_value`` is the *effective* value — predicted when the stored
    one is NULL — and ``confidence`` is already discounted by the
    prediction probability; ``null_join`` remembers whether the stored
    value was NULL, which disqualifies the tuple from certainty even on
    the complete×complete pair.
    """

    query: SelectionQuery
    row: Row
    join_value: Any
    confidence: float
    rewritten: bool
    null_join: bool


def _ranking_key(answer: JoinedAnswer) -> tuple[bool, float, str]:
    """The canonical total order of joined answers: certain first, then by
    confidence, with a value tie-break so ranking is deterministic at any
    executor width and any arrival interleaving."""
    return (
        not answer.certain,
        -answer.confidence,
        repr((answer.left_row, answer.right_row)),
    )


class JoinProcessor:
    """Processes two-way join queries over a pair of autonomous sources."""

    def __init__(
        self,
        left_source: AutonomousSource,
        right_source: AutonomousSource,
        left_knowledge: "KnowledgeBase | KnowledgeStore",
        right_knowledge: "KnowledgeBase | KnowledgeStore",
        config: JoinConfig | None = None,
        telemetry: Telemetry | None = None,
        executor: PlanExecutor | None = None,
        plan_cache: PlanCache | None = None,
    ):
        self.left_source = left_source
        self.right_source = right_source
        self._left_store = as_store(left_knowledge)
        self._right_store = as_store(right_knowledge)
        self.config = config or JoinConfig()
        self._telemetry = telemetry
        self._executor = executor
        # One planner per side: candidates come unlimited (k=None) because
        # the top-K budget applies to *pairs*, not components; the pair
        # ranker below applies it after joint scoring.
        component_config = PlannerConfig(
            alpha=self.config.alpha,
            k=None,
            classifier_method=self.config.classifier_method,
        )
        self._left_planner = QueryPlanner(
            self._left_store, component_config, cache=plan_cache, telemetry=telemetry
        )
        self._right_planner = QueryPlanner(
            self._right_store, component_config, cache=plan_cache, telemetry=telemetry
        )
        self._pair_ranker = Ranker(self.config.alpha, self.config.k_pairs)

    @property
    def left_knowledge(self) -> KnowledgeBase:
        """Snapshot of the left side's current knowledge generation."""
        return self._left_store.current

    @property
    def right_knowledge(self) -> KnowledgeBase:
        """Snapshot of the right side's current knowledge generation."""
        return self._right_store.current

    def query(self, join: JoinQuery) -> JoinResult:
        """Execute *join*, returning certain + ranked possible joined tuples.

        Drains the candidate stream of :meth:`stream_answers`, keeps the
        maximum-confidence version of each distinct ``(left_row,
        right_row)`` pair — a joined tuple's confidence must not depend
        on which rewritten component happened to deliver it first — and
        ranks with the canonical total order, so the answer list is
        identical at every executor width.
        """
        result = JoinResult(query=join)
        best: dict[tuple[Row, Row], JoinedAnswer] = {}
        for candidate in self.stream_answers(join, result=result):
            key = (candidate.left_row, candidate.right_row)
            held = best.get(key)
            if held is None or (candidate.certain, candidate.confidence) > (
                held.certain,
                held.confidence,
            ):
                best[key] = candidate
        result.answers = sorted(best.values(), key=_ranking_key)
        return result

    def stream_answers(
        self, join: JoinQuery, result: JoinResult | None = None
    ) -> Iterator[JoinedAnswer]:
        """Joined-answer *candidates*, yielded as matches arrive.

        The streaming interface: each candidate surfaces the moment both
        of its halves have been retrieved, so a caller sees first answers
        while slower component queries are still on the wire.  The same
        ``(left_row, right_row)`` pair can appear more than once (with
        different confidences) when several rewritten components retrieve
        the same row — callers that need the final ranked answer use
        :meth:`query`, which keeps the best and sorts at the edge.

        When *result* is given, its counters (pairs, base/component
        issuance, stats) are populated as the stream is drained.  The
        latency to the first candidate feeds the
        ``mediator.time_to_first_answer_seconds`` histogram.
        """
        if result is None:
            result = JoinResult(query=join)
        started = time.monotonic()
        emitted = False
        for candidate in self._stream(join, result):
            if not emitted:
                emitted = True
                if self._telemetry is not None:
                    self._telemetry.observe(
                        "mediator.time_to_first_answer_seconds",
                        time.monotonic() - started,
                    )
            yield candidate

    def _stream(self, join: JoinQuery, result: JoinResult) -> Iterator[JoinedAnswer]:
        # One generation snapshot per side serves the whole join: pair
        # scoring, rewriting and NULL-fill prediction must read consistent
        # statistics even if a refresh swaps a store mid-stream.
        left_knowledge = self._left_store.current
        right_knowledge = self._right_store.current
        engine = RetrievalEngine(
            None,  # every planned query carries its own side's source
            self.config.execution_policy(),
            result.stats,
            executor=self._executor,
            telemetry=self._telemetry,
            label=str(join),
        )

        # Both base queries go through the engine too (in parallel when the
        # executor allows); outcomes arrive in plan order, left then right.
        bases: dict[int, Relation] = {}
        for step, retrieved in engine.stream(
            [
                PlannedQuery(
                    query=join.left,
                    kind=QueryKind.BASE,
                    rank=0,
                    source=self.left_source,
                ),
                PlannedQuery(
                    query=join.right,
                    kind=QueryKind.BASE,
                    rank=1,
                    source=self.right_source,
                ),
            ]
        ):
            bases[step.rank] = retrieved
        left_base, right_base = bases[0], bases[1]
        # Snapshot after the bases (and any hedge backups they spawned)
        # are billed: everything issued beyond this point is a component.
        result.base_queries_issued = result.stats.queries_issued

        left_sides = self._build_sides(
            join.left, left_base, self._left_planner, left_knowledge,
            join.left_join_attribute,
        )
        right_sides = self._build_sides(
            join.right, right_base, self._right_planner, right_knowledge,
            join.right_join_attribute,
        )

        pairs = [_QueryPair(l, r) for l in left_sides for r in right_sides]
        result.pairs_considered = len(pairs)

        est_sels = {id(pair): pair.estimated_selectivity() for pair in pairs}
        total = sum(est_sels.values())
        f_scores = {
            id(pair): self._pair_ranker.f_measure(
                pair.precision, est_sels[id(pair)] / total if total > 0 else 0.0
            )
            for pair in pairs
        }
        # Pair selection uses the shared ranker's canonical tie-break
        # (-F, -expected throughput, repr).  This path used to break F ties
        # on bare precision, silently diverging from every other pipeline.
        selected = self._pair_ranker.select_top(
            pairs,
            f=lambda pair: f_scores[id(pair)],
            throughput=lambda pair: pair.precision * est_sels[id(pair)],
            key=lambda pair: repr(pair.left.query) + repr(pair.right.query),
        )
        result.pairs_issued = len(selected)

        tree = self._build_tree(
            join, selected, left_base, right_base, left_knowledge, right_knowledge
        )

        # The base sets are already in hand: feed them to the join first,
        # so certain base×base answers emit before any component query
        # returns — first-answer latency is bounded by the base
        # retrievals, not by the slowest rewritten component.
        for row in left_base:
            yield from tree.push("left", _Arrival(left_sides[0], row))
        for row in right_base:
            yield from tree.push("right", _Arrival(right_sides[0], row))

        plan, plan_sides = self._component_plan(selected)
        try:
            # Component rows arrive in call-completion order and flow
            # straight into the tree; the executor keeps issuing further
            # components while the driver thread joins.
            for step, row in engine.stream_tuples(plan):
                side, which = plan_sides[step.rank]
                yield from tree.push(which, _Arrival(side, row))
        finally:
            result.component_queries_issued = (
                result.stats.queries_issued - result.base_queries_issued
            )
        yield from tree.close()

    # ------------------------------------------------------------------

    def _build_sides(
        self,
        complete_query: SelectionQuery,
        base_set: Relation,
        planner: QueryPlanner,
        knowledge: KnowledgeBase,
        join_attribute: str,
    ) -> list[_Side]:
        """The complete query plus all rewritten queries, as pair components."""
        sides = [
            _Side(
                query=complete_query,
                is_rewritten=False,
                precision=1.0,
                selectivity=float(len(base_set)),
                join_distribution=_empirical_distribution(base_set, join_attribute),
            )
        ]
        rewritten = planner.rewrite_candidates(complete_query, base_set)
        for candidate in rewritten:
            sides.append(
                _Side(
                    query=candidate.query,
                    is_rewritten=True,
                    precision=candidate.estimated_precision,
                    selectivity=candidate.estimated_selectivity,
                    join_distribution=self._join_distribution(
                        candidate, knowledge, join_attribute
                    ),
                    target_attribute=candidate.target_attribute,
                    afd=candidate.afd,
                )
            )
        return sides

    def _join_distribution(
        self, rewritten: RewrittenQuery, knowledge: KnowledgeBase, join_attribute: str
    ) -> Mapping[Any, float]:
        """P(join value | query) for a rewritten query (step 3a).

        When the rewritten query binds the join attribute with an equality,
        the distribution is a point mass; otherwise the NBC posterior given
        the determining-set evidence is used.
        """
        for conjunct in rewritten.query.conjuncts:
            if isinstance(conjunct, Equals) and conjunct.attribute == join_attribute:
                return {conjunct.value: 1.0}
        if join_attribute in rewritten.evidence:
            return {rewritten.evidence[join_attribute]: 1.0}
        return knowledge.value_distribution(
            join_attribute, rewritten.evidence, self.config.classifier_method
        )

    def _component_plan(
        self, selected: list[_QueryPair]
    ) -> tuple[list[PlannedQuery], list[tuple[_Side, str]]]:
        """The selected pairs' rewritten components, each planned once.

        Both sides' components go into one retrieval plan, so a
        concurrent executor fans out across the two sources at once.
        Complete queries are never planned — their result is the base
        set, already pushed into the tree.
        """
        plan: list[PlannedQuery] = []
        plan_sides: list[tuple[_Side, str]] = []
        enqueued: set[tuple[SelectionQuery, str]] = set()
        sources = {"left": self.left_source, "right": self.right_source}

        def enqueue(side: _Side, which: str) -> None:
            if not side.is_rewritten:
                return
            key = (side.query, which)
            if key in enqueued:
                return
            enqueued.add(key)
            plan.append(
                PlannedQuery(
                    query=side.query,
                    kind=QueryKind.REWRITTEN,
                    rank=len(plan),
                    estimated_precision=side.precision,
                    target_attribute=side.target_attribute,
                    explanation=side.afd,
                    source=sources[which],
                )
            )
            plan_sides.append((side, which))

        for pair in selected:
            enqueue(pair.left, "left")
            enqueue(pair.right, "right")
        return plan, plan_sides

    def _build_tree(
        self,
        join: JoinQuery,
        selected: list[_QueryPair],
        left_base: Relation,
        right_base: Relation,
        left_knowledge: KnowledgeBase,
        right_knowledge: KnowledgeBase,
    ) -> OperatorTree:
        """The physical plan: per-side project into a symmetric hash join.

        ::

                     SymmetricHashJoin           (match: selected pairs)
                     /               \\
            StreamingProject   StreamingProject  (post-filter + NULL fill)
                    |                 |
              Inlet "left"      Inlet "right"

        Each project post-filters rewritten rows (drop rows whose target
        attribute came back non-NULL, drop rows already in the base set)
        and resolves the effective join value, predicting NULLs; the join
        emits a candidate the moment a key matches across sides, and the
        match predicate restricts the cross product to the top-K selected
        query pairs while each component is still issued only once.
        """
        selected_pairs = {
            (pair.left.query, pair.right.query) for pair in selected
        }
        left_index = self.left_source.schema.index_of(join.left_join_attribute)
        right_index = self.right_source.schema.index_of(join.right_join_attribute)

        def prepare(
            source: AutonomousSource,
            knowledge: KnowledgeBase,
            join_attribute: str,
            join_index: int,
            base_set: Relation,
        ) -> StreamingProject:
            # One frozen base-row set per side, shared by every component
            # arrival (this used to be rebuilt per retrieved relation).
            base_rows = frozenset(base_set)

            def transform(arrival: _Arrival) -> _JoinItem | None:
                side, row = arrival.side, arrival.row
                if side.is_rewritten:
                    if side.target_attribute is not None and not is_null(
                        row[source.schema.index_of(side.target_attribute)]
                    ):
                        return None  # already a certain answer of the complete query
                    if row in base_rows:
                        return None
                confidence = side.precision if side.is_rewritten else 1.0
                value, adjusted = self._effective_join_value(
                    row, join_index, source, knowledge, join_attribute, confidence
                )
                if value is None:
                    return None
                return _JoinItem(
                    query=side.query,
                    row=row,
                    join_value=value,
                    confidence=adjusted,
                    rewritten=side.is_rewritten,
                    null_join=is_null(row[join_index]),
                )

            return StreamingProject(transform)

        def combine(left: _JoinItem, right: _JoinItem) -> JoinedAnswer:
            certain = (
                not left.rewritten
                and not right.rewritten
                and not left.null_join
                and not right.null_join
            )
            return JoinedAnswer(
                left_row=left.row,
                right_row=right.row,
                join_value=left.join_value,
                confidence=1.0 if certain else left.confidence * right.confidence,
                certain=certain,
            )

        def match(left: _JoinItem, right: _JoinItem) -> bool:
            return (left.query, right.query) in selected_pairs

        left_project = OperatorNode(
            prepare(
                self.left_source, left_knowledge,
                join.left_join_attribute, left_index, left_base,
            ),
            [Inlet("left")],
            "project:left",
        )
        right_project = OperatorNode(
            prepare(
                self.right_source, right_knowledge,
                join.right_join_attribute, right_index, right_base,
            ),
            [Inlet("right")],
            "project:right",
        )
        join_node = OperatorNode(
            SymmetricHashJoin(
                left_key=lambda item: item.join_value,
                right_key=lambda item: item.join_value,
                combine=combine,
                match=match,
            ),
            [left_project, right_project],
            "join",
        )
        return OperatorTree(join_node)

    def _effective_join_value(
        self,
        row: Row,
        join_index: int,
        source: AutonomousSource,
        knowledge: KnowledgeBase,
        join_attribute: str,
        confidence: float,
    ) -> tuple[Any, float]:
        """The row's join value, predicting it when NULL (step 6).

        Returns ``(None, 0)`` when the value is NULL and unpredictable.
        The confidence is discounted by the prediction probability.
        """
        value = row[join_index]
        if not is_null(value):
            return value, confidence
        evidence = {
            name: v
            for name, v in zip(source.schema.names, row)
            if not is_null(v) and name != join_attribute
        }
        try:
            predicted, probability = knowledge.predict_value(
                join_attribute, evidence, self.config.classifier_method
            )
        except MiningError:
            return None, 0.0
        return predicted, confidence * probability


def _empirical_distribution(relation: Relation, attribute: str) -> dict[Any, float]:
    """Observed join-value distribution of a base result set."""
    counts = relation.value_counts(attribute)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {value: count / total for value, count in counts.items()}
