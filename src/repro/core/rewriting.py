"""Generation of rewritten queries (Section 4.2, step 2a).

Given the base result set of a user query, QPIAD generates one rewritten
query per distinct value combination of the determining set of each
constrained attribute.  The rewritten query drops the constraint on the
target attribute (so tuples with NULL there can be retrieved through a
plain web form) and constrains its determining set instead.

Each rewritten query carries the statistics the ordering stage needs:
estimated precision ``P(Am = vm | dtrSet values)`` from the AFD-enhanced
classifier and estimated selectivity from the sample.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import RewritingError
from repro.mining.afd import Afd
from repro.mining.knowledge import KnowledgeBase
from repro.query.predicates import Between, Equals, Predicate
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation
from repro.relational.values import is_null

__all__ = ["RewrittenQuery", "generate_rewritten_queries", "target_probability"]


@dataclass(frozen=True)
class RewrittenQuery:
    """A rewritten query plus the statistics used to order it.

    Attributes
    ----------
    query:
        The query to issue to the source (never constrains
        :attr:`target_attribute`).
    target_attribute:
        The constrained attribute whose missing values this query hunts.
    evidence:
        The determining-set values the query binds (raw values).
    estimated_precision:
        ``P(target constraint satisfied | evidence)`` from the classifier.
    estimated_selectivity:
        ``EstSel``: expected number of incomplete tuples retrieved.
    afd:
        The AFD whose determining set was used (``None`` only in fallback
        paths).
    estimated_recall / f_measure:
        Filled in by the ordering stage (normalized throughput and the
        weighted harmonic mean); zero until then.
    """

    query: SelectionQuery
    target_attribute: str
    evidence: Mapping[str, Any]
    estimated_precision: float
    estimated_selectivity: float
    afd: Afd | None
    estimated_recall: float = 0.0
    f_measure: float = 0.0

    @property
    def expected_throughput(self) -> float:
        """Expected number of *relevant* answers: precision × selectivity."""
        return self.estimated_precision * self.estimated_selectivity

    def with_ordering_scores(self, recall: float, f_measure: float) -> "RewrittenQuery":
        return replace(self, estimated_recall=recall, f_measure=f_measure)

    def __repr__(self) -> str:
        return (
            f"RewrittenQuery({self.query!r} -> {self.target_attribute!r}, "
            f"P={self.estimated_precision:.3f}, Sel={self.estimated_selectivity:.2f})"
        )


def target_probability(
    knowledge: KnowledgeBase,
    attribute: str,
    target_conjuncts: Sequence[Predicate],
    evidence: Mapping[str, Any],
    method: str | None = None,
) -> float:
    """Probability that *attribute*'s missing value satisfies its constraints.

    For an equality this is the classifier posterior of the constrained
    value.  For range constraints the posterior mass of every completion
    satisfying all the conjuncts is summed; completions live in mining space
    (bucket labels for discretized numeric attributes), so each label is
    mapped back to a representative raw value before testing.
    """
    if len(target_conjuncts) == 1 and isinstance(target_conjuncts[0], Equals):
        return knowledge.estimated_precision(
            attribute, target_conjuncts[0].value, evidence, method
        )
    posterior = knowledge.value_distribution(attribute, evidence, method)
    probability = 0.0
    from repro.relational.schema import Schema  # tiny throwaway schema for predicate eval

    probe_schema = Schema.of(attribute)
    for label, mass in posterior.items():
        value = knowledge.representative_value(attribute, label)
        row = (value,)
        if all(conjunct.matches(row, probe_schema) for conjunct in target_conjuncts):
            probability += mass
    return probability


def generate_rewritten_queries(
    query: SelectionQuery,
    base_set: Relation,
    knowledge: KnowledgeBase,
    method: str | None = None,
) -> list[RewrittenQuery]:
    """All candidate rewritten queries for *query* given its *base_set*.

    Implements step 2a of the QPIAD algorithm, including the multi-attribute
    extension: the generation loop runs once per constrained attribute,
    replacing that attribute's constraints with equalities on its
    determining set while keeping every other original constraint.

    Attributes with no usable AFD are skipped (they cannot be rewritten);
    raises :class:`RewritingError` only when *no* constrained attribute is
    rewritable.
    """
    candidates: list[RewrittenQuery] = []
    rewritable = 0
    seen: set[tuple[str, SelectionQuery]] = set()

    for attribute in query.constrained_attributes:
        best_afd = knowledge.best_afd(attribute)
        if best_afd is None:
            continue
        rewritable += 1
        determining = [
            name for name in best_afd.determining if name in base_set.schema
        ]
        if len(determining) != len(best_afd.determining):
            continue  # base set lacks some determining attributes
        target_conjuncts = query.conjuncts_on(attribute)

        for combo, evidence in _distinct_combinations(base_set, determining, knowledge):
            replacements = [
                _determining_predicate(knowledge, name, value)
                for name, value in zip(determining, combo)
            ]
            rewritten = query.replacing(attribute, replacements)
            # Drop leftover original conjuncts on determining attributes: the
            # base-tuple binding subsumes them.
            for name, replacement in zip(determining, replacements):
                extra = [
                    conjunct
                    for conjunct in rewritten.conjuncts_on(name)
                    if conjunct != replacement
                ]
                if extra:
                    rewritten = rewritten.replacing(name, [replacement])
            key = (attribute, rewritten)
            if key in seen:
                continue
            seen.add(key)

            precision = target_probability(
                knowledge, attribute, target_conjuncts, evidence, method
            )
            selectivity = knowledge.selectivity.estimate(rewritten)
            candidates.append(
                RewrittenQuery(
                    query=rewritten,
                    target_attribute=attribute,
                    evidence=evidence,
                    estimated_precision=precision,
                    estimated_selectivity=selectivity,
                    afd=best_afd,
                )
            )

    if rewritable == 0:
        raise RewritingError(
            f"no constrained attribute of {query!r} has a usable AFD; "
            "cannot generate rewritten queries"
        )
    return candidates


def _distinct_combinations(
    base_set: Relation,
    determining: Sequence[str],
    knowledge: KnowledgeBase,
) -> Iterable[tuple[tuple, dict[str, Any]]]:
    """Distinct determining-set value combinations, deduplicated in mining space.

    Discretized numeric attributes are compared by bucket label, so two base
    tuples whose ages fall in the same bucket yield one rewritten query
    rather than one per exact age.  Combinations containing NULLs are
    skipped — web forms cannot bind NULL.  Yields the raw value combination
    (from the first tuple seen in each bucket-space class) and its evidence
    mapping.
    """
    indices = base_set.schema.indices_of(determining)
    seen_labels: set[tuple] = set()
    for row in base_set:
        combo = tuple(row[i] for i in indices)
        if any(is_null(value) for value in combo):
            continue
        labels = tuple(
            knowledge.mining_label(name, value)
            for name, value in zip(determining, combo)
        )
        if labels in seen_labels:
            continue
        seen_labels.add(labels)
        yield combo, dict(zip(determining, combo))


def _determining_predicate(
    knowledge: KnowledgeBase, attribute: str, value: Any
) -> Predicate:
    """The predicate a rewritten query binds for one determining value.

    Categorical attributes bind the exact value; discretized numeric
    attributes bind the value's whole bucket as a range, matching the
    granularity the classifier was trained at (an exact ``age = 37`` query
    would be needlessly selective).
    """
    if knowledge.is_discretized(attribute):
        label = knowledge.mining_label(attribute, value)
        low, high = knowledge.bucket_bounds(attribute, label)
        if low == float("-inf") and high == float("inf"):
            return Equals(attribute, value)
        return Between(attribute, low, high)
    return Equals(attribute, value)
