"""Federating QPIAD over every source behind the global schema.

Figure 1 of the paper shows the mediator fronting *several* autonomous
databases.  For one user query this means:

* sources whose local schema supports all constrained attributes are
  mediated with the regular QPIAD pipeline (certain answers + ranked
  possible answers), each against its own knowledge base;
* sources lacking a constrained attribute are served through the
  correlated-source machinery of Section 4.3 (their answers are possible
  answers by construction);
* per-source answer streams are merged into one ranked list, tagged with
  their origin, ordered by confidence.

Sources without a mined knowledge base still contribute their certain
answers — a mediator should never return *less* because mining has not run
yet.

The same principle governs failures: autonomous sources go down without
notice, and one dead source must never void the answers of the live ones.
A :class:`~repro.errors.SourceUnavailableError` from any single source is
recorded in :attr:`FederatedResult.failures`, the result is flagged
degraded, and mediation continues across the rest of the federation.

Per-source mediations are independent, so the federation runs them
through the engine's :class:`~repro.engine.PlanExecutor`: serial by
default, fanned out over a thread pool when ``config.max_concurrency``
is raised.  Probe payloads stream back in *completion* order — a fast
source's answers surface while slower sources are still mediating
(:meth:`FederatedMediator.stream_answers`, built on the streaming
union/project operators) — and are then folded into the result in
registry order, so the final ranking does not depend on the execution
strategy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.correlated import CorrelatedConfig, CorrelatedSourceMediator
from repro.core.qpiad import QpiadConfig, QpiadMediator
from repro.core.results import QueryResult, RankedAnswer
from repro.engine import (
    ExecutionTask,
    Inlet,
    OperatorNode,
    OperatorTree,
    PlanExecutor,
    StreamingProject,
    StreamingUnion,
    build_executor,
)
from repro.errors import RewritingError, SourceUnavailableError, UnsupportedAttributeError
from repro.mining.knowledge import KnowledgeBase
from repro.mining.store import KnowledgeStore, as_store
from repro.planner import PlanCache
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation, Row
from repro.sources.autonomous import AutonomousSource
from repro.sources.registry import SourceRegistry
from repro.telemetry import SpanKind, Telemetry, maybe_span

__all__ = ["FederatedAnswer", "FederatedResult", "FederatedMediator", "SourceFailure"]


@dataclass(frozen=True)
class FederatedAnswer:
    """One possible answer, tagged with the source that supplied it."""

    source: str
    answer: RankedAnswer

    @property
    def confidence(self) -> float:
        return self.answer.confidence

    @property
    def row(self) -> Row:
        return self.answer.row


@dataclass(frozen=True)
class SourceFailure:
    """One source's transient failure the federation degraded around."""

    source: str
    message: str

    def __str__(self) -> str:
        return f"{self.source}: {self.message}"


@dataclass
class FederatedResult:
    """Merged outcome of one query across the federation.

    ``skipped_sources`` lists sources that could not *logically* contribute
    (no correlated rewriting reaches them); :attr:`failures` lists sources
    that should have contributed but failed transiently.  :attr:`degraded`
    is set when any answer stream is best-effort — a source failed outright
    or a per-source retrieval came back degraded — so callers can tell a
    complete federation answer from a partial one.
    """

    query: SelectionQuery
    certain: dict[str, Relation] = field(default_factory=dict)
    ranked: list[FederatedAnswer] = field(default_factory=list)
    per_source: dict[str, QueryResult] = field(default_factory=dict)
    skipped_sources: list[str] = field(default_factory=list)
    failures: list[SourceFailure] = field(default_factory=list)
    degraded: bool = False

    @property
    def certain_count(self) -> int:
        return sum(len(relation) for relation in self.certain.values())

    @property
    def failed_sources(self) -> tuple[str, ...]:
        return tuple(failure.source for failure in self.failures)

    def top(self, count: int) -> list[FederatedAnswer]:
        return self.ranked[:count]


# Tags for one source's probe payload, so the serial merge step knows how
# to fold it into the federated result.
_SKIPPED = "skipped"
_CERTAIN_ONLY = "certain-only"
_MEDIATED = "mediated"

_Probe = tuple[str, "QueryResult | Relation | None"]


class FederatedMediator:
    """Runs one user query across every registered source.

    Parameters
    ----------
    registry:
        Sources under the mediator's global schema.
    knowledge_bases:
        Per-source mined statistics by source name.  Sources without one
        only contribute certain answers (when they support the query) and
        can still *receive* correlated-source rewritten queries.
    config / correlated_config:
        Parameters for the regular and cross-source pipelines.
        ``config.max_concurrency`` also sets how many *sources* are
        probed at once.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hook, shared with
        every per-source mediator the federation spins up: the federated
        query becomes one root span with a child span per source, under
        which the per-source retrieval spans nest.  (With concurrency
        above 1, span parentage across sources is best-effort — see
        ``docs/engine.md``.)
    executor:
        Optional explicit :class:`~repro.engine.PlanExecutor` for the
        per-source fan-out, overriding ``config.max_concurrency``.
    plan_cache:
        Optional shared :class:`~repro.planner.PlanCache`, threaded into
        every per-source mediator (regular and correlated).  Keys include
        each knowledge base's fingerprint and each source's capability
        token, so one cache serves the whole federation without
        cross-talk.  The cache is thread-safe; it composes with
        ``config.max_concurrency`` above 1.
    """

    def __init__(
        self,
        registry: SourceRegistry,
        knowledge_bases: "dict[str, KnowledgeBase | KnowledgeStore]",
        config: QpiadConfig | None = None,
        correlated_config: CorrelatedConfig | None = None,
        telemetry: Telemetry | None = None,
        executor: PlanExecutor | None = None,
        plan_cache: PlanCache | None = None,
    ):
        self.registry = registry
        self._stores = {
            name: as_store(knowledge)
            for name, knowledge in knowledge_bases.items()
        }
        self.config = config or QpiadConfig()
        self._telemetry = telemetry
        self._executor = executor
        self._plan_cache = plan_cache
        # The correlated mediator shares the same stores, so a refresh
        # installing a new generation reaches both pipelines atomically.
        self.correlated = CorrelatedSourceMediator(
            registry,
            dict(self._stores),
            correlated_config,
            telemetry=telemetry,
            plan_cache=plan_cache,
        )

    @property
    def stores(self) -> "dict[str, KnowledgeStore]":
        """The per-source knowledge stores this federation reads through."""
        return dict(self._stores)

    @property
    def knowledge_bases(self) -> "dict[str, KnowledgeBase]":
        """Snapshots of every source's current knowledge generation."""
        return {name: store.current for name, store in self._stores.items()}

    def query(self, query: SelectionQuery) -> FederatedResult:
        """Mediate *query* over the whole federation.

        One source failing transiently never aborts the others: its failure
        is logged on the result, the result is flagged degraded, and the
        remaining sources are still mediated in full.  Probes run through
        the configured executor and stream back in completion order; their
        payloads are then folded in registry order, so the federated
        result is independent of execution interleaving.
        """
        result = FederatedResult(query=query)
        for __ in self.stream_answers(query, result=result):
            pass
        return result

    def stream_answers(
        self, query: SelectionQuery, result: "FederatedResult | None" = None
    ) -> Iterator[FederatedAnswer]:
        """Per-source ranked answers, yielded as each probe completes.

        The streaming interface: a fast source's answers surface while
        slower sources are still mediating, in arrival order — no ranking
        is owed mid-stream.  When *result* is given it is fully assembled
        (registry-order merge, confidence-sorted ``ranked``) by the time
        the stream is exhausted, identically at every executor width.
        The latency to the first answer feeds the
        ``federation.time_to_first_answer_seconds`` histogram.
        """
        if result is None:
            result = FederatedResult(query=query)
        started = time.monotonic()
        emitted = False
        for answer in self._stream(query, result):
            if not emitted:
                emitted = True
                if self._telemetry is not None:
                    self._telemetry.observe(
                        "federation.time_to_first_answer_seconds",
                        time.monotonic() - started,
                    )
            yield answer

    def _stream(
        self, query: SelectionQuery, result: FederatedResult
    ) -> Iterator[FederatedAnswer]:
        telemetry = self._telemetry
        executor = (
            self._executor
            if self._executor is not None
            else build_executor(self.config.max_concurrency)
        )
        with maybe_span(
            telemetry, f"federated {query}", SpanKind.FEDERATION, query=str(query)
        ) as root:
            sources = list(self.registry)
            tree = self._build_tree(sources) if sources else None
            payloads: dict[int, _Probe] = {}
            failures: dict[int, SourceFailure] = {}
            tasks = (
                ExecutionTask(rank, self._prober(source, query))
                for rank, source in enumerate(sources)
            )
            outcomes = executor.map_completed(tasks, lambda: False)
            try:
                for outcome in outcomes:
                    source = sources[outcome.rank]
                    if outcome.error is not None:
                        if isinstance(outcome.error, SourceUnavailableError):
                            failures[outcome.rank] = SourceFailure(
                                source.name, str(outcome.error)
                            )
                            result.degraded = True
                            if telemetry is not None:
                                telemetry.count("federation.source_failures")
                            continue
                        raise outcome.error
                    payloads[outcome.rank] = outcome.value
                    tag, payload = outcome.value
                    if tag == _MEDIATED and tree is not None:
                        assert isinstance(payload, QueryResult)
                        for ranked in payload.ranked:
                            yield from tree.push(f"source:{outcome.rank}", ranked)
            finally:
                closer = getattr(outcomes, "close", None)
                if closer is not None:
                    closer()
            if tree is not None:
                yield from tree.close()
            # Deterministic assembly: fold payloads and failures in
            # registry order, whatever order the probes completed in.
            for rank, source in enumerate(sources):
                if rank in failures:
                    result.failures.append(failures[rank])
                elif rank in payloads:
                    self._merge(source, payloads[rank], result)
            result.ranked.sort(key=lambda item: -item.confidence)
            if root is not None:
                root.set(
                    sources=len(self.registry),
                    ranked=len(result.ranked),
                    failed=len(result.failures),
                    degraded=result.degraded,
                )
        if telemetry is not None:
            telemetry.count("federation.queries")
            if result.degraded:
                telemetry.count("federation.queries_degraded")

    def _build_tree(self, sources: list[AutonomousSource]) -> OperatorTree:
        """The federation's physical plan: N tagging projects into a union.

        ::

                      StreamingUnion
                    /       |        \\
              project:s0  project:s1  ...   (tag answers with their source)
                   |          |
            Inlet "source:0"  "source:1"
        """

        def tagger(source: AutonomousSource) -> StreamingProject:
            return StreamingProject(
                lambda answer: FederatedAnswer(source.name, answer)
            )

        arms = [
            OperatorNode(tagger(source), [Inlet(f"source:{rank}")], f"project:{source.name}")
            for rank, source in enumerate(sources)
        ]
        return OperatorTree(
            OperatorNode(StreamingUnion(len(arms)), arms, "union")
        )

    # ------------------------------------------------------------------

    def _prober(
        self, source: AutonomousSource, query: SelectionQuery
    ) -> Callable[[], _Probe]:
        """One source's probe as a side-effect-free executor task."""

        def run() -> _Probe:
            with maybe_span(
                self._telemetry,
                f"source {source.name}",
                SpanKind.FEDERATION_SOURCE,
                source=source.name,
            ):
                if source.can_answer(query):
                    return self._query_supporting(source, query)
                return self._query_deficient(source, query)

        return run

    def _query_supporting(
        self, source: AutonomousSource, query: SelectionQuery
    ) -> _Probe:
        store = self._stores.get(source.name)
        if store is None:
            # No statistics: certain answers only.  This is the one place a
            # mediator bypasses the engine on purpose — there is no plan to
            # run, just the user's own query passed straight through.
            return (_CERTAIN_ONLY, source.execute(query))  # qpiadlint: disable=raw-source-call-in-core
        outcome = QpiadMediator(
            source,
            store,
            self.config,
            telemetry=self._telemetry,
            plan_cache=self._plan_cache,
        ).query(query)
        return (_MEDIATED, outcome)

    def _query_deficient(
        self, source: AutonomousSource, query: SelectionQuery
    ) -> _Probe:
        try:
            return (_MEDIATED, self.correlated.query(query, source))
        except (RewritingError, UnsupportedAttributeError):
            return (_SKIPPED, None)

    def _merge(
        self, source: AutonomousSource, probe: _Probe, result: FederatedResult
    ) -> None:
        """Fold one source's payload into the federated result.

        Runs serially, in registry order, whatever the executor did."""
        tag, payload = probe
        if tag == _SKIPPED:
            result.skipped_sources.append(source.name)
            return
        if tag == _CERTAIN_ONLY:
            assert isinstance(payload, Relation)
            result.certain[source.name] = payload
            return
        assert isinstance(payload, QueryResult)
        result.per_source[source.name] = payload
        if source.can_answer(result.query):
            result.certain[source.name] = payload.certain
        result.ranked.extend(
            FederatedAnswer(source.name, answer) for answer in payload.ranked
        )
        # Partial per-source retrievals make the merged answer partial too.
        result.degraded = result.degraded or payload.degraded
