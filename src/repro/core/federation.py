"""Federating QPIAD over every source behind the global schema.

Figure 1 of the paper shows the mediator fronting *several* autonomous
databases.  For one user query this means:

* sources whose local schema supports all constrained attributes are
  mediated with the regular QPIAD pipeline (certain answers + ranked
  possible answers), each against its own knowledge base;
* sources lacking a constrained attribute are served through the
  correlated-source machinery of Section 4.3 (their answers are possible
  answers by construction);
* per-source answer streams are merged into one ranked list, tagged with
  their origin, ordered by confidence.

Sources without a mined knowledge base still contribute their certain
answers — a mediator should never return *less* because mining has not run
yet.

The same principle governs failures: autonomous sources go down without
notice, and one dead source must never void the answers of the live ones.
A :class:`~repro.errors.SourceUnavailableError` from any single source is
recorded in :attr:`FederatedResult.failures`, the result is flagged
degraded, and mediation continues across the rest of the federation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.correlated import CorrelatedConfig, CorrelatedSourceMediator
from repro.core.qpiad import QpiadConfig, QpiadMediator
from repro.core.results import QueryResult, RankedAnswer
from repro.errors import RewritingError, SourceUnavailableError, UnsupportedAttributeError
from repro.mining.knowledge import KnowledgeBase
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation, Row
from repro.sources.registry import SourceRegistry
from repro.telemetry import SpanKind, Telemetry, maybe_span

__all__ = ["FederatedAnswer", "FederatedResult", "FederatedMediator", "SourceFailure"]


@dataclass(frozen=True)
class FederatedAnswer:
    """One possible answer, tagged with the source that supplied it."""

    source: str
    answer: RankedAnswer

    @property
    def confidence(self) -> float:
        return self.answer.confidence

    @property
    def row(self) -> Row:
        return self.answer.row


@dataclass(frozen=True)
class SourceFailure:
    """One source's transient failure the federation degraded around."""

    source: str
    message: str

    def __str__(self) -> str:
        return f"{self.source}: {self.message}"


@dataclass
class FederatedResult:
    """Merged outcome of one query across the federation.

    ``skipped_sources`` lists sources that could not *logically* contribute
    (no correlated rewriting reaches them); :attr:`failures` lists sources
    that should have contributed but failed transiently.  :attr:`degraded`
    is set when any answer stream is best-effort — a source failed outright
    or a per-source retrieval came back degraded — so callers can tell a
    complete federation answer from a partial one.
    """

    query: SelectionQuery
    certain: dict[str, Relation] = field(default_factory=dict)
    ranked: list[FederatedAnswer] = field(default_factory=list)
    per_source: dict[str, QueryResult] = field(default_factory=dict)
    skipped_sources: list[str] = field(default_factory=list)
    failures: list[SourceFailure] = field(default_factory=list)
    degraded: bool = False

    @property
    def certain_count(self) -> int:
        return sum(len(relation) for relation in self.certain.values())

    @property
    def failed_sources(self) -> tuple[str, ...]:
        return tuple(failure.source for failure in self.failures)

    def top(self, count: int) -> list[FederatedAnswer]:
        return self.ranked[:count]


class FederatedMediator:
    """Runs one user query across every registered source.

    Parameters
    ----------
    registry:
        Sources under the mediator's global schema.
    knowledge_bases:
        Per-source mined statistics by source name.  Sources without one
        only contribute certain answers (when they support the query) and
        can still *receive* correlated-source rewritten queries.
    config / correlated_config:
        Parameters for the regular and cross-source pipelines.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hook, shared with
        every per-source mediator the federation spins up: the federated
        query becomes one root span with a child span per source, under
        which the per-source retrieval spans nest.
    """

    def __init__(
        self,
        registry: SourceRegistry,
        knowledge_bases: dict[str, KnowledgeBase],
        config: QpiadConfig | None = None,
        correlated_config: CorrelatedConfig | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.registry = registry
        self.knowledge_bases = knowledge_bases
        self.config = config or QpiadConfig()
        self._telemetry = telemetry
        self.correlated = CorrelatedSourceMediator(
            registry, knowledge_bases, correlated_config, telemetry=telemetry
        )

    def query(self, query: SelectionQuery) -> FederatedResult:
        """Mediate *query* over the whole federation.

        One source failing transiently never aborts the others: its failure
        is logged on the result, the result is flagged degraded, and the
        remaining sources are still mediated in full.
        """
        telemetry = self._telemetry
        result = FederatedResult(query=query)
        with maybe_span(
            telemetry, f"federated {query}", SpanKind.FEDERATION, query=str(query)
        ) as root:
            for source in self.registry:
                try:
                    with maybe_span(
                        telemetry,
                        f"source {source.name}",
                        SpanKind.FEDERATION_SOURCE,
                        source=source.name,
                    ):
                        if source.can_answer(query):
                            self._query_supporting(source, query, result)
                        else:
                            self._query_deficient(source, query, result)
                except SourceUnavailableError as exc:
                    result.failures.append(SourceFailure(source.name, str(exc)))
                    result.degraded = True
                    if telemetry is not None:
                        telemetry.count("federation.source_failures")
            result.ranked.sort(key=lambda item: -item.confidence)
            if root is not None:
                root.set(
                    sources=len(self.registry),
                    ranked=len(result.ranked),
                    failed=len(result.failures),
                    degraded=result.degraded,
                )
        if telemetry is not None:
            telemetry.count("federation.queries")
            if result.degraded:
                telemetry.count("federation.queries_degraded")
        return result

    # ------------------------------------------------------------------

    def _query_supporting(self, source, query, result: FederatedResult) -> None:
        knowledge = self.knowledge_bases.get(source.name)
        if knowledge is None:
            # No statistics: certain answers only.
            result.certain[source.name] = source.execute(query)
            return
        outcome = QpiadMediator(
            source, knowledge, self.config, telemetry=self._telemetry
        ).query(query)
        result.per_source[source.name] = outcome
        result.certain[source.name] = outcome.certain
        result.ranked.extend(
            FederatedAnswer(source.name, answer) for answer in outcome.ranked
        )
        # Partial per-source retrievals make the merged answer partial too.
        result.degraded = result.degraded or outcome.degraded

    def _query_deficient(self, source, query, result: FederatedResult) -> None:
        try:
            outcome = self.correlated.query(query, source)
        except (RewritingError, UnsupportedAttributeError):
            result.skipped_sources.append(source.name)
            return
        result.per_source[source.name] = outcome
        result.ranked.extend(
            FederatedAnswer(source.name, answer) for answer in outcome.ranked
        )
        result.degraded = result.degraded or outcome.degraded
