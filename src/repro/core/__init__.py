"""QPIAD core: rewriting, ranking, mediation, aggregates, joins, baselines."""

from repro.core.aggregates import AggregateProcessor, AggregateResult
from repro.core.baselines import all_ranked, all_returned
from repro.core.correlated import (
    CorrelatedConfig,
    CorrelatedSourceMediator,
    find_correlated_source,
)
from repro.core.federation import (
    FederatedAnswer,
    FederatedMediator,
    FederatedResult,
    SourceFailure,
)
from repro.core.joins import JoinConfig, JoinedAnswer, JoinProcessor, JoinResult
from repro.core.multijoin import (
    MultiJoinedAnswer,
    MultiJoinProcessor,
    MultiJoinResult,
    MultiJoinStep,
)
from repro.core.qpiad import QpiadConfig, QpiadMediator
from repro.core.relaxation import QueryRelaxer, RelaxationPlan, RelaxedAnswer
# Public-API re-exports of the pipeline stage functions, not mediation:
# callers outside repro.core (benchmarks, notebooks) keep their import
# surface while mediators themselves go through the planner.
from repro.core.ranking import f_measure, order_rewritten_queries, score_rewritten_queries  # qpiadlint: disable=raw-rewrite-call-in-core
from repro.core.results import QueryFailure, QueryResult, RankedAnswer, RetrievalStats
from repro.core.rewriting import (  # qpiadlint: disable=raw-rewrite-call-in-core
    RewrittenQuery,
    generate_rewritten_queries,
    target_probability,
)

__all__ = [
    "RankedAnswer",
    "QueryFailure",
    "RetrievalStats",
    "QueryResult",
    "RewrittenQuery",
    "generate_rewritten_queries",
    "target_probability",
    "f_measure",
    "score_rewritten_queries",
    "order_rewritten_queries",
    "QpiadConfig",
    "QpiadMediator",
    "all_returned",
    "all_ranked",
    "AggregateProcessor",
    "AggregateResult",
    "JoinConfig",
    "JoinProcessor",
    "JoinResult",
    "JoinedAnswer",
    "CorrelatedConfig",
    "CorrelatedSourceMediator",
    "find_correlated_source",
    "MultiJoinStep",
    "MultiJoinProcessor",
    "MultiJoinResult",
    "MultiJoinedAnswer",
    "QueryRelaxer",
    "FederatedMediator",
    "FederatedResult",
    "FederatedAnswer",
    "SourceFailure",
    "RelaxationPlan",
    "RelaxedAnswer",
]
