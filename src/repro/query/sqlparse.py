"""A small SQL-style parser for selection queries.

Users of a query-processing library expect to write conditions the way they
write SQL.  This parser covers exactly the conjunctive fragment QPIAD
processes (Section 4's query model) — nothing more:

    make = 'Honda' AND price BETWEEN 15000 AND 20000
    body_style IN ('Convt', 'Coupe') AND year >= 2003
    SELECT * FROM cars WHERE model = 'Accord'     -- prefix optional

Grammar::

    query     := [SELECT '*' FROM ident] [WHERE] condition (AND condition)*
    condition := ident op value
               | ident BETWEEN value AND value
               | ident IN '(' value (',' value)* ')'
    op        := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    value     := number | 'single-quoted' | "double-quoted" | bareword

Keywords are case-insensitive; bareword values (no quotes) are taken as
strings unless they parse as numbers.  Disjunction, negation and nesting are
deliberately unsupported — the mediator cannot rewrite them.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import QueryError
from repro.query.predicates import Between, Comparison, Equals, NotEquals, OneOf, Predicate
from repro.query.query import SelectionQuery

__all__ = ["parse_selection"]

_TOKEN = re.compile(
    r"""
    \s*(
        '(?:[^'\\]|\\.)*'            # single-quoted string
      | "(?:[^"\\]|\\.)*"            # double-quoted string
      | <= | >= | <> | != | [=<>(),] # operators & punctuation
      | [A-Za-z_][A-Za-z0-9_.]*      # identifiers / keywords / barewords
      | -?\d+(?:\.\d+)?              # numbers
      | \*                           # SELECT *
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "between", "in"}


class _Tokens:
    def __init__(self, text: str):
        self.items: list[str] = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                raise QueryError(
                    f"cannot tokenize query at ...{text[position:position + 20]!r}"
                )
            self.items.append(match.group(1))
            position = match.end()
        self.index = 0

    def peek(self) -> str | None:
        return self.items[self.index] if self.index < len(self.items) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.index += 1
        return token

    def accept_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.lower() == keyword:
            self.index += 1
            return True
        return False

    def expect(self, literal: str) -> None:
        token = self.next()
        if token.lower() != literal.lower():
            raise QueryError(f"expected {literal!r}, got {token!r}")


def _parse_value(token: str) -> Any:
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return re.sub(r"\\(.)", r"\1", token[1:-1])
    try:
        number = float(token)
    except ValueError:
        return token  # bareword string
    return int(number) if number.is_integer() and "." not in token else number


def _parse_condition(tokens: _Tokens) -> Predicate:
    attribute = tokens.next()
    if attribute.lower() in _KEYWORDS or not re.fullmatch(
        r"[A-Za-z_][A-Za-z0-9_.]*", attribute
    ):
        raise QueryError(f"expected an attribute name, got {attribute!r}")
    operator = tokens.next().lower()
    if operator == "between":
        low = _parse_value(tokens.next())
        tokens.expect("and")
        high = _parse_value(tokens.next())
        return Between(attribute, low, high)
    if operator == "in":
        tokens.expect("(")
        values = [_parse_value(tokens.next())]
        while True:
            token = tokens.next()
            if token == ")":
                break
            if token != ",":
                raise QueryError(f"expected ',' or ')' in IN list, got {token!r}")
            values.append(_parse_value(tokens.next()))
        return OneOf(attribute, values)
    if operator == "=":
        return Equals(attribute, _parse_value(tokens.next()))
    if operator in ("!=", "<>"):
        return NotEquals(attribute, _parse_value(tokens.next()))
    if operator in ("<", "<=", ">", ">="):
        return Comparison(attribute, operator, _parse_value(tokens.next()))
    raise QueryError(f"unsupported operator {operator!r}")


def parse_selection(text: str) -> SelectionQuery:
    """Parse a SQL-style conjunctive condition into a :class:`SelectionQuery`.

    Raises :class:`~repro.errors.QueryError` on anything outside the
    supported fragment (OR, NOT, parenthesised sub-conditions, joins...).
    """
    if not text or not text.strip():
        raise QueryError("empty query text")
    tokens = _Tokens(text)

    relation: str | None = None
    if tokens.accept_keyword("select"):
        tokens.expect("*")
        tokens.expect("from")
        relation = tokens.next()
        if relation.lower() in _KEYWORDS:
            raise QueryError(f"expected a relation name, got {relation!r}")
    tokens.accept_keyword("where")

    predicates = [_parse_condition(tokens)]
    while tokens.peek() is not None:
        token = tokens.next()
        if token.lower() == "or":
            raise QueryError(
                "OR is not supported: QPIAD rewrites conjunctive selections only"
            )
        if token.lower() != "and":
            raise QueryError(f"expected AND between conditions, got {token!r}")
        predicates.append(_parse_condition(tokens))
    return SelectionQuery.conjunction(predicates, relation)
