"""NULL-aware evaluation of queries against relations.

The executor is what an autonomous database "does internally"; the mediator
never calls it directly on source data — it goes through
:class:`repro.sources.AutonomousSource`, which enforces the web-form
capability restrictions and delegates here.

Three evaluation modes mirror the paper's answer taxonomy (Definition 2):

* :func:`certain_answers` — rows that certainly satisfy the query,
* :func:`possible_answers` — rows NULL-blocked on constrained attributes
  (satisfying every conjunct on a present value),
* :func:`certain_or_possible` — their union, as retrieved by the
  ``AllReturned`` baseline when NULL binding is allowed.
"""

from __future__ import annotations

# This module IS the source-side evaluation engine: AutonomousSource
# delegates here, so operating on relations directly is its whole job.
# qpiadlint: disable-file=raw-relation-access

from typing import Any, Callable, Sequence

import numpy as np

from repro.query.predicates import AttributePredicate, Predicate, conjuncts_of
from repro.query.query import AggregateFunction, AggregateQuery, SelectionQuery
from repro.relational.columnar import ColumnStore, use_columnar
from repro.relational.relation import Relation, Row
from repro.relational.schema import Schema
from repro.relational.values import is_null

__all__ = [
    "certain_answers",
    "possible_answers",
    "certain_or_possible",
    "certain_count",
    "evaluate_aggregate",
    "natural_join",
]


def certain_answers(query: SelectionQuery, relation: Relation) -> Relation:
    """Rows of *relation* that certainly satisfy *query* (SQL semantics).

    On the columnar plane the predicate is evaluated as a boolean mask over
    the relation's column store; the per-row path (also used whenever the
    predicate cannot be vectorized) compiles the predicate once so attribute
    positions are not re-resolved for every row.
    """
    if use_columnar():
        mask = query.predicate.mask(relation.columnar())
        if mask is not None:
            return relation.select_indices(np.flatnonzero(mask).tolist())
    return relation.select(_compiled_matcher(query.predicate, relation.schema))


def possible_answers(
    query: SelectionQuery, relation: Relation, max_nulls: int | None = None
) -> Relation:
    """Rows that are possible-but-not-certain answers to *query*.

    A row qualifies when every conjunct either matches or is blocked by a
    NULL on one of its constrained attributes, and at least one conjunct is
    NULL-blocked.  With *max_nulls* set, rows with more NULLs over the
    constrained attributes are excluded (the paper ranks only rows with at
    most one such NULL).
    """
    schema = relation.schema
    constrained = query.constrained_attributes
    if use_columnar():
        store = relation.columnar()
        possible = query.predicate.possible_mask(store)
        if possible is not None:
            null_counts = _null_counts(store, constrained)
            mask = possible & (null_counts > 0)
            if max_nulls is not None:
                mask &= null_counts <= max_nulls
            return relation.select_indices(np.flatnonzero(mask).tolist())

    constrained_positions = schema.indices_of(constrained)
    possibly = _compiled_possibly(query.predicate, schema)

    def qualifies(row: Row) -> bool:
        nulls = 0
        for position in constrained_positions:
            if is_null(row[position]):
                nulls += 1
        if nulls == 0:
            return False
        if max_nulls is not None and nulls > max_nulls:
            return False
        return possibly(row)

    return relation.select(qualifies)


def certain_or_possible(query: SelectionQuery, relation: Relation) -> Relation:
    """Union of certain and possible answers, preserving row order."""
    if use_columnar():
        possible = query.predicate.possible_mask(relation.columnar())
        if possible is not None:
            return relation.select_indices(np.flatnonzero(possible).tolist())
    return relation.select(_compiled_possibly(query.predicate, relation.schema))


def certain_count(query: SelectionQuery, relation: Relation) -> int:
    """``len(certain_answers(query, relation))`` without materializing rows.

    The selectivity estimator calls this per candidate rewritten query; on
    the columnar plane it is a mask sum.
    """
    if use_columnar():
        mask = query.predicate.mask(relation.columnar())
        if mask is not None:
            return int(mask.sum())
    matches = _compiled_matcher(query.predicate, relation.schema)
    count = 0
    for row in relation:
        if matches(row):
            count += 1
    return count


def _compiled_matcher(predicate: Predicate, schema: Schema) -> Callable[[Row], bool]:
    """A row matcher with every attribute position resolved once.

    The naive form — ``predicate.matches(row, schema)`` per row — re-runs
    ``schema.index_of`` for every conjunct of every row; this closure hoists
    those lookups out of the loop.
    """
    tests: list[tuple[int, Callable[[Any], bool]]] = []
    for conjunct in conjuncts_of(predicate):
        if not isinstance(conjunct, AttributePredicate):
            return lambda row: predicate.matches(row, schema)
        tests.append((schema.index_of(conjunct.attribute), conjunct.matches_value))

    def matches(row: Row) -> bool:
        for position, test in tests:
            if not test(row[position]):
                return False
        return True

    return matches


def _compiled_possibly(predicate: Predicate, schema: Schema) -> Callable[[Row], bool]:
    """``predicate.possibly_matches`` with attribute positions pre-resolved."""
    parts: list[tuple[Callable[[Row], bool], tuple[int, ...]]] = []
    for conjunct in conjuncts_of(predicate):
        positions = schema.indices_of(conjunct.attributes())
        if isinstance(conjunct, AttributePredicate):
            value_test = conjunct.matches_value
            position = positions[0]

            def test(
                row: Row,
                position: int = position,
                value_test: Callable[[Any], bool] = value_test,
            ) -> bool:
                return value_test(row[position])

        else:

            def test(row: Row, conjunct: Predicate = conjunct) -> bool:
                return conjunct.matches(row, schema)

        parts.append((test, positions))

    def possibly(row: Row) -> bool:
        for matcher, positions in parts:
            if matcher(row):
                continue
            if not any(is_null(row[position]) for position in positions):
                return False
        return True

    return possibly


def _null_counts(store: ColumnStore, attributes: Sequence[str]) -> "np.ndarray":
    """Per-row count of NULLs over *attributes* (int64)."""
    counts = np.zeros(len(store), dtype=np.int64)
    for name in attributes:
        counts += store.column(name).null_mask
    return counts


def evaluate_aggregate(query: AggregateQuery, relation: Relation) -> float | None:
    """Evaluate an aggregate over the certain answers of its selection.

    NULLs in the aggregated attribute are skipped (SQL semantics); for
    ``COUNT(*)`` every certain answer counts.
    """
    answers = certain_answers(query.selection, relation)
    if query.function is AggregateFunction.COUNT and query.attribute == "*":
        return float(len(answers))
    values = [value for value in answers.column(query.attribute) if not is_null(value)]
    return query.function.compute(values)


def natural_join(
    left: Relation,
    right: Relation,
    left_attribute: str,
    right_attribute: str | None = None,
    right_prefix: str = "right_",
) -> Relation:
    """Equi-join two relations on one attribute pair (hash join).

    NULL join values never match (SQL semantics).  Overlapping attribute
    names on the right side are prefixed with *right_prefix* so the joined
    schema stays unambiguous; the right join column is dropped since it
    always equals the left one.
    """
    right_attribute = right_attribute or left_attribute
    left_index = left.schema.index_of(left_attribute)
    right_index = right.schema.index_of(right_attribute)

    buckets: dict[Any, list[Row]] = {}
    for row in right:
        key = row[right_index]
        if is_null(key):
            continue
        buckets.setdefault(key, []).append(row)

    left_names = set(left.schema.names)
    mapping = {
        name: (right_prefix + name if name in left_names else name)
        for name in right.schema.names
        if name != right_attribute
    }
    from repro.relational.schema import Attribute, Schema  # local to avoid cycle at import

    joined_attrs = list(left.schema.attributes) + [
        Attribute(mapping[attr.name], attr.type)
        for attr in right.schema.attributes
        if attr.name != right_attribute
    ]
    joined_schema = Schema(joined_attrs)

    rows: list[Row] = []
    for row in left:
        key = row[left_index]
        if is_null(key):
            continue
        for match in buckets.get(key, ()):
            tail = tuple(
                value for position, value in enumerate(match) if position != right_index
            )
            rows.append(row + tail)
    return Relation(joined_schema, rows)
