"""NULL-aware evaluation of queries against relations.

The executor is what an autonomous database "does internally"; the mediator
never calls it directly on source data — it goes through
:class:`repro.sources.AutonomousSource`, which enforces the web-form
capability restrictions and delegates here.

Three evaluation modes mirror the paper's answer taxonomy (Definition 2):

* :func:`certain_answers` — rows that certainly satisfy the query,
* :func:`possible_answers` — rows NULL-blocked on constrained attributes
  (satisfying every conjunct on a present value),
* :func:`certain_or_possible` — their union, as retrieved by the
  ``AllReturned`` baseline when NULL binding is allowed.
"""

from __future__ import annotations

# This module IS the source-side evaluation engine: AutonomousSource
# delegates here, so operating on relations directly is its whole job.
# qpiadlint: disable-file=raw-relation-access

from typing import Any

from repro.query.query import AggregateFunction, AggregateQuery, SelectionQuery
from repro.relational.relation import Relation, Row
from repro.relational.values import is_null

__all__ = [
    "certain_answers",
    "possible_answers",
    "certain_or_possible",
    "evaluate_aggregate",
    "natural_join",
]


def certain_answers(query: SelectionQuery, relation: Relation) -> Relation:
    """Rows of *relation* that certainly satisfy *query* (SQL semantics)."""
    schema = relation.schema
    return relation.select(lambda row: query.predicate.matches(row, schema))


def possible_answers(
    query: SelectionQuery, relation: Relation, max_nulls: int | None = None
) -> Relation:
    """Rows that are possible-but-not-certain answers to *query*.

    A row qualifies when every conjunct either matches or is blocked by a
    NULL on one of its constrained attributes, and at least one conjunct is
    NULL-blocked.  With *max_nulls* set, rows with more NULLs over the
    constrained attributes are excluded (the paper ranks only rows with at
    most one such NULL).
    """
    schema = relation.schema
    constrained = query.constrained_attributes

    def qualifies(row: Row) -> bool:
        nulls = sum(1 for name in constrained if is_null(row[schema.index_of(name)]))
        if nulls == 0:
            return False
        if max_nulls is not None and nulls > max_nulls:
            return False
        return query.predicate.possibly_matches(row, schema)

    return relation.select(qualifies)


def certain_or_possible(query: SelectionQuery, relation: Relation) -> Relation:
    """Union of certain and possible answers, preserving row order."""
    schema = relation.schema
    return relation.select(lambda row: query.predicate.possibly_matches(row, schema))


def evaluate_aggregate(query: AggregateQuery, relation: Relation) -> float | None:
    """Evaluate an aggregate over the certain answers of its selection.

    NULLs in the aggregated attribute are skipped (SQL semantics); for
    ``COUNT(*)`` every certain answer counts.
    """
    answers = certain_answers(query.selection, relation)
    if query.function is AggregateFunction.COUNT and query.attribute == "*":
        return float(len(answers))
    values = [value for value in answers.column(query.attribute) if not is_null(value)]
    return query.function.compute(values)


def natural_join(
    left: Relation,
    right: Relation,
    left_attribute: str,
    right_attribute: str | None = None,
    right_prefix: str = "right_",
) -> Relation:
    """Equi-join two relations on one attribute pair (hash join).

    NULL join values never match (SQL semantics).  Overlapping attribute
    names on the right side are prefixed with *right_prefix* so the joined
    schema stays unambiguous; the right join column is dropped since it
    always equals the left one.
    """
    right_attribute = right_attribute or left_attribute
    left_index = left.schema.index_of(left_attribute)
    right_index = right.schema.index_of(right_attribute)

    buckets: dict[Any, list[Row]] = {}
    for row in right:
        key = row[right_index]
        if is_null(key):
            continue
        buckets.setdefault(key, []).append(row)

    left_names = set(left.schema.names)
    mapping = {
        name: (right_prefix + name if name in left_names else name)
        for name in right.schema.names
        if name != right_attribute
    }
    from repro.relational.schema import Attribute, Schema  # local to avoid cycle at import

    joined_attrs = list(left.schema.attributes) + [
        Attribute(mapping[attr.name], attr.type)
        for attr in right.schema.attributes
        if attr.name != right_attribute
    ]
    joined_schema = Schema(joined_attrs)

    rows: list[Row] = []
    for row in left:
        key = row[left_index]
        if is_null(key):
            continue
        for match in buckets.get(key, ()):
            tail = tuple(
                value for position, value in enumerate(match) if position != right_index
            )
            rows.append(row + tail)
    return Relation(joined_schema, rows)
