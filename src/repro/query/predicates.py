"""Predicate AST for conjunctive selection queries.

QPIAD's query model (Section 4 of the paper) is conjunctions of per-attribute
constraints: equality on categorical attributes and equality / ranges on
numeric ones (e.g. ``Model=Accord AND Price BETWEEN 15000 AND 20000``).

Evaluation follows SQL three-valued logic collapsed to the two outcomes the
paper needs:

* :meth:`Predicate.matches` — the tuple *certainly* satisfies the predicate
  (NULL on a constrained attribute means "not a certain match").
* :meth:`Predicate.null_constrained` — which constrained attributes are NULL
  in the tuple.  Tuples whose only failures are NULLs are the paper's
  *possible answers* (Definition 2).

Each predicate also knows how to evaluate itself *vectorized* against a
:class:`~repro.relational.columnar.ColumnStore`: :meth:`Predicate.mask`
returns a boolean row mask of certain matches and
:meth:`Predicate.possible_mask` the certain-or-possible mask, both exactly
equivalent to the per-row methods.  A predicate that cannot be vectorized
faithfully (opaque column, exotic constant) returns ``None`` and the
executor falls back to per-row evaluation — correctness never depends on the
fast path.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import QueryError
from repro.relational.columnar import float64_exact
from repro.relational.relation import Row
from repro.relational.schema import Schema
from repro.relational.values import NULL, is_null

if TYPE_CHECKING:
    from numpy.typing import NDArray

    from repro.relational.columnar import Column, ColumnStore

__all__ = [
    "Predicate",
    "AttributePredicate",
    "Equals",
    "NotEquals",
    "Between",
    "Comparison",
    "OneOf",
    "And",
    "conjuncts_of",
]


class Predicate(ABC):
    """Base class of all predicate nodes."""

    @abstractmethod
    def attributes(self) -> tuple[str, ...]:
        """Constrained attribute names, without duplicates, in AST order."""

    @abstractmethod
    def matches(self, row: Row, schema: Schema) -> bool:
        """True iff *row* certainly satisfies the predicate."""

    def null_constrained(self, row: Row, schema: Schema) -> tuple[str, ...]:
        """Constrained attributes whose value is NULL in *row*."""
        return tuple(
            name for name in self.attributes() if is_null(row[schema.index_of(name)])
        )

    def possibly_matches(self, row: Row, schema: Schema) -> bool:
        """True iff every conjunct either matches or is NULL-blocked.

        This is the certain-or-possible test: the row fails no conjunct on a
        *present* value.
        """
        for conjunct in conjuncts_of(self):
            if conjunct.matches(row, schema):
                continue
            if not conjunct.null_constrained(row, schema):
                return False
        return True

    # ------------------------------------------------------------------
    # Vectorized evaluation (columnar data plane)
    # ------------------------------------------------------------------

    def mask(self, store: "ColumnStore") -> "NDArray[np.bool_] | None":
        """Boolean row mask of certain matches, or ``None``.

        ``None`` means "this predicate cannot be vectorized faithfully";
        callers must evaluate per row.  Masks, when returned, are exactly
        equivalent to calling :meth:`matches` on every row.
        """
        return None

    def null_any_mask(self, store: "ColumnStore") -> "NDArray[np.bool_]":
        """Rows NULL on at least one constrained attribute.

        The returned array may alias column storage — treat it as read-only.
        """
        names = self.attributes()
        result = store.column(names[0]).null_mask
        for name in names[1:]:
            result = result | store.column(name).null_mask
        return result

    def possible_mask(self, store: "ColumnStore") -> "NDArray[np.bool_] | None":
        """Certain-or-possible row mask, or ``None`` for per-row fallback.

        A row passes when every conjunct either matches or is NULL-blocked
        on one of its own attributes — exactly :meth:`possibly_matches`.
        """
        result: "NDArray[np.bool_] | None" = None
        for conjunct in conjuncts_of(self):
            conjunct_mask = conjunct.mask(store)
            if conjunct_mask is None:
                return None
            allowed = conjunct_mask | conjunct.null_any_mask(store)
            result = allowed if result is None else result & allowed
        return result

    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])


class AttributePredicate(Predicate):
    """A predicate constraining exactly one attribute."""

    __slots__ = ("attribute",)

    def __init__(self, attribute: str):
        if not attribute:
            raise QueryError("predicate attribute name must be non-empty")
        self.attribute = attribute

    def attributes(self) -> tuple[str, ...]:
        return (self.attribute,)

    @abstractmethod
    def matches_value(self, value: Any) -> bool:
        """True iff a cell holding *value* certainly satisfies the predicate.

        *value* may be NULL; implementations apply SQL semantics (NULL never
        certainly matches).  The executor compiles row matchers from this so
        the attribute position is resolved once per query, not once per row.
        """

    def matches(self, row: Row, schema: Schema) -> bool:
        return self.matches_value(row[schema.index_of(self.attribute)])

    def _value_of(self, row: Row, schema: Schema) -> Any:
        return row[schema.index_of(self.attribute)]

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return False
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


class Equals(AttributePredicate):
    """``attribute = value``; the workhorse predicate of the paper."""

    __slots__ = ("value",)

    def __init__(self, attribute: str, value: Any):
        super().__init__(attribute)
        if value is NULL or value is None:
            raise QueryError(
                f"cannot build an equality on NULL for {attribute!r}; autonomous "
                "sources do not support binding NULL (use possible-answer retrieval)"
            )
        self.value = value

    def matches_value(self, value: Any) -> bool:
        return not is_null(value) and value == self.value

    def mask(self, store: "ColumnStore") -> "NDArray[np.bool_] | None":
        column = store.column(self.attribute)
        codes = column.codes
        if codes is None:
            return None
        try:
            if self.value != self.value:
                # NaN: dictionary lookup would find an identical object, but
                # the row plane compares with ``==`` which NaN never passes.
                return np.zeros(codes.shape[0], dtype=np.bool_)
            code = column.code_of(self.value)
        except TypeError:
            return None
        if code is None:
            return np.zeros(codes.shape[0], dtype=np.bool_)
        result: "NDArray[np.bool_]" = codes == code
        return result

    def _key(self) -> tuple:
        return (self.attribute, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}={self.value!r}"


class NotEquals(AttributePredicate):
    """``attribute != value`` (NULL never certainly satisfies it)."""

    __slots__ = ("value",)

    def __init__(self, attribute: str, value: Any):
        super().__init__(attribute)
        self.value = value

    def matches_value(self, value: Any) -> bool:
        return not is_null(value) and value != self.value

    def mask(self, store: "ColumnStore") -> "NDArray[np.bool_] | None":
        column = store.column(self.attribute)
        codes = column.codes
        if codes is None:
            return None
        non_null: "NDArray[np.bool_]" = codes >= 0
        try:
            if self.value != self.value:
                # NaN (or NULL) constant: ``!=`` holds for every present value.
                return non_null
            code = column.code_of(self.value)
        except TypeError:
            return None
        if code is None:
            return non_null
        return non_null & (codes != code)

    def _key(self) -> tuple:
        return (self.attribute, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}!={self.value!r}"


class Between(AttributePredicate):
    """``attribute BETWEEN low AND high`` (inclusive on both ends)."""

    __slots__ = ("low", "high")

    def __init__(self, attribute: str, low: Any, high: Any):
        super().__init__(attribute)
        if low > high:
            raise QueryError(f"between bounds reversed for {attribute!r}: {low!r} > {high!r}")
        self.low = low
        self.high = high

    def matches_value(self, value: Any) -> bool:
        if is_null(value):
            return False
        try:
            return bool(self.low <= value <= self.high)
        except TypeError:
            return False

    def mask(self, store: "ColumnStore") -> "NDArray[np.bool_] | None":
        column = store.column(self.attribute)
        if column.codes is None:
            return None
        if not (float64_exact(self.low) and float64_exact(self.high)):
            return None
        values, exact = column.dictionary_numeric()
        per_value = (self.low <= values) & (values <= self.high) & exact
        return _patch_inexact(per_value, exact, column, self.matches_value)

    def _key(self) -> tuple:
        return (self.attribute, self.low, self.high)

    def __repr__(self) -> str:
        return f"{self.attribute} between {self.low!r} and {self.high!r}"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Comparison(AttributePredicate):
    """``attribute <op> value`` for ``<``, ``<=``, ``>``, ``>=``."""

    __slots__ = ("op", "value")

    def __init__(self, attribute: str, op: str, value: Any):
        super().__init__(attribute)
        if op not in _COMPARATORS:
            raise QueryError(f"unsupported comparison operator {op!r}")
        self.op = op
        self.value = value

    def matches_value(self, value: Any) -> bool:
        if is_null(value):
            return False
        try:
            return bool(_COMPARATORS[self.op](value, self.value))
        except TypeError:
            return False

    def mask(self, store: "ColumnStore") -> "NDArray[np.bool_] | None":
        column = store.column(self.attribute)
        if column.codes is None:
            return None
        if not float64_exact(self.value):
            return None
        values, exact = column.dictionary_numeric()
        per_value = _COMPARATORS[self.op](values, self.value) & exact
        return _patch_inexact(per_value, exact, column, self.matches_value)

    def _key(self) -> tuple:
        return (self.attribute, self.op, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}{self.op}{self.value!r}"


class OneOf(AttributePredicate):
    """``attribute IN (values)``; used by workload generators."""

    __slots__ = ("values",)

    def __init__(self, attribute: str, values: Iterable[Any]):
        super().__init__(attribute)
        self.values = frozenset(values)
        if not self.values:
            raise QueryError(f"OneOf on {attribute!r} requires at least one value")
        if any(value is NULL or value is None for value in self.values):
            raise QueryError(f"OneOf on {attribute!r} cannot include NULL")

    def matches_value(self, value: Any) -> bool:
        return not is_null(value) and value in self.values

    def mask(self, store: "ColumnStore") -> "NDArray[np.bool_] | None":
        column = store.column(self.attribute)
        codes = column.codes
        if codes is None:
            return None
        wanted = [code for code in map(column.code_of, self.values) if code is not None]
        if not wanted:
            return np.zeros(codes.shape[0], dtype=np.bool_)
        if len(wanted) == 1:
            result: "NDArray[np.bool_]" = codes == wanted[0]
            return result
        return np.isin(codes, np.array(wanted, dtype=np.int64))

    def _key(self) -> tuple:
        return (self.attribute, self.values)

    def __repr__(self) -> str:
        rendered = ", ".join(sorted(map(repr, self.values)))
        return f"{self.attribute} in ({rendered})"


class And(Predicate):
    """Conjunction of predicates; nested conjunctions are flattened."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Predicate]):
        flattened: list[Predicate] = []
        seen: set[Predicate] = set()
        for part in parts:
            for conjunct in (part.parts if isinstance(part, And) else (part,)):
                # Conjunction is idempotent: drop exact duplicates (keeps
                # rewritten queries readable when a determining attribute is
                # also an original constraint).
                if conjunct in seen:
                    continue
                seen.add(conjunct)
                flattened.append(conjunct)
        if not flattened:
            raise QueryError("a conjunction requires at least one predicate")
        self.parts = tuple(flattened)

    def attributes(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for part in self.parts:
            for name in part.attributes():
                seen.setdefault(name)
        return tuple(seen.keys())

    def matches(self, row: Row, schema: Schema) -> bool:
        return all(part.matches(row, schema) for part in self.parts)

    def mask(self, store: "ColumnStore") -> "NDArray[np.bool_] | None":
        result: "NDArray[np.bool_] | None" = None
        for part in self.parts:
            part_mask = part.mask(store)
            if part_mask is None:
                return None
            result = part_mask if result is None else result & part_mask
        return result

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("And", self.parts))

    def __repr__(self) -> str:
        return " AND ".join(map(repr, self.parts))


def _patch_inexact(
    per_value: "NDArray[np.bool_]",
    exact: "NDArray[np.bool_]",
    column: "Column",
    matches_value: Callable[[Any], bool],
) -> "NDArray[np.bool_]":
    """Finish a dictionary-level range mask and scatter it to rows.

    Entries whose float64 image is inexact (strings in a mixed column, huge
    ints...) are re-evaluated with the exact Python predicate so the mask is
    bit-identical to per-row evaluation.
    """
    if not bool(exact.all()):
        for position in np.flatnonzero(~exact).tolist():
            per_value[position] = matches_value(column.values[position])
    return column.gather_bool(per_value)


def conjuncts_of(predicate: Predicate) -> tuple[Predicate, ...]:
    """The top-level conjuncts of *predicate* (itself if not a conjunction)."""
    if isinstance(predicate, And):
        return predicate.parts
    return (predicate,)
