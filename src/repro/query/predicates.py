"""Predicate AST for conjunctive selection queries.

QPIAD's query model (Section 4 of the paper) is conjunctions of per-attribute
constraints: equality on categorical attributes and equality / ranges on
numeric ones (e.g. ``Model=Accord AND Price BETWEEN 15000 AND 20000``).

Evaluation follows SQL three-valued logic collapsed to the two outcomes the
paper needs:

* :meth:`Predicate.matches` — the tuple *certainly* satisfies the predicate
  (NULL on a constrained attribute means "not a certain match").
* :meth:`Predicate.null_constrained` — which constrained attributes are NULL
  in the tuple.  Tuples whose only failures are NULLs are the paper's
  *possible answers* (Definition 2).
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Sequence

from repro.errors import QueryError
from repro.relational.relation import Row
from repro.relational.schema import Schema
from repro.relational.values import NULL, is_null

__all__ = [
    "Predicate",
    "AttributePredicate",
    "Equals",
    "NotEquals",
    "Between",
    "Comparison",
    "OneOf",
    "And",
    "conjuncts_of",
]


class Predicate(ABC):
    """Base class of all predicate nodes."""

    @abstractmethod
    def attributes(self) -> tuple[str, ...]:
        """Constrained attribute names, without duplicates, in AST order."""

    @abstractmethod
    def matches(self, row: Row, schema: Schema) -> bool:
        """True iff *row* certainly satisfies the predicate."""

    def null_constrained(self, row: Row, schema: Schema) -> tuple[str, ...]:
        """Constrained attributes whose value is NULL in *row*."""
        return tuple(
            name for name in self.attributes() if is_null(row[schema.index_of(name)])
        )

    def possibly_matches(self, row: Row, schema: Schema) -> bool:
        """True iff every conjunct either matches or is NULL-blocked.

        This is the certain-or-possible test: the row fails no conjunct on a
        *present* value.
        """
        for conjunct in conjuncts_of(self):
            if conjunct.matches(row, schema):
                continue
            if not conjunct.null_constrained(row, schema):
                return False
        return True

    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])


class AttributePredicate(Predicate):
    """A predicate constraining exactly one attribute."""

    __slots__ = ("attribute",)

    def __init__(self, attribute: str):
        if not attribute:
            raise QueryError("predicate attribute name must be non-empty")
        self.attribute = attribute

    def attributes(self) -> tuple[str, ...]:
        return (self.attribute,)

    def _value_of(self, row: Row, schema: Schema) -> Any:
        return row[schema.index_of(self.attribute)]

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return False
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


class Equals(AttributePredicate):
    """``attribute = value``; the workhorse predicate of the paper."""

    __slots__ = ("value",)

    def __init__(self, attribute: str, value: Any):
        super().__init__(attribute)
        if value is NULL or value is None:
            raise QueryError(
                f"cannot build an equality on NULL for {attribute!r}; autonomous "
                "sources do not support binding NULL (use possible-answer retrieval)"
            )
        self.value = value

    def matches(self, row: Row, schema: Schema) -> bool:
        value = self._value_of(row, schema)
        return not is_null(value) and value == self.value

    def _key(self) -> tuple:
        return (self.attribute, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}={self.value!r}"


class NotEquals(AttributePredicate):
    """``attribute != value`` (NULL never certainly satisfies it)."""

    __slots__ = ("value",)

    def __init__(self, attribute: str, value: Any):
        super().__init__(attribute)
        self.value = value

    def matches(self, row: Row, schema: Schema) -> bool:
        value = self._value_of(row, schema)
        return not is_null(value) and value != self.value

    def _key(self) -> tuple:
        return (self.attribute, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}!={self.value!r}"


class Between(AttributePredicate):
    """``attribute BETWEEN low AND high`` (inclusive on both ends)."""

    __slots__ = ("low", "high")

    def __init__(self, attribute: str, low: Any, high: Any):
        super().__init__(attribute)
        if low > high:
            raise QueryError(f"between bounds reversed for {attribute!r}: {low!r} > {high!r}")
        self.low = low
        self.high = high

    def matches(self, row: Row, schema: Schema) -> bool:
        value = self._value_of(row, schema)
        if is_null(value):
            return False
        try:
            return self.low <= value <= self.high
        except TypeError:
            return False

    def _key(self) -> tuple:
        return (self.attribute, self.low, self.high)

    def __repr__(self) -> str:
        return f"{self.attribute} between {self.low!r} and {self.high!r}"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Comparison(AttributePredicate):
    """``attribute <op> value`` for ``<``, ``<=``, ``>``, ``>=``."""

    __slots__ = ("op", "value")

    def __init__(self, attribute: str, op: str, value: Any):
        super().__init__(attribute)
        if op not in _COMPARATORS:
            raise QueryError(f"unsupported comparison operator {op!r}")
        self.op = op
        self.value = value

    def matches(self, row: Row, schema: Schema) -> bool:
        value = self._value_of(row, schema)
        if is_null(value):
            return False
        try:
            return _COMPARATORS[self.op](value, self.value)
        except TypeError:
            return False

    def _key(self) -> tuple:
        return (self.attribute, self.op, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}{self.op}{self.value!r}"


class OneOf(AttributePredicate):
    """``attribute IN (values)``; used by workload generators."""

    __slots__ = ("values",)

    def __init__(self, attribute: str, values: Iterable[Any]):
        super().__init__(attribute)
        self.values = frozenset(values)
        if not self.values:
            raise QueryError(f"OneOf on {attribute!r} requires at least one value")
        if any(value is NULL or value is None for value in self.values):
            raise QueryError(f"OneOf on {attribute!r} cannot include NULL")

    def matches(self, row: Row, schema: Schema) -> bool:
        value = self._value_of(row, schema)
        return not is_null(value) and value in self.values

    def _key(self) -> tuple:
        return (self.attribute, self.values)

    def __repr__(self) -> str:
        rendered = ", ".join(sorted(map(repr, self.values)))
        return f"{self.attribute} in ({rendered})"


class And(Predicate):
    """Conjunction of predicates; nested conjunctions are flattened."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Predicate]):
        flattened: list[Predicate] = []
        seen: set[Predicate] = set()
        for part in parts:
            for conjunct in (part.parts if isinstance(part, And) else (part,)):
                # Conjunction is idempotent: drop exact duplicates (keeps
                # rewritten queries readable when a determining attribute is
                # also an original constraint).
                if conjunct in seen:
                    continue
                seen.add(conjunct)
                flattened.append(conjunct)
        if not flattened:
            raise QueryError("a conjunction requires at least one predicate")
        self.parts = tuple(flattened)

    def attributes(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for part in self.parts:
            for name in part.attributes():
                seen.setdefault(name)
        return tuple(seen.keys())

    def matches(self, row: Row, schema: Schema) -> bool:
        return all(part.matches(row, schema) for part in self.parts)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("And", self.parts))

    def __repr__(self) -> str:
        return " AND ".join(map(repr, self.parts))


def conjuncts_of(predicate: Predicate) -> tuple[Predicate, ...]:
    """The top-level conjuncts of *predicate* (itself if not a conjunction)."""
    if isinstance(predicate, And):
        return predicate.parts
    return (predicate,)
