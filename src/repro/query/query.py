"""Query objects understood by the QPIAD mediator.

Three query classes mirror Section 4 of the paper:

* :class:`SelectionQuery` — conjunctive selections (Sections 4.1–4.3),
* :class:`AggregateQuery` — Sum/Count/Avg/Min/Max over a selection (4.4),
* :class:`JoinQuery` — a two-way equi-join of selections (4.5).

Queries are immutable values; the rewriting machinery produces new queries
from old ones via :meth:`SelectionQuery.replacing` / :meth:`SelectionQuery.and_also`.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Iterable, Sequence

from repro.errors import QueryError
from repro.query.predicates import And, Equals, Predicate, conjuncts_of

__all__ = ["SelectionQuery", "AggregateFunction", "AggregateQuery", "JoinQuery"]


class SelectionQuery:
    """A conjunctive selection over a single relation.

    Parameters
    ----------
    predicate:
        Any :class:`~repro.query.predicates.Predicate`; conjunctions are
        flattened.
    relation:
        Optional logical name of the target relation/source.  The mediator
        uses it to route join sub-queries; for single-source processing it
        may stay ``None``.

    Examples
    --------
    >>> query = SelectionQuery.equals("body_style", "Convt")
    >>> query.constrained_attributes
    ('body_style',)
    """

    __slots__ = ("predicate", "relation")

    def __init__(self, predicate: Predicate, relation: str | None = None):
        self.predicate = predicate
        self.relation = relation

    # -- constructors ---------------------------------------------------

    @classmethod
    def equals(cls, attribute: str, value: Any, relation: str | None = None) -> "SelectionQuery":
        """Shorthand for a single-attribute equality query."""
        return cls(Equals(attribute, value), relation)

    @classmethod
    def conjunction(
        cls, predicates: Iterable[Predicate], relation: str | None = None
    ) -> "SelectionQuery":
        """A query conjoining *predicates*."""
        return cls(And(list(predicates)), relation)

    # -- inspection -----------------------------------------------------

    @property
    def conjuncts(self) -> tuple[Predicate, ...]:
        return conjuncts_of(self.predicate)

    @property
    def constrained_attributes(self) -> tuple[str, ...]:
        return self.predicate.attributes()

    def conjuncts_on(self, attribute: str) -> tuple[Predicate, ...]:
        """All conjuncts constraining *attribute*."""
        return tuple(c for c in self.conjuncts if attribute in c.attributes())

    def equality_value(self, attribute: str) -> Any:
        """The value bound by an equality conjunct on *attribute*.

        Raises :class:`QueryError` when the attribute is not equality-bound,
        which the aggregate/rewriting code treats as "cannot predict".
        """
        for conjunct in self.conjuncts:
            if isinstance(conjunct, Equals) and conjunct.attribute == attribute:
                return conjunct.value
        raise QueryError(f"query has no equality conjunct on {attribute!r}: {self!r}")

    # -- derivation (used by rewriting) ----------------------------------

    def replacing(
        self, attribute: str, replacements: Sequence[Predicate]
    ) -> "SelectionQuery":
        """Drop every conjunct on *attribute* and conjoin *replacements*.

        This is the core move of QPIAD rewriting (Step 2a): remove the
        constraint on the attribute whose NULLs we want to retrieve and
        constrain its determining set instead.
        """
        kept = [c for c in self.conjuncts if attribute not in c.attributes()]
        merged = list(replacements) + kept
        if not merged:
            raise QueryError(
                f"replacing {attribute!r} with nothing would produce an empty query"
            )
        return SelectionQuery(And(merged), self.relation)

    def and_also(self, predicates: Sequence[Predicate]) -> "SelectionQuery":
        """Conjoin extra *predicates* onto this query."""
        if not predicates:
            return self
        return SelectionQuery(And(list(self.conjuncts) + list(predicates)), self.relation)

    def for_relation(self, relation: str | None) -> "SelectionQuery":
        return SelectionQuery(self.predicate, relation)

    # -- value semantics --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SelectionQuery):
            return NotImplemented
        return (
            frozenset(self.conjuncts) == frozenset(other.conjuncts)
            and self.relation == other.relation
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.conjuncts), self.relation))

    def __repr__(self) -> str:
        target = f"{self.relation}: " if self.relation else ""
        return f"σ[{target}{self.predicate!r}]"


class AggregateFunction(Enum):
    """Aggregate functions supported by Section 4.4."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"

    def compute(self, values: Sequence[Any]) -> float | None:
        """Apply the function to non-NULL *values* (already filtered)."""
        if self is AggregateFunction.COUNT:
            return float(len(values))
        if not values:
            return None
        if self is AggregateFunction.SUM:
            return float(sum(values))
        if self is AggregateFunction.AVG:
            return float(sum(values)) / len(values)
        if self is AggregateFunction.MIN:
            return float(min(values))
        return float(max(values))


class AggregateQuery:
    """``function(attribute)`` over the answers of a selection query.

    For ``COUNT`` the attribute may be ``"*"``; for every other function it
    must name a numeric attribute.
    """

    __slots__ = ("selection", "function", "attribute")

    def __init__(
        self,
        selection: SelectionQuery,
        function: AggregateFunction,
        attribute: str = "*",
    ):
        if function is not AggregateFunction.COUNT and attribute == "*":
            raise QueryError(f"{function.value}(*) is not defined; name an attribute")
        self.selection = selection
        self.function = function
        self.attribute = attribute

    def __repr__(self) -> str:
        return f"{self.function.value}({self.attribute}) over {self.selection!r}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateQuery):
            return NotImplemented
        return (
            self.selection == other.selection
            and self.function == other.function
            and self.attribute == other.attribute
        )

    def __hash__(self) -> int:
        return hash((self.selection, self.function, self.attribute))


class JoinQuery:
    """A two-way equi-join between selections over two relations.

    ``left`` and ``right`` each carry their own conjunctive constraints; the
    join condition is ``left.join_attribute = right.join_attribute``.  The
    mediator decomposes this into per-source query pairs (Section 4.5).
    """

    __slots__ = ("left", "right", "left_join_attribute", "right_join_attribute")

    def __init__(
        self,
        left: SelectionQuery,
        right: SelectionQuery,
        left_join_attribute: str,
        right_join_attribute: str | None = None,
    ):
        self.left = left
        self.right = right
        self.left_join_attribute = left_join_attribute
        self.right_join_attribute = right_join_attribute or left_join_attribute

    def __repr__(self) -> str:
        return (
            f"{self.left!r} ⋈[{self.left_join_attribute}="
            f"{self.right_join_attribute}] {self.right!r}"
        )
