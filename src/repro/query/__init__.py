"""Query model and NULL-aware executor.

Exports the predicate AST, the three query classes (selection, aggregate,
join) and evaluation helpers distinguishing certain from possible answers.
"""

from repro.query.executor import (
    certain_answers,
    certain_count,
    certain_or_possible,
    evaluate_aggregate,
    natural_join,
    possible_answers,
)
from repro.query.possible_worlds import (
    active_domains,
    aggregate_bounds,
    certain_answers_by_enumeration,
    completions_of,
    is_certain_answer,
    is_possible_answer,
    possible_answers_by_enumeration,
    witness_domains,
)
from repro.query.predicates import (
    And,
    AttributePredicate,
    Between,
    Comparison,
    Equals,
    NotEquals,
    OneOf,
    Predicate,
    conjuncts_of,
)
from repro.query.query import AggregateFunction, AggregateQuery, JoinQuery, SelectionQuery
from repro.query.sqlparse import parse_selection

__all__ = [
    "Predicate",
    "AttributePredicate",
    "Equals",
    "NotEquals",
    "Between",
    "Comparison",
    "OneOf",
    "And",
    "conjuncts_of",
    "SelectionQuery",
    "AggregateFunction",
    "AggregateQuery",
    "JoinQuery",
    "certain_answers",
    "certain_count",
    "possible_answers",
    "certain_or_possible",
    "evaluate_aggregate",
    "natural_join",
    "active_domains",
    "witness_domains",
    "completions_of",
    "is_certain_answer",
    "is_possible_answer",
    "certain_answers_by_enumeration",
    "possible_answers_by_enumeration",
    "aggregate_bounds",
    "parse_selection",
]
