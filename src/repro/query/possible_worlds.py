"""Possible-worlds semantics for incomplete relations (related work, §2).

The classical treatment of incompleteness (Imieliński & Lipski; Codd
tables) views an incomplete relation as the set of *all its completions*:
every NULL independently replaced by a domain value.  A tuple is a

* **certain answer** when it satisfies the query in *every* completion, and
* **possible answer** when it satisfies the query in *some* completion.

QPIAD's Definition 2 is the pragmatic specialization of this semantics to
conjunctive selections.  This module implements the semantics *directly* —
by quantifying over per-attribute completions — so the specialized executor
(:mod:`repro.query.executor`) can be validated against first principles.
Tests use the equivalences:

* ``certain_answers(q, r) == [t | certain_in_all_worlds(t, q)]``
* ``certain_or_possible(q, r) == [t | possible_in_some_world(t, q)]``

Domains are taken from the relation's own active domain (per attribute),
the standard closed-world choice for finite enumeration.
"""

from __future__ import annotations

# First-principles semantics used to *validate* the executor; it must
# quantify over relations directly and never runs inside the mediator path.
# qpiadlint: disable-file=raw-relation-access

from itertools import product
from typing import Iterator, Sequence

from repro.errors import QpiadError
from repro.query.query import AggregateQuery, SelectionQuery
from repro.relational.relation import Relation, Row
from repro.relational.values import is_null

__all__ = [
    "active_domains",
    "witness_domains",
    "completions_of",
    "is_certain_answer",
    "is_possible_answer",
    "certain_answers_by_enumeration",
    "aggregate_bounds",
    "possible_answers_by_enumeration",
]

_MAX_COMPLETIONS = 100_000


def active_domains(relation: Relation) -> dict[str, list]:
    """Per-attribute active domains (distinct non-NULL values, in order)."""
    return {
        name: relation.distinct_values(name) for name in relation.schema.names
    }


class _FreshValue:
    """An open-world witness: a value distinct from every constant.

    Classical incompleteness semantics quantifies over *all* domain values,
    not just those observed.  For deciding certain/possible answers of
    conjunctive selections it suffices to add, per attribute, the constants
    mentioned in the query plus one fresh value unequal to everything —
    the standard small-model argument.
    """

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fresh:{self.label}>"


def witness_domains(relation: Relation, query: SelectionQuery) -> dict[str, list]:
    """Active domains augmented with query constants and a fresh witness.

    With these domains, quantification over completions decides the
    *open-world* certain/possible status of a tuple for conjunctive
    selection queries exactly.
    """
    from repro.query.predicates import Between, Comparison, Equals, NotEquals, OneOf

    domains = active_domains(relation)
    for name in relation.schema.names:
        extra: list = []
        for conjunct in query.conjuncts_on(name):
            if isinstance(conjunct, Equals) or isinstance(conjunct, NotEquals):
                extra.append(conjunct.value)
            elif isinstance(conjunct, OneOf):
                extra.extend(conjunct.values)
            elif isinstance(conjunct, Between):
                extra.extend([conjunct.low, conjunct.high])
            elif isinstance(conjunct, Comparison):
                extra.append(conjunct.value)
                if isinstance(conjunct.value, (int, float)):
                    # Witnesses strictly beyond the bound, so strict
                    # comparisons have a satisfying completion too.
                    extra.extend([conjunct.value - 1, conjunct.value + 1])
        merged = list(domains.get(name, []))
        for value in extra:
            if value not in merged:
                merged.append(value)
        merged.append(_FreshValue(name))
        domains[name] = merged
    return domains


def completions_of(
    row: Row, relation: Relation, domains: "dict[str, list] | None" = None
) -> Iterator[Row]:
    """Every completion of *row* over the (active) domains — ``C(t̂)`` of
    Definition 1.

    A complete row yields exactly itself.  Raises when the completion space
    exceeds a safety bound; enumeration is a validation tool, not an
    execution strategy.
    """
    domains = domains if domains is not None else active_domains(relation)
    names = relation.schema.names
    choices: list[Sequence] = []
    size = 1
    for name, value in zip(names, row):
        if is_null(value):
            domain = domains.get(name) or []
            if not domain:
                return  # a NULL with an empty domain has no completion
            choices.append(domain)
            size *= len(domain)
        else:
            choices.append((value,))
    if size > _MAX_COMPLETIONS:
        raise QpiadError(
            f"row has {size} completions, beyond the enumeration bound "
            f"{_MAX_COMPLETIONS}"
        )
    for combination in product(*choices):
        yield tuple(combination)


def is_certain_answer(
    row: Row,
    query: SelectionQuery,
    relation: Relation,
    domains: "dict[str, list] | None" = None,
) -> bool:
    """True iff *row* satisfies *query* in every completion."""
    schema = relation.schema
    completions = list(completions_of(row, relation, domains))
    if not completions:
        return False
    return all(query.predicate.matches(world, schema) for world in completions)


def is_possible_answer(
    row: Row,
    query: SelectionQuery,
    relation: Relation,
    domains: "dict[str, list] | None" = None,
) -> bool:
    """True iff *row* satisfies *query* in at least one completion."""
    schema = relation.schema
    return any(
        query.predicate.matches(world, schema)
        for world in completions_of(row, relation, domains)
    )


def aggregate_bounds(aggregate: "AggregateQuery", relation: Relation) -> tuple[float, float]:
    """Tight COUNT/SUM bounds over all completions of *relation*.

    The possible-worlds view of aggregation: every completion of the
    incomplete relation yields one aggregate value; the query's answer is
    the interval they span.  For conjunctive selections this is computable
    without enumeration:

    * **COUNT(*)** — low counts only certain answers; high adds every
      possible answer (each has some completion satisfying the query).
    * **SUM(a)** — low takes certain answers only, scoring a NULL
      aggregated cell at the active domain's minimum; high adds possible
      answers and scores NULL cells at the domain maximum.  (Assumes, as
      usual for bounds over an active domain, that completions draw from
      observed values.)

    QPIAD's prediction-based point estimate (Section 4.4) must always land
    inside this envelope — the property tests assert exactly that.
    """
    from repro.query.executor import certain_answers as _certain
    from repro.query.executor import possible_answers as _possible
    from repro.query.query import AggregateFunction

    function = aggregate.function
    if function not in (AggregateFunction.COUNT, AggregateFunction.SUM):
        raise QpiadError(
            f"bounds are defined for COUNT and SUM, not {function.value}"
        )
    certain = _certain(aggregate.selection, relation)
    possible = _possible(aggregate.selection, relation, max_nulls=None)

    if function is AggregateFunction.COUNT:
        return float(len(certain)), float(len(certain) + len(possible))

    attribute = aggregate.attribute
    values = [v for v in relation.column(attribute) if not is_null(v)]
    domain_low = float(min(values)) if values else 0.0
    domain_high = float(max(values)) if values else 0.0

    index = relation.schema.index_of(attribute)
    low = high = 0.0
    # Certain answers are in every world; a NULL aggregated cell spans the
    # active domain.
    for row in certain:
        value = row[index]
        low += domain_low if is_null(value) else float(value)
        high += domain_high if is_null(value) else float(value)
    # A possible answer appears only in some worlds (its NULL constrained
    # attribute may complete to a non-matching value), so each contributes
    # to the bound only in its favourable direction.
    for row in possible:
        value = row[index]
        low += min(0.0, domain_low if is_null(value) else float(value))
        high += max(0.0, domain_high if is_null(value) else float(value))
    return low, high


def certain_answers_by_enumeration(
    query: SelectionQuery, relation: Relation
) -> Relation:
    """Certain answers computed from first principles (for validation)."""
    domains = witness_domains(relation, query)
    rows = [
        row for row in relation if is_certain_answer(row, query, relation, domains)
    ]
    return Relation(relation.schema, rows)


def possible_answers_by_enumeration(
    query: SelectionQuery, relation: Relation
) -> Relation:
    """Certain-or-possible answers from first principles (for validation)."""
    domains = witness_domains(relation, query)
    rows = [
        row for row in relation if is_possible_answer(row, query, relation, domains)
    ]
    return Relation(relation.schema, rows)
