"""Interactive QPIAD shell — the analogue of the paper's live demo (§6.1).

The paper's prototype exposed a web form that returned ranked possible
answers with confidences and could "explain its relevance assessment by
providing snippets of its reasoning" (the AFD used).  This module provides
the same experience at a terminal:

    $ qpiad shell cars.csv
    qpiad> query body_style=Convt
    qpiad> explain 2
    qpiad> afds body_style
    qpiad> relax make=Porsche price=6000..9000
    qpiad> set alpha 1.0

Built on :mod:`cmd` so it is scriptable and unit-testable (commands are
plain methods; output goes through ``self.stdout``).
"""

from __future__ import annotations

import cmd
from pathlib import Path

from repro.core.qpiad import QpiadConfig, QpiadMediator
from repro.core.relaxation import QueryRelaxer
from repro.core.results import QueryResult
from repro.errors import QpiadError
from repro.mining.knowledge import KnowledgeBase
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation
from repro.sources.autonomous import AutonomousSource
from repro.sources.capabilities import SourceCapabilities

__all__ = ["QpiadShell"]


class QpiadShell(cmd.Cmd):
    """One interactive session against one database."""

    intro = (
        "QPIAD interactive shell — type 'help' for commands, 'quit' to leave."
    )
    prompt = "qpiad> "

    def __init__(
        self,
        relation: Relation,
        knowledge: KnowledgeBase,
        source_name: str = "database",
        **cmd_kwargs,
    ):
        super().__init__(**cmd_kwargs)
        self.relation = relation
        self.knowledge = knowledge
        self.source = AutonomousSource(
            source_name, relation, SourceCapabilities.web_form()
        )
        self.alpha = 0.0
        self.k = 10
        self.last_result: QueryResult | None = None

    # -- helpers ---------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.stdout.write(text + "\n")

    def _parse_query(self, line: str) -> SelectionQuery:
        from repro.cli import _parse_where

        specs = line.split()
        if not specs:
            raise QpiadError("expected one or more ATTR=VALUE terms")
        return SelectionQuery.conjunction(
            [_parse_where(spec, self.relation) for spec in specs]
        )

    # -- commands ---------------------------------------------------------

    def do_query(self, line: str) -> None:
        """query ATTR=VALUE [ATTR=LOW..HIGH ...] — mediate a selection query."""
        try:
            query = self._parse_query(line)
            mediator = QpiadMediator(
                self.source,
                self.knowledge,
                QpiadConfig(alpha=self.alpha, k=self.k),
            )
            result = mediator.query(query)
        except QpiadError as exc:
            self._emit(f"error: {exc}")
            return
        self.last_result = result
        self._emit(f"{len(result.certain)} certain answers; first 3:")
        for row in result.certain.rows[:3]:
            self._emit(f"  {row}")
        self._emit(f"{len(result.ranked)} ranked possible answers; top 5:")
        for position, answer in enumerate(result.top(5), start=1):
            self._emit(f"  [{position}] conf={answer.confidence:.3f}  {answer.row}")
        self._emit(
            f"cost: {result.stats.queries_issued} queries, "
            f"{result.stats.tuples_retrieved} tuples"
        )

    def do_sql(self, line: str) -> None:
        """sql CONDITION — mediate a SQL-style query, e.g.
        sql make = 'Honda' AND price BETWEEN 15000 AND 20000"""
        from repro.query.sqlparse import parse_selection

        try:
            query = parse_selection(line)
        except QpiadError as exc:
            self._emit(f"error: {exc}")
            return
        self.do_query_object(query)

    def do_query_object(self, query: SelectionQuery) -> None:
        """Shared retrieval path for `query` and `sql`."""
        try:
            mediator = QpiadMediator(
                self.source,
                self.knowledge,
                QpiadConfig(alpha=self.alpha, k=self.k),
            )
            result = mediator.query(query)
        except QpiadError as exc:
            self._emit(f"error: {exc}")
            return
        self.last_result = result
        self._emit(f"{len(result.certain)} certain answers; first 3:")
        for row in result.certain.rows[:3]:
            self._emit(f"  {row}")
        self._emit(f"{len(result.ranked)} ranked possible answers; top 5:")
        for position, answer in enumerate(result.top(5), start=1):
            self._emit(f"  [{position}] conf={answer.confidence:.3f}  {answer.row}")

    def do_explain(self, line: str) -> None:
        """explain N — justify the Nth ranked answer of the last query."""
        if self.last_result is None or not self.last_result.ranked:
            self._emit("no ranked answers yet; run a query first")
            return
        try:
            position = int(line.strip() or "1")
            answer = self.last_result.ranked[position - 1]
        except (ValueError, IndexError):
            self._emit(
                f"expected a rank between 1 and {len(self.last_result.ranked)}"
            )
            return
        self._emit(answer.explain())
        self._emit(f"retrieved by: {answer.retrieved_by}")

    def do_afds(self, line: str) -> None:
        """afds [ATTRIBUTE] — show mined AFDs (optionally for one attribute)."""
        attribute = line.strip() or None
        afds = (
            self.knowledge.afds_for(attribute)
            if attribute
            else list(self.knowledge.afds)
        )
        if not afds:
            self._emit("no AFDs" + (f" for {attribute!r}" if attribute else ""))
            return
        for afd in afds[:15]:
            self._emit(f"  {afd}")

    def do_relax(self, line: str) -> None:
        """relax ATTR=VALUE ATTR=VALUE ... — relax an over-constrained query."""
        try:
            query = self._parse_query(line)
            relaxer = QueryRelaxer(self.source, self.knowledge)
            answers = relaxer.query(query, target_count=5)
        except QpiadError as exc:
            self._emit(f"error: {exc}")
            return
        for answer in answers[:5]:
            violated = ", ".join(answer.violated) or "-"
            self._emit(f"  sim={answer.similarity:.2f} violates:{violated}  {answer.row}")

    def do_set(self, line: str) -> None:
        """set alpha|k VALUE — tune the F-measure weight or query budget."""
        parts = line.split()
        if len(parts) != 2 or parts[0] not in ("alpha", "k"):
            self._emit("usage: set alpha|k VALUE")
            return
        try:
            if parts[0] == "alpha":
                value = float(parts[1])
                if value < 0:
                    raise ValueError
                self.alpha = value
            else:
                self.k = int(parts[1])
        except ValueError:
            self._emit(f"invalid value {parts[1]!r}")
            return
        self._emit(f"{parts[0]} = {parts[1]}")

    def do_stats(self, line: str) -> None:
        """stats — incompleteness statistics of the database."""
        from repro.evaluation.stats import incompleteness_report

        report = incompleteness_report(self.source.name, self.relation)
        self._emit(f"tuples: {report.total_tuples}")
        self._emit(f"incomplete tuples: {report.incomplete_tuples_pct:.2f}%")
        for name, pct in sorted(
            report.attribute_null_pct.items(), key=lambda kv: -kv[1]
        ):
            if pct > 0:
                self._emit(f"  NULL {name}: {pct:.2f}%")

    def do_quit(self, line: str) -> bool:
        """quit — leave the shell."""
        return True

    do_exit = do_quit
    do_EOF = do_quit

    def emptyline(self) -> None:  # do not repeat the last command on Enter
        pass

    def default(self, line: str) -> None:
        self._emit(f"unknown command {line.split()[0]!r}; try 'help'")


def run_shell(data_path: "str | Path", kb_path: "str | Path | None" = None) -> int:
    """Entry point used by ``qpiad shell``."""
    from repro.mining.persistence import load_knowledge
    from repro.relational.csvio import read_csv

    relation = read_csv(data_path)
    if kb_path:
        knowledge = load_knowledge(kb_path)
    else:
        knowledge = KnowledgeBase(
            relation.take(max(200, len(relation) // 10)),
            database_size=len(relation),
        )
    QpiadShell(relation, knowledge, source_name=Path(data_path).name).cmdloop()
    return 0
