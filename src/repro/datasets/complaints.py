"""Synthetic vehicle-complaint records (NHTSA ODI flavour, Section 6.2).

The paper's third dataset is a ~200k-tuple consumer-complaints database used
for join experiments against Cars (joined on ``Model``).  The generator
shares the ``Model`` vocabulary with :mod:`repro.datasets.cars` and plants:

* ``detailed_component → general_component`` (an exact FD),
* model-specific failure profiles — each model has two characteristic
  general components that dominate its complaints (an AFD
  ``model ⇝ general_component`` of moderate confidence),
* ``car_type`` follows the model's primary body style (SUV models yield
  ``Truck/SUV`` complaints etc.).
"""

from __future__ import annotations

import random

from repro.datasets.vocab import (
    CAR_CATALOG,
    DETAILED_COMPONENTS,
    GENERAL_COMPONENTS,
    MODEL_TO_MAKE,
)
from repro.errors import QpiadError
from repro.relational.relation import Relation
from repro.relational.schema import AttributeType, Schema

__all__ = ["COMPLAINTS_SCHEMA", "generate_complaints"]

COMPLAINTS_SCHEMA = Schema.of(
    "model",
    ("year", AttributeType.NUMERIC),
    "crash",
    "fire",
    "general_component",
    "detailed_component",
    "country",
    "ownership",
    "car_type",
    "market",
)

_COUNTRIES = ("USA", "Canada", "Mexico")
_OWNERSHIP = ("Consumer", "Fleet", "Dealer")
_MARKETS = ("Domestic", "Import")
_YEARS = tuple(range(1998, 2008))


def _failure_profile(model: str) -> tuple[str, str]:
    """Two characteristic general components per model, chosen deterministically.

    Uses a content-based hash (not ``hash()``, which is randomized per
    process) so profiles are stable across runs.
    """
    anchor = sum(model.encode("utf-8")) % len(GENERAL_COMPONENTS)
    return (
        GENERAL_COMPONENTS[anchor],
        GENERAL_COMPONENTS[(anchor + 2) % len(GENERAL_COMPONENTS)],
    )


_PROFILE = {model: _failure_profile(model) for model in MODEL_TO_MAKE}


def generate_complaints(size: int, seed: int = 23, fidelity: float = 0.8) -> Relation:
    """Generate *size* complete complaint tuples.

    ``fidelity`` controls how strongly each model's complaints concentrate on
    its characteristic components.
    """
    if size <= 0:
        raise QpiadError(f"dataset size must be positive, got {size}")
    if not 0.0 < fidelity <= 1.0:
        raise QpiadError(f"fidelity must be in (0, 1], got {fidelity}")
    rng = random.Random(seed)
    models = list(MODEL_TO_MAKE)

    rows = []
    for __ in range(size):
        model = rng.choice(models)
        make = MODEL_TO_MAKE[model]
        primary_style, __price = CAR_CATALOG[make][model]
        year = rng.choice(_YEARS)

        if rng.random() < fidelity:
            general = rng.choices(_PROFILE[model], weights=(2.5, 1.0), k=1)[0]
        else:
            general = rng.choice(GENERAL_COMPONENTS)
        detailed = rng.choice(DETAILED_COMPONENTS[general])

        crash = "Yes" if rng.random() < 0.08 else "No"
        fire = "Yes" if rng.random() < 0.03 else "No"
        country = rng.choices(_COUNTRIES, weights=(10, 1, 0.5), k=1)[0]
        ownership = rng.choices(_OWNERSHIP, weights=(8, 1, 0.5), k=1)[0]
        car_type = "Truck/SUV" if primary_style in ("SUV", "Truck", "Minivan") else "Passenger"
        market = "Domestic" if make in ("Ford", "Jeep", "Chevrolet") else "Import"

        rows.append(
            (model, year, crash, fire, general, detailed, country, ownership, car_type, market)
        )
    return Relation(COMPLAINTS_SCHEMA, rows)
