"""Google-Base-style listings with user-defined, redundant attributes.

The paper's fourth incompleteness cause: platforms where sellers define
their own attribute names accumulate redundant columns (``make`` vs
``manufacturer``), and "a tuple that gives a value for Make is unlikely to
give a value for Manufacturer and vice versa".  This generator reproduces
that pathology on top of the Cars vocabulary so the alignment machinery
(:mod:`repro.sources.alignment`) has something faithful to chew on.
"""

from __future__ import annotations

import random

from repro.datasets.vocab import CAR_CATALOG, MODEL_TO_MAKE
from repro.errors import QpiadError
from repro.relational.relation import Relation
from repro.relational.schema import AttributeType, Schema
from repro.relational.values import NULL

__all__ = ["GOOGLEBASE_SCHEMA", "generate_googlebase_listings"]

GOOGLEBASE_SCHEMA = Schema.of(
    "make",
    "manufacturer",   # redundant with make
    "model",
    ("year", AttributeType.NUMERIC),
    ("price", AttributeType.NUMERIC),
    "body_style",
    "style",          # redundant with body_style
)


def generate_googlebase_listings(
    size: int,
    seed: int = 31,
    fill_rate: float = 0.9,
    make_split: float = 0.55,
) -> Relation:
    """Generate *size* listings with split redundant attributes.

    Each seller fills either ``make`` or ``manufacturer`` (never both),
    choosing ``make`` with probability *make_split*; likewise for
    ``body_style`` vs ``style``.  Independently, each of the two logical
    values is present at all with probability *fill_rate* — so the relation
    carries both redundancy-driven and plain missing values.
    """
    if size <= 0:
        raise QpiadError(f"dataset size must be positive, got {size}")
    if not 0.0 < fill_rate <= 1.0:
        raise QpiadError(f"fill_rate must be in (0, 1], got {fill_rate}")
    rng = random.Random(seed)
    models = list(MODEL_TO_MAKE)

    rows = []
    for __ in range(size):
        model = rng.choice(models)
        make = MODEL_TO_MAKE[model]
        primary_style, base_price = CAR_CATALOG[make][model]
        year = rng.randint(1998, 2007)
        price = int(round(base_price * rng.uniform(0.6, 1.05) / 1000.0) * 1000)

        make_value = manufacturer_value = NULL
        if rng.random() < fill_rate:
            if rng.random() < make_split:
                make_value = make
            else:
                manufacturer_value = make

        body_value = style_value = NULL
        if rng.random() < fill_rate:
            if rng.random() < make_split:
                body_value = primary_style
            else:
                style_value = primary_style

        rows.append(
            (make_value, manufacturer_value, model, year, price, body_value, style_value)
        )
    return Relation(GOOGLEBASE_SCHEMA, rows)
