"""Synthetic census records in the mould of the UCI Adult/Census dataset.

The paper's second experimental dataset is the US Census database (45k
tuples from the UCI repository).  That file is not available offline, so we
generate records with the same flavour of attribute correlations:

* ``relationship`` (the paper's "Family Relation") is strongly determined by
  ``marital_status`` together with the age band — minors are overwhelmingly
  ``Own-child``, married adults are ``Husband``/``Wife`` by ``sex``,
* ``occupation`` correlates with ``education``,
* ``hours_per_week`` correlates with ``workclass`` and age.

This plants the AFD structure QPIAD needs (e.g. ``{marital_status, sex} ⇝
relationship``) without copying any proprietary data.
"""

from __future__ import annotations

import random

from repro.errors import QpiadError
from repro.relational.relation import Relation
from repro.relational.schema import AttributeType, Schema

__all__ = ["CENSUS_SCHEMA", "generate_census"]

CENSUS_SCHEMA = Schema.of(
    ("age", AttributeType.NUMERIC),
    "workclass",
    "education",
    "marital_status",
    "occupation",
    "relationship",
    "race",
    "sex",
    ("hours_per_week", AttributeType.NUMERIC),
    "native_country",
)

_WORKCLASSES = ("Private", "Self-emp", "Federal-gov", "Local-gov", "State-gov", "Unemployed")
_EDUCATIONS = ("HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate", "11th")
_MARITAL = ("Married", "Never-married", "Divorced", "Widowed")
_RACES = ("White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other")
_COUNTRIES = ("United-States", "Mexico", "Philippines", "Germany", "Canada", "India")

# education -> likely occupations (first entry is the mode)
_OCCUPATION_BY_EDUCATION = {
    "HS-grad": ("Craft-repair", "Transport-moving", "Handlers-cleaners"),
    "Some-college": ("Adm-clerical", "Sales", "Craft-repair"),
    "Bachelors": ("Prof-specialty", "Exec-managerial", "Sales"),
    "Masters": ("Exec-managerial", "Prof-specialty", "Adm-clerical"),
    "Doctorate": ("Prof-specialty", "Exec-managerial", "Adm-clerical"),
    "11th": ("Handlers-cleaners", "Other-service", "Farming-fishing"),
}


# Sorted so generation is independent of the process hash seed.
_ALL_OCCUPATIONS = tuple(
    sorted({o for options in _OCCUPATION_BY_EDUCATION.values() for o in options})
)


def _relationship(rng: random.Random, age: int, marital: str, sex: str, fidelity: float) -> str:
    """The planted rule for the paper's "Family Relation" attribute."""
    if rng.random() >= fidelity:
        return rng.choice(
            ("Own-child", "Husband", "Wife", "Not-in-family", "Unmarried", "Other-relative")
        )
    if marital == "Married":
        return "Husband" if sex == "Male" else "Wife"
    if marital == "Never-married":
        # Real census data: the never-married population skews young and
        # overwhelmingly lives as a child of the householder.
        return "Own-child" if age < 30 or rng.random() < 0.5 else "Not-in-family"
    return "Unmarried"


def generate_census(size: int, seed: int = 11, fidelity: float = 0.9) -> Relation:
    """Generate *size* complete census tuples.

    ``fidelity`` is the probability each planted correlation fires (the
    approximate confidence of the resulting AFDs).
    """
    if size <= 0:
        raise QpiadError(f"dataset size must be positive, got {size}")
    if not 0.0 < fidelity <= 1.0:
        raise QpiadError(f"fidelity must be in (0, 1], got {fidelity}")
    rng = random.Random(seed)

    rows = []
    for __ in range(size):
        age = min(90, max(16, int(rng.gauss(38, 14))))
        sex = rng.choice(("Male", "Female"))
        if age < 19:
            marital = "Never-married"
        else:
            marital = rng.choices(_MARITAL, weights=(5, 3, 1.5, 0.5), k=1)[0]
        relationship = _relationship(rng, age, marital, sex, fidelity)

        education = rng.choices(_EDUCATIONS, weights=(5, 4, 3, 1.5, 0.5, 1), k=1)[0]
        occupations = _OCCUPATION_BY_EDUCATION[education]
        if rng.random() < fidelity:
            occupation = rng.choices(occupations, weights=(3, 1.5, 1), k=1)[0]
        else:
            occupation = rng.choice(_ALL_OCCUPATIONS)

        workclass = rng.choices(_WORKCLASSES, weights=(6, 1.5, 0.7, 0.8, 0.6, 0.4), k=1)[0]
        if workclass == "Unemployed":
            hours = 0
        else:
            hours = max(5, min(80, int(rng.gauss(42 if age >= 25 else 28, 9))))
        hours = int(round(hours / 5.0) * 5)

        race = rng.choices(_RACES, weights=(8, 1.2, 0.6, 0.2, 0.3), k=1)[0]
        country = rng.choices(_COUNTRIES, weights=(12, 1, 0.5, 0.4, 0.5, 0.6), k=1)[0]

        rows.append(
            (age, workclass, education, marital, occupation, relationship,
             race, sex, hours, country)
        )
    return Relation(CENSUS_SCHEMA, rows)
