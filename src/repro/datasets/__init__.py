"""Synthetic dataset generators and the GD -> ED incompleteness protocol."""

from repro.datasets.cars import CARS_SCHEMA, generate_cars
from repro.datasets.census import CENSUS_SCHEMA, generate_census
from repro.datasets.complaints import COMPLAINTS_SCHEMA, generate_complaints
from repro.datasets.googlebase import GOOGLEBASE_SCHEMA, generate_googlebase_listings
from repro.datasets.incompleteness import IncompleteDataset, MaskedCell, make_incomplete
from repro.datasets.scale import (
    SCALE_BASE_SIZES,
    SCALE_FACTORS,
    scaled_complete,
    scaled_incomplete,
)
from repro.datasets.vocab import ALL_MODELS, BODY_STYLES, CAR_CATALOG, MODEL_TO_MAKE

__all__ = [
    "CARS_SCHEMA",
    "generate_cars",
    "CENSUS_SCHEMA",
    "generate_census",
    "COMPLAINTS_SCHEMA",
    "generate_complaints",
    "IncompleteDataset",
    "MaskedCell",
    "make_incomplete",
    "GOOGLEBASE_SCHEMA",
    "generate_googlebase_listings",
    "CAR_CATALOG",
    "MODEL_TO_MAKE",
    "ALL_MODELS",
    "BODY_STYLES",
    "SCALE_FACTORS",
    "SCALE_BASE_SIZES",
    "scaled_complete",
    "scaled_incomplete",
]
