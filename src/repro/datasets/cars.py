"""Synthetic used-car listings in the mould of Cars.com (Section 6.2).

The generator plants the correlations the paper mined from the live site:

* ``Model → Make`` holds exactly (an FD),
* ``Model ⇝ Body Style`` holds with configurable confidence (default 0.88 —
  most models ship overwhelmingly in one body style, but an Accord can be a
  Coupe),
* price depends on model and year (newer and premium cars cost more) with
  multiplicative noise, rounded to $500 so it behaves like the discrete
  price points of real listings,
* mileage tracks age, and
* ``certified`` skews towards newer cars.

Every generated tuple is complete; incompleteness is injected separately by
:mod:`repro.datasets.incompleteness`, mirroring the paper's GD → ED protocol.
"""

from __future__ import annotations

import random

from repro.datasets.vocab import BODY_STYLES, CAR_CATALOG, MODEL_TO_MAKE
from repro.errors import QpiadError
from repro.relational.relation import Relation
from repro.relational.schema import AttributeType, Schema

__all__ = ["CARS_SCHEMA", "generate_cars"]

CARS_SCHEMA = Schema.of(
    "make",
    "model",
    ("year", AttributeType.NUMERIC),
    ("price", AttributeType.NUMERIC),
    ("mileage", AttributeType.NUMERIC),
    "body_style",
    "certified",
)

_YEARS = tuple(range(1998, 2008))
_DEPRECIATION_PER_YEAR = 0.085
_REFERENCE_YEAR = 2007


def _alternative_body_styles(primary: str) -> tuple[str, ...]:
    return tuple(style for style in BODY_STYLES if style != primary)


def generate_cars(
    size: int,
    seed: int = 7,
    body_style_fidelity: float = 0.88,
) -> Relation:
    """Generate *size* complete car tuples.

    Parameters
    ----------
    size:
        Number of tuples.
    seed:
        Seed for the dedicated random generator; identical inputs give
        identical relations.
    body_style_fidelity:
        Probability that a car carries its model's primary body style;
        this is (approximately) the confidence of the planted
        ``Model ⇝ Body Style`` AFD.
    """
    if size <= 0:
        raise QpiadError(f"dataset size must be positive, got {size}")
    if not 0.0 < body_style_fidelity <= 1.0:
        raise QpiadError(
            f"body_style_fidelity must be in (0, 1], got {body_style_fidelity}"
        )
    rng = random.Random(seed)
    models = list(MODEL_TO_MAKE)
    # Popularity weights: mainstream sedans dominate real listing sites.
    weights = [3.0 if CAR_CATALOG[MODEL_TO_MAKE[m]][m][0] == "Sedan" else 1.0 for m in models]

    rows = []
    for __ in range(size):
        model = rng.choices(models, weights=weights, k=1)[0]
        make = MODEL_TO_MAKE[model]
        primary_style, base_price = CAR_CATALOG[make][model]
        year = rng.choice(_YEARS)

        if rng.random() < body_style_fidelity:
            body_style = primary_style
        else:
            body_style = rng.choice(_alternative_body_styles(primary_style))

        age = _REFERENCE_YEAR - year
        price = base_price * ((1.0 - _DEPRECIATION_PER_YEAR) ** age)
        price *= rng.uniform(0.9, 1.1)
        # Listings quote coarse price points; $1000 steps keep per-(model,
        # year) price distributions concentrated enough that equality
        # queries like "Price = 20000" have non-trivial answer mass.
        price = int(round(price / 1000.0) * 1000)

        mileage = age * 12000 + rng.randint(-4000, 8000)
        mileage = max(0, int(round(mileage / 1000.0) * 1000))

        certified_probability = 0.65 if age <= 3 else 0.2
        certified = "Yes" if rng.random() < certified_probability else "No"

        rows.append((make, model, year, price, mileage, body_style, certified))
    return Relation(CARS_SCHEMA, rows)
