"""Shared vocabularies for the synthetic datasets.

The generators plant the same kind of schema-level structure the paper mined
from live web databases: an exact FD ``Model → Make``, a high-confidence AFD
``Model ⇝ Body Style``, and looser correlations between year, price and
mileage.  Keeping the vocabulary in one module lets the Cars and Complaints
generators share the ``Model`` domain, which the join experiments need.
"""

from __future__ import annotations

__all__ = [
    "CAR_CATALOG",
    "ALL_MODELS",
    "MODEL_TO_MAKE",
    "BODY_STYLES",
    "GENERAL_COMPONENTS",
    "DETAILED_COMPONENTS",
]

# make -> model -> (primary_body_style, base_price_usd)
CAR_CATALOG: dict[str, dict[str, tuple[str, int]]] = {
    "Honda": {
        "Accord": ("Sedan", 24000),
        "Civic": ("Sedan", 18000),
        "CR-V": ("SUV", 23000),
        "Odyssey": ("Minivan", 27000),
        "S2000": ("Convt", 33000),
    },
    "Toyota": {
        "Camry": ("Sedan", 23000),
        "Corolla": ("Sedan", 16000),
        "4Runner": ("SUV", 29000),
        "Sienna": ("Minivan", 26000),
        "Solara": ("Convt", 27000),
    },
    "BMW": {
        "Z4": ("Convt", 41000),
        "325i": ("Sedan", 31000),
        "530i": ("Sedan", 45000),
        "X5": ("SUV", 43000),
        "M3": ("Coupe", 48000),
    },
    "Audi": {
        "A4": ("Sedan", 28000),
        "A6": ("Sedan", 37000),
        "TT": ("Coupe", 35000),
        "A4 Cabriolet": ("Convt", 36000),
    },
    "Porsche": {
        "Boxster": ("Convt", 45000),
        "911": ("Coupe", 70000),
        "Cayenne": ("SUV", 56000),
    },
    "Ford": {
        "F150": ("Truck", 22000),
        "Mustang": ("Coupe", 21000),
        "Explorer": ("SUV", 26000),
        "Focus": ("Sedan", 14000),
        "Taurus": ("Sedan", 19000),
    },
    "Jeep": {
        "Grand Cherokee": ("SUV", 27000),
        "Wrangler": ("SUV", 19000),
        "Liberty": ("SUV", 21000),
    },
    "Chevrolet": {
        "Corvette": ("Convt", 46000),
        "Impala": ("Sedan", 22000),
        "Malibu": ("Sedan", 18000),
        "Tahoe": ("SUV", 33000),
    },
}

MODEL_TO_MAKE: dict[str, str] = {
    model: make for make, models in CAR_CATALOG.items() for model in models
}

ALL_MODELS: tuple[str, ...] = tuple(MODEL_TO_MAKE)

BODY_STYLES: tuple[str, ...] = (
    "Sedan",
    "Coupe",
    "Convt",
    "SUV",
    "Minivan",
    "Truck",
)

GENERAL_COMPONENTS: tuple[str, ...] = (
    "Engine and Engine Cooling",
    "Electrical System",
    "Brakes",
    "Suspension",
    "Fuel System",
    "Airbags",
    "Steering",
)

# general component -> detailed components (an exact FD the other way around)
DETAILED_COMPONENTS: dict[str, tuple[str, ...]] = {
    "Engine and Engine Cooling": ("Radiator", "Head Gasket", "Timing Belt", "Water Pump"),
    "Electrical System": ("Alternator", "Starter", "Wiring Harness", "Battery Cable"),
    "Brakes": ("Brake Pads", "Brake Rotor", "ABS Module", "Brake Line"),
    "Suspension": ("Control Arm", "Strut", "Ball Joint", "Tie Rod"),
    "Fuel System": ("Fuel Pump", "Fuel Injector", "Fuel Tank", "Fuel Line"),
    "Airbags": ("Driver Airbag", "Passenger Airbag", "Airbag Sensor", "Clock Spring"),
    "Steering": ("Power Steering Pump", "Steering Rack", "Steering Column", "Steering Hose"),
}
