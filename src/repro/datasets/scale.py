"""Seeded scale-factor variants of the experimental datasets.

The columnar data plane is motivated by throughput at realistic sizes (the
paper's Census dataset has ~45k tuples; live autonomous sources are larger
still).  This module grows the Cars and Census generators by fixed scale
factors — 1×, 10×, 100×, 1000× over a small base size — with *derived*
seeds, so every scale factor is reproducible in isolation and different
factors do not share prefixes (a 100× relation is not "the 10× relation
plus more rows"; it is an independent draw, which keeps value distributions
honest at every size).

Incompleteness is injected with the standard GD → ED protocol
(:func:`repro.datasets.incompleteness.make_incomplete`), again with a
derived seed per scale factor.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.datasets.cars import generate_cars
from repro.datasets.census import generate_census
from repro.datasets.incompleteness import IncompleteDataset, make_incomplete
from repro.errors import QpiadError
from repro.relational.relation import Relation

__all__ = [
    "SCALE_FACTORS",
    "SCALE_BASE_SIZES",
    "scaled_complete",
    "scaled_incomplete",
]

#: Supported scale factors for the BENCH_8 sweep.
SCALE_FACTORS = (1, 10, 100, 1000)

#: Rows at scale factor 1; factor f yields ``f * base`` rows.
SCALE_BASE_SIZES: Mapping[str, int] = {"cars": 400, "census": 450}

_GENERATORS: Mapping[str, Callable[[int, int], Relation]] = {
    "cars": lambda size, seed: generate_cars(size, seed=seed),
    "census": lambda size, seed: generate_census(size, seed=seed),
}

_BASE_SEED = {"cars": 7, "census": 11}
_MASK_SEED_BASE = 97


def _validate(dataset: str, factor: int) -> None:
    if dataset not in _GENERATORS:
        raise QpiadError(
            f"unknown dataset {dataset!r}; expected one of {sorted(_GENERATORS)}"
        )
    if factor not in SCALE_FACTORS:
        raise QpiadError(
            f"unsupported scale factor {factor}; expected one of {SCALE_FACTORS}"
        )


def scaled_complete(dataset: str, factor: int) -> Relation:
    """The complete (ground-truth) relation of *dataset* at *factor*.

    Deterministic: the generator seed is derived from the dataset's base
    seed and the factor, so repeated calls — in any order, in any process —
    produce identical relations.
    """
    _validate(dataset, factor)
    size = SCALE_BASE_SIZES[dataset] * factor
    seed = _BASE_SEED[dataset] + factor
    return _GENERATORS[dataset](size, seed)


def scaled_incomplete(
    dataset: str, factor: int, incomplete_fraction: float = 0.10
) -> IncompleteDataset:
    """GD → ED pair of *dataset* at *factor* with seeded masking."""
    complete = scaled_complete(dataset, factor)
    return make_incomplete(
        complete,
        incomplete_fraction=incomplete_fraction,
        seed=_MASK_SEED_BASE + factor,
    )
