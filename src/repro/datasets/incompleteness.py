"""Injecting controlled incompleteness: the paper's GD → ED protocol (§6.2).

Evaluation needs ground truth for missing values, so the paper builds its
experimental datasets in two steps: extract complete tuples (the *ground
truth dataset*, GD), then randomly pick 10% of the tuples and NULL one
randomly chosen attribute in each (the *experimental dataset*, ED).

:class:`IncompleteDataset` keeps GD and ED row-aligned and records exactly
which cells were masked, which is what the precision/recall oracle consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import QpiadError
from repro.relational.relation import Relation, Row
from repro.relational.values import NULL

__all__ = ["MaskedCell", "IncompleteDataset", "make_incomplete"]


@dataclass(frozen=True)
class MaskedCell:
    """One cell that was NULLed out: its row, attribute and true value."""

    row_index: int
    attribute: str
    true_value: object


@dataclass
class IncompleteDataset:
    """A ground-truth relation and its row-aligned incomplete counterpart."""

    complete: Relation
    incomplete: Relation
    masked: tuple[MaskedCell, ...]

    def __post_init__(self) -> None:
        if len(self.complete) != len(self.incomplete):
            raise QpiadError("GD and ED must have the same number of rows")

    def true_value(self, row_index: int, attribute: str) -> object:
        """Ground-truth value of any cell (masked or not)."""
        return self.complete.value(self.complete.rows[row_index], attribute)

    def masked_by_row(self) -> dict[int, MaskedCell]:
        return {cell.row_index: cell for cell in self.masked}

    def masked_on(self, attribute: str) -> list[MaskedCell]:
        """Cells masked on a specific attribute."""
        return [cell for cell in self.masked if cell.attribute == attribute]

    def row_index_of(self, row: Row) -> int:
        """Index of an ED row (identity-free lookup via exact match).

        ED rows are unique only up to duplicates; the first match is
        returned, which is sound for metrics that only need *a* consistent
        ground-truth row for equal tuples.
        """
        try:
            return self._row_lookup[row]
        except AttributeError:
            lookup: dict[Row, int] = {}
            for index, candidate in enumerate(self.incomplete.rows):
                lookup.setdefault(candidate, index)
            self._row_lookup = lookup
            return self._row_lookup[row]


def make_incomplete(
    complete: Relation,
    incomplete_fraction: float = 0.10,
    seed: int = 97,
    maskable_attributes: Sequence[str] | None = None,
    attribute_weights: Mapping[str, float] | None = None,
) -> IncompleteDataset:
    """Apply the paper's masking protocol to a complete relation.

    Parameters
    ----------
    complete:
        The ground-truth relation (all cells present).
    incomplete_fraction:
        Fraction of tuples to make incomplete (paper: 10%, described as
        conservative versus Table 1's live statistics).
    seed:
        Seed of the dedicated random generator.
    maskable_attributes:
        Attributes eligible for masking (default: all).
    attribute_weights:
        Optional relative masking weights per attribute, so experiments can
        skew incompleteness towards e.g. ``body_style`` as observed in
        Table 1.  Attributes absent from the mapping get weight 1.
    """
    if not 0.0 < incomplete_fraction < 1.0:
        raise QpiadError(
            f"incomplete_fraction must be in (0, 1), got {incomplete_fraction}"
        )
    if not len(complete):
        raise QpiadError("cannot inject incompleteness into an empty relation")
    names = list(maskable_attributes or complete.schema.names)
    for name in names:
        complete.schema.index_of(name)  # validate
    weights = [float((attribute_weights or {}).get(name, 1.0)) for name in names]
    if any(weight < 0 for weight in weights) or not any(weights):
        raise QpiadError("attribute weights must be non-negative and not all zero")

    rng = random.Random(seed)
    count = max(1, round(len(complete) * incomplete_fraction))
    chosen = rng.sample(range(len(complete)), min(count, len(complete)))

    rows = [list(row) for row in complete.rows]
    masked: list[MaskedCell] = []
    for row_index in chosen:
        attribute = rng.choices(names, weights=weights, k=1)[0]
        column = complete.schema.index_of(attribute)
        masked.append(MaskedCell(row_index, attribute, rows[row_index][column]))
        rows[row_index][column] = NULL

    incomplete = Relation(complete.schema, [tuple(row) for row in rows])
    return IncompleteDataset(complete=complete, incomplete=incomplete, masked=tuple(masked))
