"""Counters and histograms for the mediator stack.

The registry is name-addressed: the first ``count("cache.hits")`` creates
the counter, later calls find it again, so instrumentation sites never
declare metrics up front.  Histograms keep streaming summaries
(count/total/min/max) plus a bounded ring of the most recent samples —
enough for the latency, throughput, and tail-percentile questions the
exporters and the :class:`~repro.resilience.SourceScheduler` ask, with
O(1) memory per metric whatever the traffic.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Counter", "Histogram", "MetricsRegistry"]

#: How many recent samples a histogram retains for percentile queries.
#: A sliding window (rather than reservoir sampling) keeps the estimate
#: deterministic — no RNG — and naturally tracks drift: a source whose
#: latency regime changes is re-learned within one window.
RECENT_WINDOW = 512


@dataclass
class Counter:
    """A monotonically increasing named total."""

    name: str
    value: float = 0

    def increment(self, amount: float = 1) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Streaming summary of an observed distribution.

    Alongside the O(1) summary fields, a bounded ring of the most recent
    :data:`RECENT_WINDOW` samples supports :meth:`percentile` queries —
    the hedging trigger in the resilience scheduler needs a live p95/p99
    estimate per source, not just the mean.
    """

    name: str
    count: int = 0
    total: float = 0.0
    minimum: "float | None" = None
    maximum: "float | None" = None
    recent: "deque[float]" = field(
        default_factory=lambda: deque(maxlen=RECENT_WINDOW), repr=False
    )

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        self.recent.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> "float | None":
        """The *quantile* (0..1) over the recent-sample window.

        Nearest-rank over a sorted copy of the window; ``None`` when no
        samples were observed yet.  Callers gate on :attr:`count` (e.g.
        ``hedge_min_samples``) before trusting the estimate.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {quantile}")
        ordered = sorted(self.recent)
        if not ordered:
            return None
        rank = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[rank]


class MetricsRegistry:
    """Holds every counter and histogram of one telemetry pipeline.

    Registration and updates are locked so exact counters (the span/issued
    pins in the telemetry tests) survive a concurrent plan executor.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- access ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter(name)
            return found

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(name)
            return found

    def count(self, name: str, amount: float = 1) -> None:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.increment(amount)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            histogram.observe(value)

    def value(self, name: str) -> float:
        """A counter's current value; 0 when it was never touched."""
        found = self._counters.get(name)
        return 0 if found is None else found.value

    def percentile(self, name: str, quantile: float) -> "float | None":
        """A histogram percentile read under the registry lock.

        Sorting the sample window while another thread observes into it
        would race on the deque; taking the lock here gives concurrent
        readers (the scheduler's hedge-delay probe) a consistent view.
        ``None`` when the histogram is absent or empty.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                return None
            return histogram.percentile(quantile)

    @property
    def counters(self) -> tuple[Counter, ...]:
        return tuple(self._counters[name] for name in sorted(self._counters))

    @property
    def histograms(self) -> tuple[Histogram, ...]:
        return tuple(self._histograms[name] for name in sorted(self._histograms))

    # -- lifecycle ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready dict of every metric."""
        return {
            "counters": {
                counter.name: counter.value for counter in self.counters
            },
            "histograms": {
                histogram.name: {
                    "count": histogram.count,
                    "total": histogram.total,
                    "min": histogram.minimum,
                    "max": histogram.maximum,
                    "mean": histogram.mean,
                }
                for histogram in self.histograms
            },
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
