"""Counters and histograms for the mediator stack.

The registry is name-addressed: the first ``count("cache.hits")`` creates
the counter, later calls find it again, so instrumentation sites never
declare metrics up front.  Histograms keep streaming summaries
(count/total/min/max) rather than raw samples — enough for the latency
and throughput questions the exporters answer, with O(1) memory per
metric whatever the traffic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing named total."""

    name: str
    value: float = 0

    def increment(self, amount: float = 1) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Streaming summary of an observed distribution."""

    name: str
    count: int = 0
    total: float = 0.0
    minimum: "float | None" = None
    maximum: "float | None" = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Holds every counter and histogram of one telemetry pipeline.

    Registration and updates are locked so exact counters (the span/issued
    pins in the telemetry tests) survive a concurrent plan executor.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- access ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter(name)
            return found

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(name)
            return found

    def count(self, name: str, amount: float = 1) -> None:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.increment(amount)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            histogram.observe(value)

    def value(self, name: str) -> float:
        """A counter's current value; 0 when it was never touched."""
        found = self._counters.get(name)
        return 0 if found is None else found.value

    @property
    def counters(self) -> tuple[Counter, ...]:
        return tuple(self._counters[name] for name in sorted(self._counters))

    @property
    def histograms(self) -> tuple[Histogram, ...]:
        return tuple(self._histograms[name] for name in sorted(self._histograms))

    # -- lifecycle ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready dict of every metric."""
        return {
            "counters": {
                counter.name: counter.value for counter in self.counters
            },
            "histograms": {
                histogram.name: {
                    "count": histogram.count,
                    "total": histogram.total,
                    "min": histogram.minimum,
                    "max": histogram.maximum,
                    "mean": histogram.mean,
                }
                for histogram in self.histograms
            },
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
