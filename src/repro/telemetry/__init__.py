"""Structured tracing + metrics for the QPIAD mediator stack.

The third leg of the repo's correctness tooling (after ``repro.analysis``
linting and ``repro.faults`` chaos testing): an optional, injectable
observability layer that makes the mediator's cost accounting *visible*.
Every source call in a mediated retrieval becomes a
:class:`~repro.telemetry.Span`; counters and histograms in a
:class:`~repro.telemetry.MetricsRegistry` track queries issued, tuples
retrieved, cache hit rates, breaker transitions and fault events.

Pass a :class:`Telemetry` to ``QpiadMediator``, ``FederatedMediator`` or
any source wrapper (``telemetry=...``); leave it ``None`` (the default)
and every emit site reduces to a single ``None`` check.  See
``docs/observability.md``.
"""

from repro.telemetry.export import (
    render_metrics_text,
    render_telemetry_json,
    render_telemetry_text,
    render_trace_text,
    telemetry_snapshot,
)
from repro.telemetry.metrics import Counter, Histogram, MetricsRegistry
from repro.telemetry.telemetry import Telemetry, maybe_span
from repro.telemetry.tracer import Span, SpanContext, SpanKind, Tracer

__all__ = [
    "SpanKind",
    "Span",
    "SpanContext",
    "Tracer",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "maybe_span",
    "render_trace_text",
    "render_metrics_text",
    "render_telemetry_text",
    "telemetry_snapshot",
    "render_telemetry_json",
]
