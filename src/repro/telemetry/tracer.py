"""Structured tracing of mediated retrievals.

A mediated query is a small distributed plan: one base query, a ranked
batch of rewritten queries, possibly a multi-NULL fetch, each of them a
billable call against a rate-limited autonomous source.  The
:class:`Tracer` records that plan as a tree of :class:`Span` objects —
one span per source call, nested under one retrieval-level root — with
timings taken from an injectable clock so tests and simulations never
depend on wall time.

The tracer is deliberately tiny: spans are plain mutable dataclasses,
parentage comes from a stack of open spans, and nothing is sampled or
dropped.  Export (text trees, JSON) lives in
:mod:`repro.telemetry.export`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["SpanKind", "Span", "SpanContext", "Tracer"]


class SpanKind:
    """String constants classifying what a span measures."""

    RETRIEVAL = "retrieval"  # one whole mediated query (the root)
    PLAN = "plan"  # one planner build (rewrite generation + ranking + gating)
    BASE_QUERY = "base-query"  # the user's original query against the source
    REWRITTEN_QUERY = "rewritten-query"  # one AFD-rewritten probe
    RELAXED_QUERY = "relaxed-query"  # one influence-guided relaxation probe
    MULTI_NULL = "multi-null-fetch"  # the >= 2-NULL counterfactual fetch
    FEDERATION = "federation"  # one federated query (root over sources)
    FEDERATION_SOURCE = "federation-source"  # one source's share of it
    REFRESH = "knowledge-refresh"  # one incremental/full knowledge refresh

    ALL = (
        RETRIEVAL,
        PLAN,
        BASE_QUERY,
        REWRITTEN_QUERY,
        RELAXED_QUERY,
        MULTI_NULL,
        FEDERATION,
        FEDERATION_SOURCE,
        REFRESH,
    )

    # The kinds that correspond to exactly one source call each.
    SOURCE_CALLS = (BASE_QUERY, REWRITTEN_QUERY, RELAXED_QUERY, MULTI_NULL)


@dataclass
class Span:
    """One timed step of a retrieval plan.

    Attributes
    ----------
    span_id / parent_id:
        Tree structure; ``parent_id`` is ``None`` for roots.
    name:
        Human-readable label (usually the query being issued).
    kind:
        A :class:`SpanKind` constant.
    started / ended:
        Clock readings; ``ended`` stays ``None`` while the span is open.
    attributes:
        Free-form key/value payload (tuple counts, confidences, ...).
    status / error:
        ``"ok"`` normally; ``"error"`` plus the message when the spanned
        operation raised.
    """

    span_id: int
    parent_id: "int | None"
    name: str
    kind: str
    started: float
    attributes: dict[str, Any] = field(default_factory=dict)
    ended: "float | None" = None
    status: str = "ok"
    error: str = ""

    @property
    def finished(self) -> bool:
        return self.ended is not None

    @property
    def duration(self) -> float:
        """Seconds between start and finish (0.0 while still open)."""
        return 0.0 if self.ended is None else self.ended - self.started

    @property
    def failed(self) -> bool:
        return self.status == "error"

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes after the span has started."""
        self.attributes.update(attributes)
        return self


class Tracer:
    """Records spans with parentage and timings from an injectable clock.

    Parameters
    ----------
    clock:
        Monotonic time source; tests drive a manual clock, production
        uses ``time.monotonic``.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._spans: list[Span] = []
        self._open: list[int] = []
        self._next_id = 1
        # Concurrent engine threads open/close spans against one tracer;
        # id allocation and the span list must stay consistent.  Parentage
        # (the open-span stack) is best-effort above one thread.
        self._lock = threading.Lock()

    @property
    def spans(self) -> tuple[Span, ...]:
        """Every recorded span, in start order."""
        return tuple(self._spans)

    def roots(self) -> tuple[Span, ...]:
        return tuple(span for span in self._spans if span.parent_id is None)

    def children(self, parent: Span) -> tuple[Span, ...]:
        return tuple(
            span for span in self._spans if span.parent_id == parent.span_id
        )

    def by_kind(self, kind: str) -> tuple[Span, ...]:
        return tuple(span for span in self._spans if span.kind == kind)

    def start(self, name: str, kind: str, **attributes: Any) -> Span:
        """Open a span; it becomes the parent of spans started before its finish."""
        with self._lock:
            span = Span(
                span_id=self._next_id,
                parent_id=self._open[-1] if self._open else None,
                name=name,
                kind=kind,
                started=self._clock(),
                attributes=dict(attributes),
            )
            self._next_id += 1
            self._spans.append(span)
            self._open.append(span.span_id)
        return span

    def finish(self, span: Span, error: "BaseException | str | None" = None) -> Span:
        """Close *span*, recording an error status when one is given."""
        span.ended = self._clock()
        if error is not None:
            span.status = "error"
            span.error = str(error)
        with self._lock:
            if self._open and self._open[-1] == span.span_id:
                self._open.pop()
            elif span.span_id in self._open:  # tolerate out-of-order finishes
                self._open.remove(span.span_id)
        return span

    def span(self, name: str, kind: str, **attributes: Any) -> "SpanContext":
        """Context manager: start on enter, finish (capturing errors) on exit."""
        return SpanContext(self, name, kind, attributes)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._open.clear()
            self._next_id = 1


class SpanContext:
    """``with``-wrapper around one span; exceptions mark it failed and re-raise."""

    __slots__ = ("_tracer", "_name", "_kind", "_attributes", "_on_finish", "span")

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        kind: str,
        attributes: dict[str, Any],
        on_finish: "Callable[[Span], None] | None" = None,
    ):
        self._tracer = tracer
        self._name = name
        self._kind = kind
        self._attributes = attributes
        self._on_finish = on_finish
        self.span: "Span | None" = None

    def __enter__(self) -> Span:
        self.span = self._tracer.start(self._name, self._kind, **self._attributes)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self.span is not None
        self._tracer.finish(self.span, error=exc)
        if self._on_finish is not None:
            self._on_finish(self.span)
        return False
