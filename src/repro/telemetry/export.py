"""Exporters: span trees and metric tables as text or JSON.

Two formats, matching the two consumers:

* **text** — ``qpiad trace`` / ``qpiad query --trace`` print an indented
  span tree (durations, status, key attributes) followed by counter and
  histogram tables, for a human reading one retrieval;
* **JSON** — a stable, ``json``-serialisable snapshot for dashboards,
  diffing chaos runs, and the perf trajectory
  (``benchmarks/bench_perf.py`` embeds one in ``BENCH_3.json``).
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.telemetry import Telemetry
from repro.telemetry.tracer import Span, Tracer

__all__ = [
    "render_trace_text",
    "render_metrics_text",
    "render_telemetry_text",
    "telemetry_snapshot",
    "render_telemetry_json",
]


def _format_attributes(span: Span) -> str:
    if not span.attributes:
        return ""
    pairs = ", ".join(
        f"{key}={value}" for key, value in sorted(span.attributes.items())
    )
    return f"  {{{pairs}}}"


def _format_span(span: Span) -> str:
    timing = f"{span.duration * 1000:.3f}ms" if span.finished else "open"
    status = "" if span.status == "ok" else f"  ERROR: {span.error}"
    return f"[{span.kind}] {span.name}  {timing}{status}{_format_attributes(span)}"


def render_trace_text(tracer: Tracer) -> str:
    """The span forest as an indented tree, one span per line."""
    if not tracer.spans:
        return "(no spans recorded)"
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        lines.append("  " * depth + _format_span(span))
        for child in tracer.children(span):
            emit(child, depth + 1)

    for root in tracer.roots():
        emit(root, 0)
    return "\n".join(lines)


def render_metrics_text(metrics: MetricsRegistry) -> str:
    """Counter and histogram tables (empty string when nothing was recorded)."""
    from repro.evaluation.reporting import render_table

    sections: list[str] = []
    if metrics.counters:
        sections.append(
            render_table(
                ["counter", "value"],
                [[counter.name, counter.value] for counter in metrics.counters],
            )
        )
    if metrics.histograms:
        sections.append(
            render_table(
                ["histogram", "count", "mean", "min", "max"],
                [
                    [
                        histogram.name,
                        histogram.count,
                        f"{histogram.mean:.6f}",
                        f"{histogram.minimum:.6f}" if histogram.minimum is not None else "-",
                        f"{histogram.maximum:.6f}" if histogram.maximum is not None else "-",
                    ]
                    for histogram in metrics.histograms
                ],
            )
        )
    return "\n\n".join(sections)


def render_telemetry_text(telemetry: Telemetry) -> str:
    """Trace tree followed by metric tables — the ``qpiad trace`` output."""
    parts = [render_trace_text(telemetry.tracer)]
    metrics = render_metrics_text(telemetry.metrics)
    if metrics:
        parts.append(metrics)
    return "\n\n".join(parts)


def _span_payload(span: Span) -> dict[str, Any]:
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "kind": span.kind,
        "started": span.started,
        "ended": span.ended,
        "duration_seconds": span.duration,
        "status": span.status,
        "error": span.error,
        "attributes": dict(span.attributes),
    }


def telemetry_snapshot(telemetry: Telemetry) -> dict[str, Any]:
    """Everything recorded so far as one JSON-ready dict."""
    return {
        "spans": [_span_payload(span) for span in telemetry.tracer.spans],
        "metrics": telemetry.metrics.snapshot(),
    }


def render_telemetry_json(telemetry: Telemetry, indent: "int | None" = 2) -> str:
    return json.dumps(telemetry_snapshot(telemetry), indent=indent, sort_keys=True)
