"""The optional telemetry hook threaded through the mediator stack.

One :class:`Telemetry` object bundles a :class:`~repro.telemetry.Tracer`
and a :class:`~repro.telemetry.MetricsRegistry` behind the single
``telemetry=`` parameter that :class:`~repro.core.QpiadMediator`,
:class:`~repro.core.FederatedMediator` and every source wrapper accept.

The contract that keeps instrumentation honest about cost: **every emit
site is guarded by a plain ``None`` check**.  A pipeline built without
telemetry pays one pointer comparison per would-be event — no allocation,
no string formatting, no clock read (``benchmarks/bench_perf.py``
measures the enabled cost too).  :func:`maybe_span` packages the guard
for span-shaped sites so call sites stay one line.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Span, SpanContext, Tracer

__all__ = ["Telemetry", "maybe_span"]


class Telemetry:
    """Tracer + metrics behind one handle.

    Parameters
    ----------
    clock:
        Monotonic time source backing every span timing and latency
        histogram; tests drive a manual clock, production uses
        ``time.monotonic``.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self.tracer = Tracer(clock=clock)
        self.metrics = MetricsRegistry()

    def span(self, name: str, kind: str, **attributes: Any) -> SpanContext:
        """A context-managed span whose duration also feeds a histogram.

        Every finished span records its latency under
        ``span.<kind>.seconds``, so per-kind latency distributions come
        for free with tracing.
        """
        return SpanContext(
            self.tracer, name, kind, attributes, on_finish=self._record_latency
        )

    def _record_latency(self, span: Span) -> None:
        self.metrics.observe(f"span.{span.kind}.seconds", span.duration)

    def count(self, name: str, amount: float = 1) -> None:
        self.metrics.count(name, amount)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def snapshot(self) -> dict:
        """JSON-ready spans + metrics (see :mod:`repro.telemetry.export`)."""
        from repro.telemetry.export import telemetry_snapshot

        return telemetry_snapshot(self)

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()


class _NullSpanContext:
    """The disabled-telemetry stand-in: enters to ``None``, records nothing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


def maybe_span(
    telemetry: "Telemetry | None", name: str, kind: str, **attributes: Any
):
    """``telemetry.span(...)`` when enabled; a shared no-op context otherwise.

    The body receives the :class:`Span` (or ``None``), so optional
    attribute attachment stays a guarded one-liner::

        with maybe_span(telemetry, "base-query", SpanKind.BASE_QUERY) as span:
            result = source.execute(query)
            if span is not None:
                span.set(tuples=len(result))
    """
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.span(name, kind, **attributes)
