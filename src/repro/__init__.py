"""QPIAD: Query Processing over Incomplete Autonomous Databases.

A from-scratch Python reproduction of the QPIAD system (Wolf, Khatri,
Chokshi, Fan, Chen, Kambhampati): a mediator that retrieves *relevant
possible answers* — tuples whose constrained attributes are missing but
likely to match — from autonomous web databases that cannot be modified and
do not support binding NULL values, by rewriting queries along mined
Approximate Functional Dependencies and ranking the rewritten queries with
AFD-enhanced Naive Bayes value distributions and sampled selectivity
estimates.

Quickstart
----------
>>> from repro import (generate_cars, build_environment, SelectionQuery,
...                    QpiadMediator, QpiadConfig)
>>> env = build_environment(generate_cars(5000))
>>> mediator = QpiadMediator(env.web_source(), env.knowledge,
...                          QpiadConfig(alpha=0.0, k=10))
>>> result = mediator.query(SelectionQuery.equals("body_style", "Convt"))
>>> len(result.certain) > 0 and len(result.ranked) > 0
True
"""

from repro.core import (
    AggregateProcessor,
    AggregateResult,
    CorrelatedConfig,
    CorrelatedSourceMediator,
    JoinConfig,
    JoinedAnswer,
    JoinProcessor,
    JoinResult,
    QpiadConfig,
    QpiadMediator,
    QueryResult,
    RankedAnswer,
    RewrittenQuery,
    all_ranked,
    all_returned,
    find_correlated_source,
    generate_rewritten_queries,
    order_rewritten_queries,
)
from repro.datasets import (
    IncompleteDataset,
    generate_cars,
    generate_census,
    generate_complaints,
    make_incomplete,
)
from repro.core import (
    MultiJoinProcessor,
    MultiJoinStep,
    QueryRelaxer,
)
from repro.errors import QpiadError
from repro.mining import load_knowledge, save_knowledge
from repro.sources.caching import CachingSource
from repro.telemetry import MetricsRegistry, SpanKind, Telemetry, Tracer, maybe_span
from repro.evaluation import (
    Environment,
    GroundTruthOracle,
    build_environment,
    run_all_ranked,
    run_all_returned,
    run_qpiad,
)
from repro.mining import Afd, AKey, KnowledgeBase, MiningConfig, TaneConfig
from repro.query import (
    AggregateFunction,
    parse_selection,
    AggregateQuery,
    Between,
    Equals,
    JoinQuery,
    SelectionQuery,
)
from repro.relational import NULL, Attribute, AttributeType, Relation, Schema, is_null
from repro.sources import (
    AutonomousSource,
    RandomProbingSampler,
    SourceCapabilities,
    SourceRegistry,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # relational
    "NULL",
    "is_null",
    "Attribute",
    "AttributeType",
    "Schema",
    "Relation",
    # query
    "SelectionQuery",
    "AggregateQuery",
    "AggregateFunction",
    "JoinQuery",
    "Equals",
    "Between",
    "parse_selection",
    # sources
    "AutonomousSource",
    "SourceCapabilities",
    "SourceRegistry",
    "RandomProbingSampler",
    # mining
    "Afd",
    "AKey",
    "KnowledgeBase",
    "MiningConfig",
    "TaneConfig",
    # core
    "QpiadMediator",
    "QpiadConfig",
    "QueryResult",
    "RankedAnswer",
    "RewrittenQuery",
    "generate_rewritten_queries",
    "order_rewritten_queries",
    "all_returned",
    "all_ranked",
    "AggregateProcessor",
    "AggregateResult",
    "JoinProcessor",
    "JoinConfig",
    "JoinResult",
    "JoinedAnswer",
    "CorrelatedSourceMediator",
    "CorrelatedConfig",
    "find_correlated_source",
    # datasets
    "generate_cars",
    "generate_census",
    "generate_complaints",
    "make_incomplete",
    "IncompleteDataset",
    # evaluation
    "Environment",
    "build_environment",
    "GroundTruthOracle",
    "run_qpiad",
    "run_all_returned",
    "run_all_ranked",
    # extensions
    "MultiJoinProcessor",
    "MultiJoinStep",
    "QueryRelaxer",
    "CachingSource",
    "save_knowledge",
    "load_knowledge",
    # telemetry
    "Telemetry",
    "Tracer",
    "MetricsRegistry",
    "SpanKind",
    "maybe_span",
    # errors
    "QpiadError",
]
