"""Deterministic fault injection for chaos-testing the mediator stack.

See ``docs/robustness.md`` for how this package relates to the production
wrappers (:class:`~repro.sources.RetryingSource`,
:class:`~repro.sources.CircuitBreakerSource`) and the mediator's
degraded-result semantics.
"""

from repro.faults.injecting import FaultInjectingSource
from repro.faults.plan import (
    FaultDecision,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultStatistics,
)

__all__ = [
    "FaultKind",
    "FaultDecision",
    "FaultEvent",
    "FaultPlan",
    "FaultStatistics",
    "FaultInjectingSource",
]
