"""Deterministic fault schedules.

A chaos experiment is only evidence if it can be replayed: the same seed
must produce the same faults at the same points of the retrieval plan, or a
"the mediator survived" result is an anecdote (the same bar the repo's
``unseeded-rng`` lint rule sets for every figure).  :class:`FaultPlan`
therefore derives each fault decision from ``(seed, call_index)`` alone —
not from a shared RNG stream — so the schedule is independent of how many
random draws any single decision consumes and identical across processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import QpiadError

__all__ = ["FaultKind", "FaultDecision", "FaultEvent", "FaultPlan", "FaultStatistics"]


class FaultKind:
    """String constants naming the injectable failure modes."""

    UNAVAILABLE = "unavailable"  # raise SourceUnavailableError before any work
    CHURN = "churn"  # do the work, charge the budget, then fail anyway
    TRUNCATE = "truncate"  # return only a prefix of the result
    LATENCY = "latency"  # deliver the full result, but slowly

    ALL = (UNAVAILABLE, CHURN, TRUNCATE, LATENCY)


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decreed for one source call."""

    kind: str | None  # a FaultKind constant, or None for a healthy call
    draw: float  # the uniform draw behind the decision (for diagnostics)

    @property
    def healthy(self) -> bool:
        return self.kind is None


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as it actually happened."""

    index: int  # 0-based call index at the wrapper
    kind: str  # FaultKind constant
    operation: str  # which source method was hit
    detail: str = ""  # e.g. tuples dropped, seconds of latency


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable schedule of source faults.

    Parameters
    ----------
    seed:
        Master seed; together with the call index it fully determines every
        decision.
    unavailable_rate:
        Probability a call fails fast with ``SourceUnavailableError``
        *before* reaching the source (no budget charged).
    churn_rate:
        Probability a call reaches the source — charging its query budget —
        and *then* fails, modelling a response lost on the wire after the
        server did the work.
    truncate_rate:
        Probability a call returns only a prefix of its result (a dropped
        connection mid-transfer); :attr:`truncate_fraction` of the tuples
        survive.
    latency_rate:
        Probability a call succeeds but takes :attr:`latency_seconds`
        longer, as reported through the wrapper's sleep hook.
    spare_first:
        Number of initial calls that are never faulted.  Chaos tests use 1
        to let the base query through: QPIAD cannot return *anything*
        without certain answers, so faulting call 0 tests the caller's
        retry stack, not the mediator's degradation.
    """

    seed: int
    unavailable_rate: float = 0.0
    churn_rate: float = 0.0
    truncate_rate: float = 0.0
    truncate_fraction: float = 0.5
    latency_rate: float = 0.0
    latency_seconds: float = 0.25
    spare_first: int = 0

    def __post_init__(self) -> None:
        rates = {
            "unavailable_rate": self.unavailable_rate,
            "churn_rate": self.churn_rate,
            "truncate_rate": self.truncate_rate,
            "latency_rate": self.latency_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise QpiadError(f"{name} must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0:
            raise QpiadError(
                f"fault rates must sum to at most 1, got {sum(rates.values())}"
            )
        if not 0.0 <= self.truncate_fraction <= 1.0:
            raise QpiadError(
                f"truncate_fraction must be in [0, 1], got {self.truncate_fraction}"
            )
        if self.latency_seconds < 0:
            raise QpiadError("latency_seconds must be non-negative")
        if self.spare_first < 0:
            raise QpiadError("spare_first must be non-negative")

    @property
    def fault_rate(self) -> float:
        """Total probability that a (non-spared) call is faulted."""
        return (
            self.unavailable_rate
            + self.churn_rate
            + self.truncate_rate
            + self.latency_rate
        )

    def decide(self, index: int) -> FaultDecision:
        """The fault decision for the *index*-th call, pure in (seed, index).

        Seeding a fresh generator from a string mixes the seed and index
        through SHA-512 (CPython's documented ``version=2`` behaviour), so
        the schedule survives process boundaries and hash randomisation.
        """
        rng = random.Random(f"qpiad-fault:{self.seed}:{index}")
        draw = rng.random()
        if index < self.spare_first:
            return FaultDecision(kind=None, draw=draw)
        threshold = 0.0
        for kind, rate in (
            (FaultKind.UNAVAILABLE, self.unavailable_rate),
            (FaultKind.CHURN, self.churn_rate),
            (FaultKind.TRUNCATE, self.truncate_rate),
            (FaultKind.LATENCY, self.latency_rate),
        ):
            threshold += rate
            if draw < threshold:
                return FaultDecision(kind=kind, draw=draw)
        return FaultDecision(kind=None, draw=draw)

    def schedule(self, calls: int) -> list[str | None]:
        """The first *calls* decisions — handy for asserting replays."""
        return [self.decide(index).kind for index in range(calls)]


@dataclass
class FaultStatistics:
    """What one :class:`FaultInjectingSource` actually did."""

    calls: int = 0
    healthy: int = 0
    unavailable: int = 0
    churned: int = 0
    truncated: int = 0
    delayed: int = 0
    tuples_dropped: int = 0
    latency_injected_seconds: float = 0.0
    events: list[FaultEvent] = field(default_factory=list)

    @property
    def faults_injected(self) -> int:
        return self.unavailable + self.churned + self.truncated + self.delayed

    def reset(self) -> None:
        self.calls = 0
        self.healthy = 0
        self.unavailable = 0
        self.churned = 0
        self.truncated = 0
        self.delayed = 0
        self.tuples_dropped = 0
        self.latency_injected_seconds = 0.0
        self.events.clear()
