"""A source wrapper that injects seeded faults for chaos testing.

QPIAD mediates *autonomous* web databases — exactly the kind of backend
that times out, drops connections mid-transfer, and rate-limits without
warning.  :class:`FaultInjectingSource` simulates that weather on top of
any source-shaped object so the mediator's degradation paths can be driven
deterministically in tests, benchmarks, and the ``qpiad chaos`` smoke run.

It sits at the *bottom* of the production wrapper stack (retry → circuit
breaker → fault injection → real source): the wrappers above it see exactly
the failures a live source would produce.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import SourceUnavailableError
from repro.faults.plan import FaultDecision, FaultEvent, FaultKind, FaultPlan, FaultStatistics
from repro.query.query import SelectionQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.telemetry import Telemetry

__all__ = ["FaultInjectingSource"]


def _ignore_latency(seconds: float) -> None:
    """Default sleep hook: record-only, so tests and simulations stay instant."""


class FaultInjectingSource:
    """Wrap a source and fail it on a deterministic, seeded schedule.

    Parameters
    ----------
    inner:
        Any source-shaped object (:class:`~repro.sources.AutonomousSource`
        or another wrapper).
    plan:
        The seeded fault schedule; see :class:`~repro.faults.FaultPlan`.
    sleep:
        Hook receiving injected latency.  The default ignores the delay (the
        statistics still record it); pass ``time.sleep`` for wall-clock
        chaos runs or a fake-clock advance in deadline tests.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hook; every injected
        fault counts as ``fault.injected`` plus a per-kind counter
        (``fault.unavailable``, ``fault.churn``, ...).  ``None`` emits
        nothing.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        sleep: Callable[[float], None] = _ignore_latency,
        telemetry: Telemetry | None = None,
    ):
        self.inner = inner
        self.plan = plan
        self._sleep = sleep
        self._telemetry = telemetry
        self.statistics = FaultStatistics()
        # The concurrent executor calls into one wrapper from several
        # threads; the call counter and event log must stay exact for the
        # chaos suite's accounting invariant to hold.
        self._lock = threading.Lock()

    # -- fault core --------------------------------------------------------

    def _next_decision(self) -> "tuple[FaultDecision, int]":
        """The next call's fault decision plus its (atomic) call index."""
        with self._lock:
            index = self.statistics.calls
            self.statistics.calls += 1
        return self.plan.decide(index), index

    def _record(self, index: int, kind: str, operation: str, detail: str = "") -> None:
        with self._lock:
            self.statistics.events.append(FaultEvent(index, kind, operation, detail))
        if self._telemetry is not None:
            self._telemetry.count("fault.injected")
            self._telemetry.count(f"fault.{kind}")

    def _tally(self, **deltas: float) -> None:
        """Locked increments of the named statistics counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self.statistics, name, getattr(self.statistics, name) + delta)

    def _faulted(
        self,
        operation: str,
        call: Callable[[], Any],
        truncatable: bool = True,
    ) -> Any:
        decision, index = self._next_decision()
        if decision.kind == FaultKind.UNAVAILABLE:
            self._tally(unavailable=1)
            self._record(index, FaultKind.UNAVAILABLE, operation)
            raise SourceUnavailableError(
                f"injected fault: {self.inner.name!r} unavailable "
                f"(call {index}, {operation})"
            )
        if decision.kind == FaultKind.CHURN:
            call()  # the source did the work and charged its budget ...
            self._tally(churned=1)
            self._record(index, FaultKind.CHURN, operation, "budget charged")
            raise SourceUnavailableError(  # ... but the response never arrived
                f"injected fault: response from {self.inner.name!r} lost after "
                f"execution (call {index}, {operation})"
            )
        result = call()
        if decision.kind == FaultKind.TRUNCATE and truncatable:
            kept = int(len(result) * self.plan.truncate_fraction)
            dropped = len(result) - kept
            self._tally(truncated=1, tuples_dropped=dropped)
            self._record(index, FaultKind.TRUNCATE, operation, f"dropped {dropped} tuples")
            return result.take(kept)
        if decision.kind == FaultKind.LATENCY:
            self._tally(delayed=1, latency_injected_seconds=self.plan.latency_seconds)
            self._record(index, FaultKind.LATENCY, operation, f"{self.plan.latency_seconds}s")
            self._sleep(self.plan.latency_seconds)
            return result
        self._tally(healthy=1)
        return result

    # -- the source surface -------------------------------------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def schema(self) -> Schema:
        return self.inner.schema

    @property
    def capabilities(self):
        return self.inner.capabilities

    def supports(self, attribute: str) -> bool:
        return self.inner.supports(attribute)

    def can_answer(self, query: SelectionQuery) -> bool:
        checker = getattr(self.inner, "can_answer", None)
        return True if checker is None else checker(query)

    def cardinality(self) -> int:
        # An int result cannot be truncated; the other modes apply as usual.
        return self._faulted(
            "cardinality", self.inner.cardinality, truncatable=False
        )

    def execute(self, query: SelectionQuery) -> Relation:
        return self._faulted("execute", lambda: self.inner.execute(query))

    def execute_null_binding(self, query: SelectionQuery, max_nulls: int | None = None):
        return self._faulted(
            "execute_null_binding",
            lambda: self.inner.execute_null_binding(query, max_nulls=max_nulls),
        )

    def execute_certain_or_possible(self, query: SelectionQuery) -> Relation:
        return self._faulted(
            "execute_certain_or_possible",
            lambda: self.inner.execute_certain_or_possible(query),
        )

    def scan(self, limit: int | None = None) -> Relation:
        return self._faulted("scan", lambda: self.inner.scan(limit))

    def reset_statistics(self) -> None:
        """Reset fault accounting *and* the call counter: the schedule replays."""
        self.inner.reset_statistics()
        self.statistics.reset()

    def __repr__(self) -> str:
        return (
            f"FaultInjectingSource({self.inner!r}, seed={self.plan.seed}, "
            f"{self.statistics.faults_injected}/{self.statistics.calls} calls faulted)"
        )
