"""The NULL sentinel and value helpers for the relational substrate.

Autonomous web databases are riddled with missing values.  We model a missing
value with a dedicated singleton, :data:`NULL`, rather than ``None`` so that

* a missing value prints as ``NULL`` in result listings,
* accidental ``None`` values produced by bugs do not silently masquerade as
  database NULLs (ingestion explicitly converts ``None``/empty strings), and
* NULL never compares equal to anything, including itself, mirroring SQL
  three-valued comparison semantics for the predicates we support.
"""

from __future__ import annotations

from typing import Any

__all__ = ["NULL", "NullValue", "is_null", "coerce_value"]


class NullValue:
    """Singleton type of the :data:`NULL` marker.

    Equality follows SQL semantics: ``NULL == anything`` is ``False`` (even
    against itself).  Use :func:`is_null` (or ``value is NULL``) to test for
    missing values.  The singleton is hashable so tuples containing it can be
    used as dictionary keys (e.g. for distinct-value projections); hashing
    identity-based is fine because there is exactly one instance.
    """

    _instance: "NullValue | None" = None

    def __new__(cls) -> "NullValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return False

    def __ne__(self, other: object) -> bool:
        return True

    def __hash__(self) -> int:
        return id(self)

    def __lt__(self, other: object) -> bool:
        return NotImplemented

    def __reduce__(self) -> "tuple[type[NullValue], tuple]":
        # Preserve the singleton across pickling.
        return (NullValue, ())


NULL = NullValue()


def is_null(value: Any) -> bool:
    """Return ``True`` if *value* is the missing-value marker."""
    return value is NULL


def coerce_value(raw: Any) -> Any:
    """Normalize an ingested raw value.

    ``None`` and blank/whitespace-only strings become :data:`NULL`; every
    other value passes through unchanged.  Dataset loaders and builders call
    this so that user data cannot introduce ``None`` into relations.
    """
    if raw is None or raw is NULL:
        return NULL
    if isinstance(raw, str) and not raw.strip():
        return NULL
    return raw
