"""Schemas for the relational substrate.

A :class:`Schema` is an ordered collection of named :class:`Attribute`\\ s.
Attributes carry a logical type used by the query layer to validate
predicates (e.g. ``between`` only applies to numeric attributes).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError

__all__ = ["AttributeType", "Attribute", "Schema"]


class AttributeType(Enum):
    """Logical type of an attribute's domain."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"
    TEXT = "text"

    @property
    def is_ordered(self) -> bool:
        """Whether range predicates (``between``, ``<``, ``>``) apply."""
        return self is AttributeType.NUMERIC


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    Parameters
    ----------
    name:
        Attribute name; must be non-empty and unique within a schema.
    type:
        Logical :class:`AttributeType`; defaults to categorical, which is the
        common case in the paper's web databases (Make, Model, Body Style...).
    """

    name: str
    type: AttributeType = AttributeType.CATEGORICAL

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")

    def __str__(self) -> str:
        return self.name


class Schema:
    """An ordered, immutable sequence of attributes with name lookup.

    Examples
    --------
    >>> schema = Schema.of("make", "model", ("price", AttributeType.NUMERIC))
    >>> schema.index_of("model")
    1
    >>> schema["price"].type.is_ordered
    True
    """

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema requires at least one attribute")
        index: dict[str, int] = {}
        for position, attribute in enumerate(attrs):
            if not isinstance(attribute, Attribute):
                raise SchemaError(f"expected Attribute, got {type(attribute).__name__}")
            if attribute.name in index:
                raise SchemaError(f"duplicate attribute name {attribute.name!r}")
            index[attribute.name] = position
        self._attributes = attrs
        self._index = index

    @classmethod
    def of(cls, *specs: "str | tuple[str, AttributeType] | Attribute") -> "Schema":
        """Build a schema from terse specs.

        Each spec may be a bare name (categorical), a ``(name, type)`` pair,
        or a ready-made :class:`Attribute`.
        """
        attributes: list[Attribute] = []
        for spec in specs:
            if isinstance(spec, Attribute):
                attributes.append(spec)
            elif isinstance(spec, str):
                attributes.append(Attribute(spec))
            else:
                name, attr_type = spec
                attributes.append(Attribute(name, attr_type))
        return cls(attributes)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self._attributes)

    def index_of(self, name: str) -> int:
        """Return the column position of *name*, raising if unknown."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {', '.join(self.names)}"
            ) from None

    def indices_of(self, names: Sequence[str]) -> tuple[int, ...]:
        """Column positions for several attribute names, in the given order."""
        return tuple(self.index_of(name) for name in names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, key: "int | str") -> Attribute:
        if isinstance(key, str):
            return self._attributes[self.index_of(key)]
        return self._attributes[key]

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{attribute.name}:{attribute.type.value}" for attribute in self._attributes
        )
        return f"Schema({parts})"

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema containing only *names*, in the given order."""
        return Schema(self[name] for name in names)

    def without(self, names: Iterable[str]) -> "Schema":
        """A new schema excluding *names* (which must all exist)."""
        excluded = set(names)
        for name in excluded:
            self.index_of(name)  # validate
        remaining = [attribute for attribute in self._attributes if attribute.name not in excluded]
        if not remaining:
            raise SchemaError("cannot drop every attribute from a schema")
        return Schema(remaining)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """A new schema with attributes renamed per *mapping*."""
        for name in mapping:
            self.index_of(name)  # validate
        return Schema(
            Attribute(mapping.get(attribute.name, attribute.name), attribute.type)
            for attribute in self._attributes
        )

    def is_numeric(self, name: str) -> bool:
        return self[name].type is AttributeType.NUMERIC
