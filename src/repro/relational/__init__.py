"""NULL-aware in-memory relational substrate.

This package provides the storage layer every other QPIAD component builds
on: typed schemas, immutable relations with SQL-like NULL semantics, CSV
round-tripping, and the columnar (numpy-backed) data plane behind the
:class:`Relation` facade.
"""

from repro.relational.builders import RelationBuilder
from repro.relational.columnar import (
    DATA_PLANES,
    Column,
    ColumnStore,
    data_plane,
    data_plane_scope,
    set_data_plane,
    use_columnar,
)
from repro.relational.csvio import infer_schema, read_csv, write_csv
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.values import NULL, NullValue, coerce_value, is_null

__all__ = [
    "NULL",
    "NullValue",
    "coerce_value",
    "is_null",
    "Attribute",
    "AttributeType",
    "Schema",
    "Relation",
    "Row",
    "read_csv",
    "write_csv",
    "infer_schema",
    "RelationBuilder",
    "Column",
    "ColumnStore",
    "DATA_PLANES",
    "data_plane",
    "data_plane_scope",
    "set_data_plane",
    "use_columnar",
]
