"""NULL-aware in-memory relational substrate.

This package provides the storage layer every other QPIAD component builds
on: typed schemas, immutable relations with SQL-like NULL semantics, and CSV
round-tripping.
"""

from repro.relational.builders import RelationBuilder
from repro.relational.csvio import infer_schema, read_csv, write_csv
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.values import NULL, NullValue, coerce_value, is_null

__all__ = [
    "NULL",
    "NullValue",
    "coerce_value",
    "is_null",
    "Attribute",
    "AttributeType",
    "Schema",
    "Relation",
    "Row",
    "read_csv",
    "write_csv",
    "infer_schema",
    "RelationBuilder",
]
