"""A small fluent builder for relations.

Hand-writing aligned tuples for tests, docs and exploratory sessions is
error-prone; the builder names columns once and accepts rows as keyword
arguments (missing keywords become NULL):

    >>> from repro.relational.builders import RelationBuilder
    >>> cars = (
    ...     RelationBuilder()
    ...     .categorical("make", "model")
    ...     .numeric("price")
    ...     .row(make="Honda", model="Accord", price=18000)
    ...     .row(make="BMW", model="Z4")            # price stays NULL
    ...     .build()
    ... )
    >>> cars.null_count("price")
    1
"""

from __future__ import annotations

from typing import Any

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.values import NULL

__all__ = ["RelationBuilder"]


class RelationBuilder:
    """Accumulates attributes and keyword rows, then builds a Relation."""

    def __init__(self):
        self._attributes: list[Attribute] = []
        self._names: set[str] = set()
        self._rows: list[dict[str, Any]] = []

    # -- schema -----------------------------------------------------------

    def _add(self, name: str, attr_type: AttributeType) -> "RelationBuilder":
        if self._rows:
            raise SchemaError("add all attributes before the first row")
        if name in self._names:
            raise SchemaError(f"duplicate attribute {name!r}")
        self._attributes.append(Attribute(name, attr_type))
        self._names.add(name)
        return self

    def categorical(self, *names: str) -> "RelationBuilder":
        """Add categorical attributes."""
        for name in names:
            self._add(name, AttributeType.CATEGORICAL)
        return self

    def numeric(self, *names: str) -> "RelationBuilder":
        """Add numeric attributes."""
        for name in names:
            self._add(name, AttributeType.NUMERIC)
        return self

    # -- rows -------------------------------------------------------------

    def row(self, **values: Any) -> "RelationBuilder":
        """Add one row; omitted attributes become NULL."""
        if not self._attributes:
            raise SchemaError("define attributes before adding rows")
        unknown = set(values) - self._names
        if unknown:
            raise SchemaError(f"row uses undeclared attributes: {sorted(unknown)}")
        self._rows.append(values)
        return self

    def rows(self, *mappings: dict[str, Any]) -> "RelationBuilder":
        """Add several rows given as mappings."""
        for mapping in mappings:
            self.row(**mapping)
        return self

    # -- build -------------------------------------------------------------

    def build(self) -> Relation:
        """Materialize the relation (the builder stays reusable)."""
        if not self._attributes:
            raise SchemaError("cannot build a relation without attributes")
        schema = Schema(self._attributes)
        materialized = [
            tuple(values.get(attribute.name, NULL) for attribute in self._attributes)
            for values in self._rows
        ]
        return Relation(schema, materialized)
