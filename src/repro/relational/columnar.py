"""The columnar data plane: numpy-backed storage behind the Relation facade.

A :class:`ColumnStore` is the dictionary-encoded, array-backed image of one
:class:`~repro.relational.relation.Relation`: one int64 code array per
attribute (``-1`` marks NULL) plus a boolean NULL mask, with the distinct
values kept in a first-seen dictionary.  Stores are built lazily and
memoized by :meth:`Relation.columnar`, so row-oriented callers pay nothing.

The encoding preserves the substrate's exact semantics:

* **NULL tri-state** — NULL cells carry code ``-1`` and never participate in
  equality or range masks; the NULL mask is what the possible-answer logic
  consumes.
* **Python equality** — codes are assigned with an ordinary ``dict``, so two
  cells share a code exactly when ``==``/``hash`` say they are the same
  value (``1``, ``1.0`` and ``True`` collapse, just as they do in the
  row-oriented grouping and counting code).
* **Float exactness** — the numeric projection marks a dictionary entry
  usable by vectorized range comparison only when its ``float64`` image is
  exact (any float, or an int within ``±2**53``); everything else falls back
  to per-value Python evaluation so vectorized answers stay bit-identical
  to the row plane.

Columns holding unhashable values cannot be dictionary-encoded; they become
*opaque* (``codes is None``) and only expose the NULL mask, which makes every
consumer fall back to its per-row path for that column.

The module also owns the **data-plane toggle**: the process-wide switch
between the ``"columnar"`` kernels (default) and the pure-Python ``"row"``
plane, used by the parity benchmarks and selectable via the
``QPIAD_DATA_PLANE`` environment variable.  The toggle is read at well-known
decision points (query evaluation, mining); flipping it concurrently with a
running query is not supported.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.errors import QpiadError, SchemaError
from repro.relational.schema import Schema
from repro.relational.values import NULL

if TYPE_CHECKING:
    from repro.relational.relation import Relation

__all__ = [
    "Column",
    "ColumnStore",
    "DATA_PLANES",
    "EXACT_INT_BOUND",
    "data_plane",
    "data_plane_scope",
    "float64_exact",
    "set_data_plane",
    "use_columnar",
]

#: The selectable data planes: vectorized kernels vs the pure-Python rows.
DATA_PLANES = ("columnar", "row")

#: Largest integer magnitude that float64 represents exactly (2**53).
EXACT_INT_BOUND = 2**53

_ENV_VAR = "QPIAD_DATA_PLANE"


def _plane_from_env() -> str:
    plane = os.environ.get(_ENV_VAR, "columnar").strip().lower()
    if plane not in DATA_PLANES:
        raise QpiadError(
            f"{_ENV_VAR}={plane!r} is not a data plane; expected one of {DATA_PLANES}"
        )
    return plane


_active_plane: str = _plane_from_env()


def data_plane() -> str:
    """The active data plane, ``"columnar"`` (default) or ``"row"``."""
    return _active_plane


def set_data_plane(plane: str) -> None:
    """Select the active data plane process-wide."""
    global _active_plane
    if plane not in DATA_PLANES:
        raise QpiadError(
            f"unknown data plane {plane!r}; expected one of {DATA_PLANES}"
        )
    _active_plane = plane


@contextmanager
def data_plane_scope(plane: str) -> Iterator[None]:
    """Temporarily select *plane*; restores the previous plane on exit."""
    previous = data_plane()
    set_data_plane(plane)
    try:
        yield
    finally:
        set_data_plane(previous)


def use_columnar() -> bool:
    """Whether consumers should take the vectorized kernels."""
    return _active_plane == "columnar"


def float64_exact(value: Any) -> bool:
    """Whether *value*'s ``float64`` image compares exactly like the value.

    True for every float (Python floats *are* float64) and for ints within
    ``±2**53``; bools count as the ints 0/1.  Values outside this set must be
    compared in Python to match the row plane bit for bit.
    """
    if isinstance(value, float):
        return True
    if isinstance(value, int):  # bool is an int subclass and is exact
        return -EXACT_INT_BOUND <= value <= EXACT_INT_BOUND
    return False


class Column:
    """One attribute's cells in dictionary-encoded columnar form.

    Attributes
    ----------
    name:
        The attribute name.
    codes:
        int64 dictionary codes per row (``-1`` for NULL), or ``None`` when
        the column is *opaque* (holds unhashable values) and only the NULL
        mask is available.
    null_mask:
        Boolean array marking NULL cells; always available.
    values:
        The dictionary: distinct non-NULL values in first-seen order, so
        ``values[codes[i]]`` decodes row ``i``.  Empty for opaque columns.
    """

    __slots__ = ("name", "codes", "null_mask", "values", "_code_map", "_numeric")

    def __init__(
        self,
        name: str,
        codes: "NDArray[np.int64] | None",
        null_mask: NDArray[np.bool_],
        values: tuple[Any, ...],
        code_map: "dict[Any, int] | None",
    ):
        self.name = name
        self.codes = codes
        self.null_mask = null_mask
        self.values = values
        self._code_map = code_map
        self._numeric: "tuple[NDArray[np.float64], NDArray[np.bool_]] | None" = None

    @property
    def is_encoded(self) -> bool:
        """Whether dictionary codes are available (False for opaque columns)."""
        return self.codes is not None

    def __len__(self) -> int:
        return int(self.null_mask.shape[0])

    def __repr__(self) -> str:
        kind = f"{len(self.values)} distinct" if self.is_encoded else "opaque"
        return f"Column({self.name!r}, {len(self)} rows, {kind})"

    def code_of(self, value: Any) -> "int | None":
        """The dictionary code of *value*, or ``None`` when absent.

        Lookup uses ordinary dict semantics (hash + identity-or-equality),
        matching how cells were grouped during encoding.  Raises
        :class:`TypeError` for unhashable values — callers treat that as
        "fall back to per-row evaluation".
        """
        if self._code_map is None:
            return None
        return self._code_map.get(value)

    def dictionary_numeric(self) -> "tuple[NDArray[np.float64], NDArray[np.bool_]]":
        """Per-dictionary-entry ``(float64 value, exactly-representable)`` arrays.

        Entry ``k`` is usable by vectorized numeric comparison only when
        ``exact[k]`` — i.e. the entry is an int/float whose float64 image is
        exact.  Everything else (strings in a mixed column, huge ints,
        Decimals...) must be evaluated per value in Python.  Computed lazily
        and memoized.
        """
        if self._numeric is None:
            count = len(self.values)
            numeric = np.zeros(count, dtype=np.float64)
            exact = np.zeros(count, dtype=np.bool_)
            for position, value in enumerate(self.values):
                if float64_exact(value):
                    numeric[position] = float(value)
                    exact[position] = True
            self._numeric = (numeric, exact)
        return self._numeric

    def gather_bool(self, per_value: NDArray[np.bool_]) -> NDArray[np.bool_]:
        """Scatter a per-dictionary-entry boolean to rows; NULL rows are False."""
        codes = self.codes
        if codes is None:
            raise TypeError(f"column {self.name!r} is opaque; no codes to gather by")
        if per_value.shape[0] == 0:
            return np.zeros(codes.shape[0], dtype=np.bool_)
        safe = np.where(codes >= 0, codes, 0)
        result: NDArray[np.bool_] = per_value[safe] & (codes >= 0)
        return result


def _encode_column(name: str, cells: "list[Any]") -> Column:
    code_map: dict[Any, int] = {}
    codes_list: list[int] = []
    append = codes_list.append
    try:
        for value in cells:
            if value is NULL:
                append(-1)
            else:
                code = code_map.get(value)
                if code is None:
                    code = len(code_map)
                    code_map[value] = code
                append(code)
    except TypeError:
        # Unhashable cell: the column cannot be dictionary-encoded.  Keep
        # the NULL mask (always computable) and mark the column opaque so
        # every consumer takes its per-row fallback.
        null_mask = np.fromiter(
            (value is NULL for value in cells), dtype=np.bool_, count=len(cells)
        )
        return Column(name, None, null_mask, (), None)
    codes = np.array(codes_list, dtype=np.int64)
    return Column(name, codes, codes < 0, tuple(code_map), code_map)


def _extend_column(column: Column, cells: "list[Any]") -> Column:
    """Encode *cells* appended after *column*'s rows, reusing its dictionary.

    Codes are minted first-seen, so encoding only the new cells against a
    copy of the existing dictionary produces exactly the codes a from-scratch
    encoding of old+new cells would — the property incremental mining's
    histogram keys depend on.  The original column is never mutated.
    """
    if column.codes is None or column._code_map is None:
        null_mask = np.fromiter(
            (value is NULL for value in cells), dtype=np.bool_, count=len(cells)
        )
        return Column(
            column.name, None, np.concatenate([column.null_mask, null_mask]), (), None
        )
    code_map = dict(column._code_map)
    codes_list: list[int] = []
    append = codes_list.append
    try:
        for value in cells:
            if value is NULL:
                append(-1)
            else:
                code = code_map.get(value)
                if code is None:
                    code = len(code_map)
                    code_map[value] = code
                append(code)
    except TypeError:
        # An unhashable new cell: a from-scratch encoding of the union would
        # go opaque too, so the extension must as well.
        null_mask = np.fromiter(
            (value is NULL for value in cells), dtype=np.bool_, count=len(cells)
        )
        return Column(
            column.name, None, np.concatenate([column.null_mask, null_mask]), (), None
        )
    codes = np.concatenate([column.codes, np.array(codes_list, dtype=np.int64)])
    return Column(column.name, codes, codes < 0, tuple(code_map), code_map)


class ColumnStore:
    """The dictionary-encoded columnar image of one relation.

    Built once per relation (see :meth:`Relation.columnar`) and immutable
    afterwards; every vectorized consumer — predicate masks, TANE partition
    kernels, NBC count aggregation — reads the same store.
    """

    __slots__ = ("_schema", "_columns", "_length")

    def __init__(self, schema: Schema, columns: "dict[str, Column]", length: int):
        self._schema = schema
        self._columns = columns
        self._length = length

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Sequence[Any]]) -> "ColumnStore":
        """Encode row-major tuples (already NULL-coerced) into columns."""
        columns = {
            name: _encode_column(name, [row[position] for row in rows])
            for position, name in enumerate(schema.names)
        }
        return cls(schema, columns, len(rows))

    @classmethod
    def from_relation(cls, relation: "Relation") -> "ColumnStore":
        return cls.from_rows(relation.schema, relation.rows)

    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> Column:
        """The encoded column for *name*, raising on unknown attributes."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; store has {', '.join(self._schema.names)}"
            ) from None

    def extended(self, rows: Sequence[Sequence[Any]]) -> "ColumnStore":
        """A store covering this store's rows followed by *rows*.

        Dictionaries are carried forward, so the result is identical to
        encoding the concatenated rows from scratch but costs only
        ``O(len(rows))`` — the hot path of incremental knowledge refresh,
        where the historical sample dwarfs each folded batch.
        """
        columns = {
            name: _extend_column(
                self._columns[name], [row[position] for row in rows]
            )
            for position, name in enumerate(self._schema.names)
        }
        return ColumnStore(self._schema, columns, self._length + len(rows))

    def __repr__(self) -> str:
        return f"ColumnStore({self._schema!r}, {self._length} rows)"
