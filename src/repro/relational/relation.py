"""In-memory, NULL-aware relations.

A :class:`Relation` stores rows as tuples aligned with a :class:`Schema`.
It provides exactly the relational operations the QPIAD stack needs:
selection by arbitrary row predicate, projection (with and without
duplicates), distinct value enumeration, NULL bookkeeping, sampling support
and joins are layered on top by :mod:`repro.query.executor`.

Relations are *logically immutable*: all operations return new relations.
This mirrors the autonomous-database setting the paper targets — the
mediator may never modify the underlying data.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from operator import itemgetter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.relational.schema import Schema
from repro.relational.values import NULL, coerce_value, is_null

if TYPE_CHECKING:
    from repro.relational.columnar import ColumnStore

__all__ = ["Row", "Relation"]

Row = tuple  # rows are plain tuples aligned with the schema


def _canonical_cell(value: Any) -> str:
    """Canonical, type-tagged string encoding of one row value.

    Mirrors the scalar rules of :func:`repro.planner.fingerprint.stable_digest`
    so structurally different values never serialize to the same string
    (``1`` vs ``"1"``, ``NULL`` vs ``"NULL"``).
    """
    # Checked most-common-first (cells are mostly strings); bool must stay
    # ahead of int because bool is an int subclass.
    if isinstance(value, str):
        return f"s{len(value)}:{value}"
    if value is None:
        return "~"
    if isinstance(value, bool):
        return "b1" if value else "b0"
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        return f"f{value!r}"
    if is_null(value):
        return "N"
    encoded = repr(value)
    return f"r{len(encoded)}:{encoded}"


def _row_bytes(row: Row) -> bytes:
    return ("[" + ",".join(_canonical_cell(value) for value in row) + "]").encode(
        "utf-8"
    )


class Relation:
    """An immutable bag of rows over a fixed schema.

    Parameters
    ----------
    schema:
        Column layout of every row.
    rows:
        Iterable of sequences; each is coerced to a tuple and must match the
        schema's arity.  ``None`` and blank strings become :data:`NULL`.

    Examples
    --------
    >>> from repro.relational import Schema, Relation
    >>> cars = Relation(Schema.of("make", "model"),
    ...                 [("Honda", "Accord"), ("BMW", None)])
    >>> len(cars)
    2
    >>> cars.null_count("model")
    1
    """

    __slots__ = ("_schema", "_rows", "_columnar", "_digest")

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Any]] = ()):
        self._schema = schema
        arity = len(schema)
        materialized: list[Row] = []
        for raw in rows:
            row = tuple(coerce_value(value) for value in raw)
            if len(row) != arity:
                raise SchemaError(
                    f"row arity {len(row)} does not match schema arity {arity}: {row!r}"
                )
            materialized.append(row)
        self._rows = tuple(materialized)
        self._columnar: "ColumnStore | None" = None
        self._digest: "Any | None" = None

    @classmethod
    def from_coerced(
        cls, schema: Schema, rows: Iterable[Row]
    ) -> "Relation":
        """Construct from rows that are already coerced and arity-checked.

        Trusted fast path for internal transforms whose inputs come out of
        an existing relation: skips per-cell :func:`coerce_value` and the
        arity check, which is safe exactly when every row is a tuple of
        already-normalized values with the schema's arity.
        """
        relation = cls.__new__(cls)
        relation._schema = schema
        relation._rows = tuple(rows)
        relation._columnar = None
        relation._digest = None
        return relation

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def rows(self) -> tuple[Row, ...]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and Counter(self._rows) == Counter(other._rows)

    def __repr__(self) -> str:
        return f"Relation({self._schema!r}, {len(self._rows)} rows)"

    def value(self, row: Row, attribute: str) -> Any:
        """The value of *attribute* in *row*."""
        return row[self._schema.index_of(attribute)]

    def column(self, attribute: str) -> tuple[Any, ...]:
        """All values (including NULLs) of one attribute, in row order."""
        index = self._schema.index_of(attribute)
        return tuple(row[index] for row in self._rows)

    def columnar(self) -> "ColumnStore":
        """The columnar (numpy-backed) image of this relation.

        Built lazily on first use and memoized — the relation is immutable,
        so the store never goes stale.  Row-oriented callers that never ask
        for it pay nothing.
        """
        store = getattr(self, "_columnar", None)
        if store is None:
            from repro.relational.columnar import ColumnStore

            store = ColumnStore.from_relation(self)
            self._columnar = store
        return store

    def content_digest(self) -> str:
        """Order-sensitive SHA-256 over schema and rows (hex), memoized.

        The underlying chain is *foldable*: :meth:`concat` seeds the
        union's hash state from this relation's and hashes only the
        appended rows, so a knowledge refresh fingerprints its grown
        sample in O(batch) — while staying bit-identical to hashing the
        union from scratch (row order is part of the digest).
        """
        return self._digest_state().hexdigest()

    def _digest_state(self) -> Any:
        state = self._digest
        if state is None:
            state = hashlib.sha256()
            header = ",".join(
                f"{_canonical_cell(attribute.name)}:{attribute.type.value}"
                for attribute in self._schema
            )
            state.update(f"relation|{header}|".encode("utf-8"))
            for row in self._rows:
                state.update(_row_bytes(row))
            self._digest = state
        return state

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Rows satisfying an arbitrary row predicate."""
        return self._with_rows(row for row in self._rows if predicate(row))

    def select_indices(self, indices: Sequence[int]) -> "Relation":
        """Rows at *indices*, in the given order.

        This is the gather step of mask-based (columnar) selection: the
        executor computes a boolean mask over the store and hands the
        surviving row positions here.  ``itemgetter`` keeps the gather in C.
        """
        rows = self._rows
        if len(indices) == 0:
            return self._with_rows(())
        if len(indices) == 1:
            return self._with_rows((rows[indices[0]],))
        return self._with_rows(itemgetter(*indices)(rows))

    def project(self, names: Sequence[str], distinct: bool = False) -> "Relation":
        """Project onto *names*; optionally de-duplicate.

        Distinct projection preserves first-seen order, which keeps rewritten
        query generation deterministic.
        """
        indices = self._schema.indices_of(names)
        projected = (tuple(row[i] for i in indices) for row in self._rows)
        if distinct:
            seen: dict[Row, None] = {}
            for row in projected:
                seen.setdefault(row)
            result_rows: Iterable[Row] = seen.keys()
        else:
            result_rows = projected
        return Relation(self._schema.project(names), result_rows)

    def distinct_values(self, attribute: str, include_null: bool = False) -> list[Any]:
        """Distinct values of *attribute* in first-seen order."""
        index = self._schema.index_of(attribute)
        seen: dict[Any, None] = {}
        for row in self._rows:
            value = row[index]
            if is_null(value) and not include_null:
                continue
            seen.setdefault(value)
        return list(seen.keys())

    def value_counts(self, attribute: str, include_null: bool = False) -> Counter:
        """Multiplicity of each value of *attribute*."""
        index = self._schema.index_of(attribute)
        counts: Counter = Counter()
        for row in self._rows:
            value = row[index]
            if is_null(value) and not include_null:
                continue
            counts[value] += 1
        return counts

    def extend(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """A new relation with *rows* appended."""
        return Relation(self._schema, list(self._rows) + [tuple(r) for r in rows])

    def concat(self, other: "Relation") -> "Relation":
        """Union-all with another relation over an identical schema."""
        if other.schema != self._schema:
            raise SchemaError("cannot concat relations with different schemas")
        result = self._with_rows(self._rows + other._rows)
        if self._digest is not None:
            # Fold the digest chain forward: hash only the appended rows.
            state = self._digest.copy()
            for row in other._rows:
                state.update(_row_bytes(row))
            result._digest = state
        return result

    def concat_encoded(self, other: "Relation") -> "Relation":
        """Union-all that carries this relation's columnar dictionary forward.

        Semantically identical to :meth:`concat`; additionally the result's
        column store is pre-built by encoding only *other*'s rows against
        this relation's dictionaries (codes are minted first-seen, so the
        result is bit-identical to encoding the union from scratch).  This
        turns the per-refresh encoding cost of incremental knowledge
        maintenance from O(total rows) into O(batch rows).
        """
        result = self.concat(other)
        result._columnar = self.columnar().extended(other._rows)
        return result

    def take(self, count: int) -> "Relation":
        """The first *count* rows."""
        return self._with_rows(self._rows[:count])

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """A relation with attributes renamed; rows are shared unchanged."""
        renamed = Relation.__new__(Relation)
        renamed._schema = self._schema.rename(mapping)
        renamed._rows = self._rows
        renamed._columnar = None
        renamed._digest = None
        return renamed

    # ------------------------------------------------------------------
    # NULL bookkeeping (Table 1 statistics)
    # ------------------------------------------------------------------

    def is_complete_row(self, row: Row) -> bool:
        """True if the row has no NULL in any attribute (Definition 1)."""
        return not any(is_null(value) for value in row)

    def complete_rows(self) -> "Relation":
        return self.select(self.is_complete_row)

    def incomplete_rows(self) -> "Relation":
        return self.select(lambda row: not self.is_complete_row(row))

    def null_count(self, attribute: str) -> int:
        """Number of rows where *attribute* is NULL."""
        index = self._schema.index_of(attribute)
        return sum(1 for row in self._rows if is_null(row[index]))

    def null_fraction(self, attribute: str) -> float:
        """Fraction of rows where *attribute* is NULL (0.0 on empty)."""
        if not self._rows:
            return 0.0
        return self.null_count(attribute) / len(self._rows)

    def incomplete_count(self) -> int:
        """How many rows have at least one NULL."""
        return sum(1 for row in self._rows if not self.is_complete_row(row))

    def incomplete_fraction(self) -> float:
        """Fraction of rows with at least one NULL (0.0 on empty)."""
        if not self._rows:
            return 0.0
        return self.incomplete_count() / len(self._rows)

    def rows_with_null_on(self, attributes: Sequence[str]) -> "Relation":
        """Rows that are NULL on at least one of *attributes*."""
        indices = self._schema.indices_of(attributes)
        return self._with_rows(
            row for row in self._rows if any(is_null(row[i]) for i in indices)
        )

    def null_count_over(self, row: Row, attributes: Sequence[str]) -> int:
        """How many of *attributes* are NULL in *row* (the paper's 0/1/2+ rule)."""
        indices = self._schema.indices_of(attributes)
        return sum(1 for i in indices if is_null(row[i]))

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def head(self, count: int = 10) -> str:
        """A small ASCII rendering of the first *count* rows."""
        names = self._schema.names
        shown = [tuple(str(value) for value in row) for row in self._rows[:count]]
        widths = [len(name) for name in names]
        for row in shown:
            widths = [max(width, len(cell)) for width, cell in zip(widths, row)]
        header = " | ".join(name.ljust(width) for name, width in zip(names, widths))
        rule = "-+-".join("-" * width for width in widths)
        body = [
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in shown
        ]
        footer = [] if len(self._rows) <= count else [f"... ({len(self._rows)} rows total)"]
        return "\n".join([header, rule, *body, *footer])

    # ------------------------------------------------------------------

    def _with_rows(self, rows: Iterable[Row]) -> "Relation":
        relation = Relation.__new__(Relation)
        relation._schema = self._schema
        relation._rows = tuple(rows)
        relation._columnar = None
        relation._digest = None
        return relation
