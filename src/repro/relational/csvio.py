"""CSV import/export for relations.

Datasets in this reproduction are generated, but a downstream user will want
to load their own incomplete data.  These helpers round-trip relations
through CSV with NULLs encoded as empty fields and numeric columns parsed
according to the schema.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.values import NULL, is_null

__all__ = ["read_csv", "write_csv", "infer_schema"]


def _parse_cell(text: str, attr_type: AttributeType) -> Any:
    if text == "":
        return NULL
    if attr_type is AttributeType.NUMERIC:
        try:
            as_float = float(text)
        except ValueError as exc:
            raise SchemaError(f"cannot parse {text!r} as numeric") from exc
        if as_float.is_integer() and "." not in text and "e" not in text.lower():
            return int(as_float)
        return as_float
    return text


def infer_schema(header: Iterable[str], sample_rows: Iterable[Iterable[str]]) -> Schema:
    """Infer a schema from a CSV header and a few sample rows.

    A column is numeric when every non-empty sampled cell parses as a float;
    otherwise it is categorical.
    """
    names = list(header)
    numeric = [True] * len(names)
    for row in sample_rows:
        for position, cell in enumerate(row):
            if position >= len(names) or cell == "":
                continue
            try:
                float(cell)
            except ValueError:
                numeric[position] = False
    return Schema(
        Attribute(name, AttributeType.NUMERIC if numeric[i] else AttributeType.CATEGORICAL)
        for i, name in enumerate(names)
    )


def read_csv(path: "str | Path", schema: Schema | None = None) -> Relation:
    """Load a relation from *path*.

    When *schema* is omitted, it is inferred from the header and the first
    100 rows.  Empty cells become NULL.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty; cannot read a relation") from None
        raw_rows = list(reader)
    if schema is None:
        schema = infer_schema(header, raw_rows[:100])
    elif list(schema.names) != header:
        raise SchemaError(
            f"CSV header {header} does not match schema attributes {list(schema.names)}"
        )
    rows = [
        tuple(_parse_cell(cell, schema[i].type) for i, cell in enumerate(row))
        for row in raw_rows
    ]
    return Relation(schema, rows)


def write_csv(relation: Relation, path: "str | Path") -> None:
    """Write *relation* to *path*, encoding NULLs as empty fields."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation:
            writer.writerow(["" if is_null(value) else value for value in row])
