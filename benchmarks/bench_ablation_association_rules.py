"""§6.5 comparison: AFD-enhanced NBC vs association-rule imputation.

The paper: "association rules perform poorly as they focus only on
attribute-value level correlations and thus fail to learn from small
samples. In contrast AFD-enhanced NBC classifiers can synergistically
exploit schema-level and value-level correlations."

This bench sweeps the training-sample size and reports both methods' null
prediction accuracy on ``body_style`` — the gap should widen as the sample
shrinks.
"""

from repro.datasets import generate_cars
from repro.evaluation import build_environment, classification_accuracy, render_table

SAMPLE_FRACTIONS = (0.03, 0.05, 0.10)


def _run():
    cars = generate_cars(8000, seed=7)
    rows = []
    gaps = {}
    for fraction in SAMPLE_FRACTIONS:
        env = build_environment(
            cars,
            seed=49,
            train_fraction=fraction,
            attribute_weights={"body_style": 5.0},
            name=f"cars-{int(fraction * 100)}pct-sample",
        )
        nbc = classification_accuracy(
            env, "hybrid-one-afd", attributes=["body_style"], limit=250
        )
        rules = classification_accuracy(
            env, "association-rules", attributes=["body_style"], limit=250
        )
        rows.append(
            [f"{fraction:.0%}", f"{100 * nbc:.1f}%", f"{100 * rules:.1f}%"]
        )
        gaps[fraction] = (nbc, rules)
    return rows, gaps


def test_ablation_nbc_vs_association_rules(benchmark, report):
    rows, gaps = benchmark.pedantic(_run, rounds=1, iterations=1)

    text = render_table(
        ["training sample", "AFD-enhanced NBC", "association rules"],
        rows,
        title=(
            "§6.5 comparison — body_style prediction accuracy vs sample size"
        ),
    )
    report.emit(text)

    for fraction, (nbc, rules) in gaps.items():
        # The paper's direction: NBC at least matches rules at every size.
        assert nbc >= rules - 0.02, f"at {fraction:.0%} sample"
    # And rules never dominate overall.
    assert sum(n for n, __ in gaps.values()) >= sum(r for __, r in gaps.values())
