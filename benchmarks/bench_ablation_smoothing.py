"""Ablation: m-estimate smoothing weight of the Naive Bayes models (§5.2).

``m = 0`` is maximum likelihood (brittle on unseen evidence), moderate m is
the paper's standard practice, huge m washes the posterior towards the
feature-domain prior.  Expected shape: accuracy peaks at small-but-nonzero m
and degrades at the extremes.
"""

from repro.datasets import generate_cars
from repro.evaluation import build_environment, classification_accuracy, render_series
from repro.mining import MiningConfig

M_VALUES = (0.0, 0.5, 1.0, 5.0, 50.0, 500.0)


def _run():
    accuracies = {}
    cars = generate_cars(6000, seed=7)
    for m in M_VALUES:
        env = build_environment(
            cars,
            seed=47,
            mining=MiningConfig(smoothing_m=m),
            name=f"cars-m{m}",
        )
        accuracies[m] = classification_accuracy(env, "hybrid-one-afd", limit=250)
    return accuracies


def test_ablation_m_estimate_smoothing(benchmark, report):
    accuracies = benchmark.pedantic(_run, rounds=1, iterations=1)

    text = render_series(
        "Ablation — null prediction accuracy vs m-estimate weight",
        [(m, accuracy) for m, accuracy in accuracies.items()],
        x_label="m",
        y_label="accuracy",
    )
    report.emit(text)

    moderate = max(accuracies[m] for m in (0.5, 1.0, 5.0))
    # Moderate smoothing is at least as good as the extremes.
    assert moderate >= accuracies[500.0]
    assert moderate >= accuracies[0.0] - 0.02
    assert all(0.0 <= accuracy <= 1.0 for accuracy in accuracies.values())
