"""Shared fixtures for the per-table/per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Rendered
output goes two places:

* ``benchmarks/out/<experiment>.txt`` — the full data series, and
* the terminal summary at the end of the run (via ``pytest_terminal_summary``,
  which bypasses pytest's output capture), so
  ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records the
  regenerated numbers alongside the timing table.

Environments are sized for signal rather than speed parity with the paper
(the paper's 55k–200k extractions are unnecessary for shape reproduction).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import generate_cars, generate_census, generate_complaints
from repro.evaluation import build_environment

OUT_DIR = Path(__file__).parent / "out"

_REPORTS: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def cars_env():
    return build_environment(generate_cars(8000, seed=7), seed=42, name="cars")


@pytest.fixture(scope="session")
def cars_env_price_heavy():
    """Cars with masking skewed towards price (Figs 5, 7).

    Table 1 shows real sources concentrate missingness on a few attributes;
    skewing gives the price experiments a non-trivial relevant-answer pool.
    """
    return build_environment(
        generate_cars(10000, seed=7),
        seed=45,
        name="cars-price-heavy",
        attribute_weights={"price": 8.0},
    )


@pytest.fixture(scope="session")
def cars_env_body_heavy():
    """Cars with masking skewed towards body_style and mileage (Figs 6, 8-11)."""
    return build_environment(
        generate_cars(10000, seed=7),
        seed=46,
        name="cars-body-heavy",
        attribute_weights={"body_style": 6.0, "mileage": 4.0},
    )


@pytest.fixture(scope="session")
def census_env():
    return build_environment(generate_census(8000, seed=11), seed=42, name="census")


@pytest.fixture(scope="session")
def complaints_env():
    return build_environment(
        generate_complaints(9000, seed=23), seed=43, name="complaints"
    )


class Reporter:
    """Collects one experiment's rendered output."""

    def __init__(self, name: str):
        self.name = name

    def emit(self, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{self.name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        _REPORTS.append((self.name, text))


@pytest.fixture()
def report(request) -> Reporter:
    """A per-test reporter named after the benchmark module."""
    module = request.module.__name__.replace("bench_", "")
    return Reporter(module)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("regenerated tables & figures")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"##### {name} #####")
        for line in text.splitlines():
            terminalreporter.write_line(line)
