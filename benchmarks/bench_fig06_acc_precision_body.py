"""Figure 6: average accumulated precision after the Kth tuple, 10 queries
on Body Style and Mileage, QPIAD vs AllReturned.

Paper shape: QPIAD's average density of relevant answers in the first K
results is far above AllReturned's for all K.
"""

from repro.core import QpiadConfig
from repro.evaluation import (
    average_accumulated_precision,
    render_curves,
    run_all_returned,
    run_qpiad,
    selection_workload,
)

K_POINTS = (1, 5, 10, 25, 50, 100)


def _run(env):
    queries = selection_workload(env, "body_style", 5, seed=61) + selection_workload(
        env, "mileage", 5, seed=62
    )
    qpiad_runs = [
        run_qpiad(env, query, QpiadConfig(alpha=0.0, k=15)).relevance
        for query in queries
    ]
    baseline_runs = [run_all_returned(env, query).relevance for query in queries]
    return queries, qpiad_runs, baseline_runs


def test_fig06_accumulated_precision_body_mileage(benchmark, cars_env_body_heavy, report):
    queries, qpiad_runs, baseline_runs = benchmark.pedantic(
        _run, args=(cars_env_body_heavy,), rounds=1, iterations=1
    )

    qpiad_curve = average_accumulated_precision(qpiad_runs, length=max(K_POINTS))
    baseline_curve = average_accumulated_precision(baseline_runs, length=max(K_POINTS))

    text = render_curves(
        f"Figure 6 analogue — avg accumulated precision after Kth tuple "
        f"({len(queries)} queries on body_style & mileage)",
        {
            "QPIAD": [(k, qpiad_curve[k - 1]) for k in K_POINTS],
            "AllReturned": [(k, baseline_curve[k - 1]) for k in K_POINTS],
        },
        x_label="K",
        y_label="avg precision",
    )
    report.emit(text)

    # Paper shape: QPIAD dominates at every K, decisively at small K.
    for k in K_POINTS:
        assert qpiad_curve[k - 1] >= baseline_curve[k - 1]
    assert qpiad_curve[0] >= baseline_curve[0] + 0.2
