"""Figure 8: number of tuples required to achieve a given recall level,
QPIAD vs AllRanked (Cars ``Body Style = Convt``).

Paper shape: AllRanked's cost is flat — it must always retrieve the entire
population of tuples with NULL on the query attribute before ranking
anything.  QPIAD's ranked stream reaches each recall level after a fraction
of that.
"""

from repro.core import QpiadConfig
from repro.evaluation import (
    render_curves,
    run_all_ranked,
    run_qpiad,
    tuples_required_for_recall,
)
from repro.query import SelectionQuery

RECALL_LEVELS = [0.2, 0.4, 0.6, 0.8]


def _run(env):
    query = SelectionQuery.equals("body_style", "Convt")
    qpiad = run_qpiad(env, query, QpiadConfig(alpha=1.0, k=30))
    baseline = run_all_ranked(env, query)
    return query, qpiad, baseline


def test_fig08_tuples_required_for_recall(benchmark, cars_env_body_heavy, report):
    query, qpiad, baseline = benchmark.pedantic(
        _run, args=(cars_env_body_heavy,), rounds=1, iterations=1
    )

    null_population = len(baseline.result.ranked)
    qpiad_ranks = tuples_required_for_recall(
        qpiad.relevance, qpiad.total_relevant, RECALL_LEVELS
    )

    text = render_curves(
        f"Figure 8 analogue — tuples required per recall level, {query!r} "
        f"(NULL population = {null_population})",
        {
            "QPIAD": [
                (level, rank if rank is not None else "unreached")
                for level, rank in zip(RECALL_LEVELS, qpiad_ranks)
            ],
            "AllRanked (flat)": [(level, null_population) for level in RECALL_LEVELS],
        },
        x_label="recall",
        y_label="tuples",
    )
    report.emit(text)

    reached = [rank for rank in qpiad_ranks if rank is not None]
    assert len(reached) >= 3, "QPIAD should reach most recall levels"
    assert all(rank < null_population for rank in reached)
    # The early levels should cost a small fraction of AllRanked's transfer.
    assert reached[0] <= null_population / 3
