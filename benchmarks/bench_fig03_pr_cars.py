"""Figure 3: precision-recall, QPIAD vs AllReturned, Cars ``Body Style=Convt``.

Paper shape: QPIAD's curve sits near precision 1.0 through most of the
recall range; AllReturned's precision is low everywhere (it returns every
NULL-bearing tuple in database order).
"""

from repro.core import QpiadConfig
from repro.evaluation import (
    precision_at_recall,
    precision_recall_curve,
    render_curves,
    run_all_returned,
    run_qpiad,
)
from repro.query import SelectionQuery

RECALL_LEVELS = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]


def _curves(env):
    query = SelectionQuery.equals("body_style", "Convt")
    qpiad = run_qpiad(env, query, QpiadConfig(alpha=0.0, k=30))
    baseline = run_all_returned(env, query)
    return query, qpiad, baseline


def test_fig03_precision_recall_cars(benchmark, cars_env, report):
    query, qpiad, baseline = benchmark.pedantic(
        _curves, args=(cars_env,), rounds=1, iterations=1
    )

    total = qpiad.total_relevant
    qpiad_points = precision_recall_curve(qpiad.relevance, total)
    baseline_points = precision_recall_curve(baseline.relevance, total)
    qpiad_at = precision_at_recall(qpiad_points, RECALL_LEVELS)
    baseline_at = precision_at_recall(baseline_points, RECALL_LEVELS)

    text = render_curves(
        f"Figure 3 analogue — {query!r} on Cars ({total} relevant possible answers)",
        {
            "QPIAD": list(zip(RECALL_LEVELS, qpiad_at)),
            "AllReturned": list(zip(RECALL_LEVELS, baseline_at)),
        },
        x_label="recall",
        y_label="precision",
    )
    report.emit(text)

    # Paper shape: QPIAD dominates at every reached recall level.
    reached = [
        (q, b) for q, b in zip(qpiad_at, baseline_at) if q > 0.0
    ]
    assert reached, "QPIAD reached no recall level at all"
    assert all(q >= b for q, b in reached)
    assert qpiad_at[0] >= 0.7  # high precision early
