"""Figure 4: precision-recall, QPIAD vs AllReturned, Census
``Family Relation = Own Child``.

Same shape as Figure 3 on the second dataset: QPIAD keeps precision high
while AllReturned dumps the unranked NULL population.
"""

from repro.core import QpiadConfig
from repro.evaluation import (
    precision_at_recall,
    precision_recall_curve,
    render_curves,
    run_all_returned,
    run_qpiad,
)
from repro.query import SelectionQuery

RECALL_LEVELS = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]


def _curves(env):
    query = SelectionQuery.equals("relationship", "Own-child")
    qpiad = run_qpiad(env, query, QpiadConfig(alpha=0.0, k=30))
    baseline = run_all_returned(env, query)
    return query, qpiad, baseline


def test_fig04_precision_recall_census(benchmark, census_env, report):
    query, qpiad, baseline = benchmark.pedantic(
        _curves, args=(census_env,), rounds=1, iterations=1
    )

    total = qpiad.total_relevant
    qpiad_at = precision_at_recall(
        precision_recall_curve(qpiad.relevance, total), RECALL_LEVELS
    )
    baseline_at = precision_at_recall(
        precision_recall_curve(baseline.relevance, total), RECALL_LEVELS
    )

    text = render_curves(
        f"Figure 4 analogue — {query!r} on Census ({total} relevant possible answers)",
        {
            "QPIAD": list(zip(RECALL_LEVELS, qpiad_at)),
            "AllReturned": list(zip(RECALL_LEVELS, baseline_at)),
        },
        x_label="recall",
        y_label="precision",
    )
    report.emit(text)

    reached = [(q, b) for q, b in zip(qpiad_at, baseline_at) if q > 0.0]
    assert reached
    assert all(q >= b for q, b in reached)
    assert qpiad_at[0] > baseline_at[0]
