"""Ablation: footnote 4 — argmax vs fractional aggregate inclusion.

The paper folds a rewritten query's aggregate in *entirely* when the most
likely completion matches the query, and notes (footnote 4) that weighting
every query's aggregate by its precision "tends to produce a less accurate
final aggregate as it allows each tuple, however irrelevant, to contribute".
This bench measures both rules against ground truth.
"""

import random

from repro.core import AggregateProcessor
from repro.evaluation import aggregate_accuracy, render_table
from repro.query import AggregateFunction, AggregateQuery, Equals, SelectionQuery
from repro.relational import Relation, is_null

SUBSETS = (("make",), ("model",), ("body_style",), ("make", "certified"))
COMBOS_PER_SUBSET = 6


def _workload(env):
    rng = random.Random(151)
    queries = []
    for subset in SUBSETS:
        combos = [
            combo
            for combo in env.train.project(list(subset), distinct=True).rows
            if not any(is_null(value) for value in combo)
        ]
        rng.shuffle(combos)
        for combo in combos[:COMBOS_PER_SUBSET]:
            selection = SelectionQuery.conjunction(
                [Equals(name, value) for name, value in zip(subset, combo)]
            )
            queries.append(AggregateQuery(selection, AggregateFunction.COUNT))
    return queries


def _run(env):
    complete_test = Relation(
        env.dataset.complete.schema,
        [env.oracle.ground_truth_row(row) for row in env.test.rows],
    )
    queries = _workload(env)
    means = {}
    for rule in ("argmax", "fractional"):
        processor = AggregateProcessor(
            env.web_source(), env.knowledge, inclusion_rule=rule
        )
        accuracies = []
        for aggregate in queries:
            truth = env.oracle.true_aggregate(aggregate, complete_test)
            outcome = processor.query(aggregate)
            accuracies.append(aggregate_accuracy(truth, outcome.predicted_value))
        means[rule] = sum(accuracies) / len(accuracies)

    # Certain-only reference.
    processor = AggregateProcessor(env.web_source(), env.knowledge)
    certain_accuracies = []
    for aggregate in queries:
        truth = env.oracle.true_aggregate(aggregate, complete_test)
        outcome = processor.query(aggregate)
        certain_accuracies.append(aggregate_accuracy(truth, outcome.certain_value))
    means["certain-only"] = sum(certain_accuracies) / len(certain_accuracies)
    return len(queries), means


def test_ablation_aggregate_inclusion_rule(benchmark, cars_env, report):
    query_count, means = benchmark.pedantic(
        _run, args=(cars_env,), rounds=1, iterations=1
    )

    rows = [[rule, f"{accuracy:.4f}"] for rule, accuracy in means.items()]
    text = render_table(
        ["inclusion rule", "mean Count(*) accuracy"],
        rows,
        title=(
            f"Ablation — aggregate inclusion rule over {query_count} Count(*) "
            "queries (paper footnote 4)"
        ),
    )
    report.emit(text)

    # Both prediction rules beat ignoring incomplete tuples...
    assert means["argmax"] >= means["certain-only"]
    # ...and the paper's all-or-nothing rule is at least as accurate as
    # fractional weighting.
    assert means["argmax"] >= means["fractional"] - 0.002
